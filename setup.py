"""Legacy setup shim.

Modern installs use ``pyproject.toml`` (``pip install -e .``).  This file
exists for environments without the ``wheel`` package, where PEP 660
editable installs cannot build: ``python setup.py develop`` installs an
equivalent egg-link.
"""

from setuptools import setup

setup()
