"""Deep scenario tests for tree-based propagation: branched trees,
multi-hop relaying, relevance pruning, strict-FIFO mode, and the Sec. 4.2
weighted site order."""

import pytest

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def branched_placement():
    """s0 feeds two independent branches: (s1, s3) and (s2, s4); the
    greedy tree should branch rather than chain."""
    placement = DataPlacement(5)
    placement.add_item("root", primary=0, replicas=[1, 2, 3, 4])
    placement.add_item("left", primary=1, replicas=[3])
    placement.add_item("right", primary=2, replicas=[4])
    return placement


def test_greedy_tree_branches_and_routes_correctly():
    env, system, proto = make_system(branched_placement(), "dag_wt")
    tree = proto.tree
    # Independent branches: neither branch nests under the other.
    assert not tree.is_ancestor(1, 2) and not tree.is_ancestor(2, 1)
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "root")), 0.0, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] == "committed"
    for site_id in (1, 2, 3, 4):
        assert system.site_of(site_id).engine.item("root") \
            .committed_version == 1
    check_convergence(system)


def test_branch_local_update_does_not_cross_branches():
    """An update to 'left' (replicated only at s3) must never generate
    traffic into the right branch."""
    env, system, proto = make_system(branched_placement(), "dag_wt")
    outcomes = []
    run_client(env, proto, spec(1, 1, ("w", "left")), 0.0, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] == "committed"
    assert system.site_of(3).engine.item("left").committed_version == 1
    # Exactly one secondary (s1 -> s3); the right branch saw nothing.
    secondary_count = system.network.sent_by_type[MessageType.SECONDARY]
    assert secondary_count == 1
    assert 2 not in proto.tree.subtree(1)


def test_multi_hop_relay_through_five_site_chain():
    """An item replicated only at the chain's far end is relayed through
    every intermediate site."""
    placement = DataPlacement(5)
    # Forcing edges s0->s1->s2->s3->s4 with 'hop' items.
    for index in range(4):
        placement.add_item("hop{}".format(index), primary=index,
                           replicas=[index + 1])
    placement.add_item("far", primary=0, replicas=[4])
    env, system, proto = make_system(placement, "dag_wt",
                                     protocol_options={
                                         "prefer_chain": True})
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "far")), 0.0, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] == "committed"
    assert system.site_of(4).engine.item("far").committed_version == 1
    # The message hopped through s1, s2, s3 (4 SECONDARY sends).
    assert system.network.sent_by_type[MessageType.SECONDARY] == 4
    # Intermediate sites relayed without committing anything.
    for site_id in (1, 2, 3):
        assert len(system.site_of(site_id).engine.history) == 0


def test_strict_fifo_backedge_blocks_queue_until_decision():
    """In strict-FIFO mode a later secondary must commit after an
    earlier special's transaction at the shared site."""
    placement = DataPlacement(3)
    placement.add_item("x", primary=0, replicas=[1, 2])   # chain glue
    placement.add_item("back", primary=2, replicas=[0])   # backedge 2->0
    env, system, proto = make_system(
        placement, "backedge",
        protocol_options={"strict_fifo_commit": True})
    outcomes = []
    # T1 at s2 updates 'back' -> eager path to s0 (special via chain).
    run_client(env, proto, spec(2, 1, ("w", "back")), 0.0, outcomes)
    # T2 at s0 updates x shortly after: its secondary will queue at s1
    # and s2 behind/around the special traffic.
    run_client(env, proto, spec(0, 1, ("w", "x")), 0.002, outcomes)
    env.run(until=3.0)
    statuses = {gid: status for gid, status, _t in outcomes}
    assert statuses[spec(2, 1).gid] == "committed"
    assert statuses[spec(0, 1).gid] == "committed"
    check_serializable(histories(system))
    check_convergence(system)
    assert no_locks_leaked(system)


def test_greedy_site_order_reduces_backedge_weight():
    """Sec. 4.2: a heavy reverse edge should be kept in the DAG by the
    weighted order, sacrificing the light forward edge instead."""
    placement = DataPlacement(2)
    # Heavy traffic s1 -> s0 (4 items), light s0 -> s1 (1 item).
    for index in range(4):
        placement.add_item("heavy{}".format(index), primary=1,
                           replicas=[0])
    placement.add_item("light", primary=0, replicas=[1])
    env_id, system_id, proto_identity = make_system(
        placement, "backedge")
    env_gr, system_gr, proto_greedy = make_system(
        placement, "backedge", protocol_options={"site_order": "greedy"})
    # Identity order makes the heavy edge a backedge...
    assert proto_identity.backedges == {(1, 0)}
    # ... the weighted greedy order flips it.
    assert proto_greedy.backedges == {(0, 1)}
    assert proto_greedy.site_order == [1, 0]


def test_greedy_order_still_serializable():
    placement = DataPlacement(3)
    for index in range(3):
        placement.add_item("h{}".format(index), primary=2, replicas=[0])
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(
        placement, "backedge", protocol_options={"site_order": "greedy"})
    outcomes = []
    run_client(env, proto, spec(2, 1, ("w", "h0")), 0.0, outcomes)
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.05, outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.2,
               outcomes)
    env.run(until=3.0)
    assert all(status == "committed" for _g, status, _t in outcomes)
    check_serializable(histories(system))
    check_convergence(system)
