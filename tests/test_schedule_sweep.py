"""Schedule sweeps: the paper's worked examples across a grid of start
offsets.

The simulation is deterministic, so sweeping the transactions' relative
start times explores a family of concrete interleavings — a lightweight
model-check that no timing of Examples 1.1/4.1 slips a non-serializable
schedule past the protocols."""

import pytest

from repro.harness.serializability import check_serializable
from repro.testing import ScenarioBuilder

OFFSETS = [0.0, 0.002, 0.01, 0.03, 0.06, 0.12]


@pytest.mark.parametrize("protocol", ["dag_wt", "dag_t", "backedge"])
def test_example_11_all_interleavings_serializable(protocol):
    for offset_t2 in OFFSETS:
        for offset_t3 in OFFSETS:
            scenario = (ScenarioBuilder(n_sites=3, protocol=protocol)
                        .item("a", primary=0, replicas=[1, 2])
                        .item("b", primary=1, replicas=[2]))
            scenario.transaction(0, at=0.0, ops=[("w", "a")])
            scenario.transaction(1, at=offset_t2,
                                 ops=[("r", "a"), ("w", "b")])
            scenario.transaction(2, at=offset_t3,
                                 ops=[("r", "a"), ("r", "b")])
            result = scenario.run(until=3.0)
            # Whatever the interleaving, the outcome is serializable.
            check_serializable(
                site.engine.history for site in result.system.sites)


@pytest.mark.parametrize("protocol", ["backedge", "backedge_t", "psl",
                                      "eager"])
def test_example_41_all_interleavings_safe(protocol):
    """The cross-update pair of Example 4.1 at every relative offset:
    never both committed with inconsistent orders, always serializable,
    no leaked locks."""
    for offset in OFFSETS:
        scenario = (ScenarioBuilder(n_sites=2, protocol=protocol,
                                    lock_timeout=0.02)
                    .item("a", primary=0, replicas=[1])
                    .item("b", primary=1, replicas=[0]))
        if protocol in ("psl", "eager"):
            # These baselines have no replica-read path for 'b' at s0 in
            # the same sense; use the symmetric conflict through reads.
            scenario.transaction(0, at=0.0, ops=[("r", "b"), ("w", "a")])
            scenario.transaction(1, at=offset,
                                 ops=[("r", "a"), ("w", "b")])
        else:
            scenario.transaction(0, at=0.0, ops=[("r", "b"), ("w", "a")])
            scenario.transaction(1, at=offset,
                                 ops=[("r", "a"), ("w", "b")])
        result = scenario.run(until=3.0, drain=1.0)
        assert len(result.outcomes) == 2
        check_serializable(
            site.engine.history for site in result.system.sites)
        for site in result.system.sites:
            assert not site.engine.locks.waiting_requests()
            assert not site.engine.active_transactions


def test_sequential_spacing_commits_everything():
    """With generous spacing every transaction commits under every
    protocol (no spurious aborts when there is no contention)."""
    for protocol in ("dag_wt", "dag_t", "backedge", "backedge_t", "psl",
                     "eager"):
        b_first = protocol in ("dag_wt", "dag_t")
        scenario = (ScenarioBuilder(n_sites=2, protocol=protocol)
                    .item("a", primary=0,
                          replicas=[] if protocol == "psl" else [1]))
        if not b_first:
            scenario.item("b", primary=1, replicas=[0])
        else:
            scenario.item("b", primary=1)  # Keep the copy graph a DAG.
        scenario.transaction(0, at=0.0, ops=[("w", "a")])
        scenario.transaction(1, at=0.5, ops=[("w", "b")])
        scenario.transaction(0, at=1.0, ops=[("r", "a"), ("w", "a")])
        result = scenario.run(until=4.0)
        assert result.all_committed, protocol
