"""Integration tests for the DAG(T) protocol (paper Sec. 3): direct
propagation, timestamp ordering at merge sites, and the Sec. 3.3
progress machinery (epochs + dummies)."""

import pytest

from repro.core.dag_t import DagTProtocol
from repro.core.timestamps import VectorTimestamp
from repro.errors import ConfigurationError
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from tests.helpers import histories, make_system, run_client, spec


def merge_placement():
    """s2 has two incomparable parents s0 and s1 — the Sec. 3.3
    starvation example."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[2])
    placement.add_item("b", primary=1, replicas=[2])
    return placement


def test_updates_travel_one_hop_directly():
    """DAG(T) sends secondaries straight to replica sites — no relaying
    through intermediate sites (contrast with DAG(WT))."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "dag_t")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=0.05)  # Before heartbeats muddy the counts.
    secondaries = system.network.sent_by_type[MessageType.SECONDARY]
    assert secondaries == 2  # s0->s1 and s0->s2 directly.
    assert outcomes[0][1] == "committed"


def test_progress_despite_idle_parent():
    """The Sec. 3.3 example: T1 from s0 must eventually execute at s2
    even though s1 never commits anything — epochs advance via dummy
    subtransactions."""
    env, system, proto = make_system(merge_placement(), "dag_t")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    assert system.site_of(2).engine.item("a").committed_version == 1
    assert system.network.sent_by_type[MessageType.DUMMY] > 0
    check_convergence(system)


def test_without_dummies_merge_site_starves():
    """Sanity check of the starvation scenario itself: with heartbeats
    effectively disabled, s2 cannot execute s0's update because s1's
    queue stays empty."""
    env, system, proto = make_system(merge_placement(), "dag_t")
    proto.config.heartbeat_interval = 1e9
    proto.config.epoch_interval = 1e9
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"  # The primary is unaffected.
    assert system.site_of(2).engine.item("a").committed_version == 0


def test_secondaries_commit_in_timestamp_order_at_merge_site():
    """Two updates through different parents commit at s2 in timestamp
    order even if they arrive interleaved."""
    env, system, proto = make_system(merge_placement(), "dag_t")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.000, outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b")), 0.001, outcomes)
    run_client(env, proto, spec(0, 2, ("w", "a")), 0.002, outcomes)
    env.run(until=1.0)
    entries = [entry for entry in system.site_of(2).engine.history
               if entry.writes]
    # All three applied; a's versions in order.
    a_versions = [entry.writes.get("a") for entry in entries
                  if "a" in entry.writes]
    assert a_versions == [1, 2]
    check_serializable(histories(system))
    check_convergence(system)


def test_primary_timestamps_increase_at_a_site():
    placement = merge_placement()
    env, system, proto = make_system(placement, "dag_t")
    clock = proto.clocks[0]
    first = clock.on_primary_commit()
    second = clock.on_primary_commit()
    assert first < second
    assert second.counter_of(proto.ranks[0]) == 2


def test_site_timestamp_concatenates_base():
    env, system, proto = make_system(merge_placement(), "dag_t")
    clock = proto.clocks[2]
    incoming = VectorTimestamp().concat(
        __import__("repro.core.timestamps",
                   fromlist=["SiteTuple"]).SiteTuple(0, 3))
    clock.on_secondary_commit(incoming)
    stamp = clock.site_timestamp()
    assert stamp.counter_of(0) == 3
    assert stamp.counter_of(proto.ranks[2]) == 0


def test_requires_dag():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    with pytest.raises(ConfigurationError):
        make_system(placement, "dag_t")


def test_ranks_follow_topological_order_not_site_ids():
    """A DAG whose edges point against site-id order still works: ranks
    come from the topological order."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=2, replicas=[0, 1])
    placement.add_item("b", primary=1, replicas=[0])
    env, system, proto = make_system(placement, "dag_t")
    assert proto.ranks[2] < proto.ranks[1] < proto.ranks[0]
    outcomes = []
    run_client(env, proto, spec(2, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.05,
               outcomes)
    env.run(until=1.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    check_serializable(histories(system))
    check_convergence(system)


def test_dummy_messages_do_not_create_history_entries():
    env, system, proto = make_system(merge_placement(), "dag_t")
    env.run(until=0.5)  # Only heartbeats run.
    for site in system.sites:
        assert len(site.engine.history) == 0
