"""Tests for the public scenario-building API (repro.testing)."""

import pytest

from repro.errors import ConfigurationError, SerializabilityViolation
from repro.testing import ScenarioBuilder, make_spec
from repro.types import GlobalTransactionId, OpType


def test_make_spec():
    spec = make_spec(1, 7, [("r", "a"), ("w", "b")])
    assert spec.gid == GlobalTransactionId(1, 7)
    assert spec.origin == 1
    assert [op.op_type for op in spec.operations] == [OpType.READ,
                                                      OpType.WRITE]


def test_example_11_scenario_via_builder():
    scenario = (ScenarioBuilder(n_sites=3, protocol="dag_wt")
                .item("a", primary=0, replicas=[1, 2])
                .item("b", primary=1, replicas=[2]))
    t1 = scenario.transaction(0, at=0.0, ops=[("w", "a")])
    t2 = scenario.transaction(1, at=0.1, ops=[("r", "a"), ("w", "b")])
    t3 = scenario.transaction(2, at=0.2, ops=[("r", "a"), ("r", "b")])
    result = scenario.run(until=2.0)
    assert result.all_committed
    graph = result.check()
    assert t2.gid in graph[t1.gid]
    assert t3.gid in graph[t2.gid]
    assert result.outcome_of(t1.gid).committed


def test_builder_auto_sequences_per_site():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0, replicas=[1]))
    first = scenario.transaction(0, at=0.0, ops=[("w", "a")])
    second = scenario.transaction(0, at=0.1, ops=[("w", "a")])
    other = scenario.transaction(1, at=0.0, ops=[("r", "a")])
    assert first.gid.seq == 1 and second.gid.seq == 2
    assert other.gid.seq == 1


def test_builder_rejects_items_after_build():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0))
    scenario.build()
    with pytest.raises(ConfigurationError):
        scenario.item("b", primary=1)


def test_outcome_of_unknown_gid_raises():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0))
    result = scenario.run(until=0.5)
    with pytest.raises(KeyError):
        result.outcome_of(GlobalTransactionId(0, 99))


def test_check_skips_convergence_for_psl():
    scenario = (ScenarioBuilder(n_sites=2, protocol="psl")
                .item("a", primary=0, replicas=[1]))
    scenario.transaction(0, at=0.0, ops=[("w", "a")])
    result = scenario.run(until=1.0)
    assert result.all_committed
    result.check()  # Must not fail on the (by-design) stale replica.


def test_check_flags_planted_anomaly():
    """Drive the indiscriminate baseline into Example 1.1 through the
    builder and catch the violation via result.check()."""
    scenario = (ScenarioBuilder(n_sites=3, protocol="indiscriminate",
                                latency=0.001)
                .item("a", primary=0, replicas=[1, 2])
                .item("b", primary=1, replicas=[2]))
    env, system, _protocol = scenario.build()
    system.network._channel(0, 2)._latency = 0.5  # Delay s0 -> s2 only.
    scenario.transaction(0, at=0.00, ops=[("w", "a")])
    scenario.transaction(1, at=0.05, ops=[("r", "a"), ("w", "b")])
    scenario.transaction(2, at=0.10, ops=[("r", "a"), ("r", "b")])
    result = scenario.run(until=2.0)
    assert result.all_committed
    with pytest.raises(SerializabilityViolation):
        result.check(convergence=False)


def test_run_can_be_called_repeatedly_with_new_transactions():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0, replicas=[1]))
    scenario.transaction(0, at=0.0, ops=[("w", "a")])
    first = scenario.run(until=1.0)
    assert first.all_committed
    scenario.transaction(0, at=0.0, ops=[("w", "a")])
    second = scenario.run(until=scenario.build()[0].now + 1.0)
    assert second.all_committed
    assert scenario.build()[1].site_of(1).engine.item("a") \
        .committed_version == 2
