"""Tests for the protocol base layer: system assembly, registry,
observer dispatch, and the timeout victim rules."""

import pytest

from repro.core.base import (
    PROTOCOLS,
    ReplicatedSystem,
    ReplicationProtocol,
    SystemConfig,
    make_protocol,
    register_protocol,
)
from repro.errors import ConfigurationError
from repro.graph.placement import DataPlacement
from repro.sim.environment import Environment
from repro.storage.locks import ABORT_WAITER, KEEP_WAITING, LockMode
from repro.types import GlobalTransactionId, SubtransactionKind


def build(n_sites=2, cyclic=False):
    placement = DataPlacement(n_sites)
    placement.add_item("a", primary=0, replicas=[1])
    if cyclic:
        placement.add_item("b", primary=1, replicas=[0])
    env = Environment()
    return env, ReplicatedSystem(env, placement, SystemConfig())


def test_system_materialises_item_copies():
    _env, system = build()
    assert system.site_of(0).engine.has_item("a")
    assert system.site_of(1).engine.has_item("a")
    assert system.copy_graph.has_edge(0, 1)


def test_registry_contains_all_protocols():
    make_protocol("backedge", build()[1])  # Forces registration imports.
    assert set(PROTOCOLS) >= {"dag_wt", "dag_t", "backedge",
                              "backedge_t", "psl", "eager",
                              "indiscriminate"}


def test_make_protocol_unknown_name():
    _env, system = build()
    with pytest.raises(ConfigurationError) as excinfo:
        make_protocol("nope", system)
    assert "backedge" in str(excinfo.value)  # Lists what's available.


def test_requires_dag_enforced():
    _env, system = build(cyclic=True)
    with pytest.raises(ConfigurationError):
        make_protocol("dag_wt", system)
    with pytest.raises(ConfigurationError):
        make_protocol("dag_t", system)
    make_protocol("backedge", system)  # Cyclic is fine here.


def test_observer_dispatch_ignores_missing_handlers():
    _env, system = build()

    class OnlyCommits:
        def __init__(self):
            self.seen = []

        def on_primary_commit(self, **details):
            self.seen.append(details)

    observer = OnlyCommits()
    system.observers.append(observer)
    system.notify("primary_commit", gid="g", site=0, time=1.0,
                  expected_replicas=set())
    system.notify("replica_commit", gid="g", site=1, time=2.0)  # No-op.
    assert len(observer.seen) == 1


def test_register_protocol_decorator():
    @register_protocol
    class Dummy(ReplicationProtocol):
        name = "dummy-test-protocol"

    try:
        assert PROTOCOLS["dummy-test-protocol"] is Dummy
    finally:
        PROTOCOLS.pop("dummy-test-protocol", None)


def test_primary_registry_roundtrip():
    _env, system = build()
    txn = system.site_of(0).engine.begin(GlobalTransactionId(0, 1))
    system.register_primary(txn)
    assert system.primaries[txn.gid] is txn
    system.unregister_primary(txn)
    assert txn.gid not in system.primaries
    system.unregister_primary(txn)  # Idempotent.


def test_timeout_policy_primary_waiter_aborts_itself():
    env, system = build()
    protocol = make_protocol("dag_wt", system)
    system.use_protocol(protocol)
    site = system.site_of(0)
    manager = site.engine.locks
    holder = site.engine.begin(GlobalTransactionId(0, 1),
                               SubtransactionKind.SECONDARY)
    waiter = site.engine.begin(GlobalTransactionId(0, 2),
                               SubtransactionKind.PRIMARY)
    manager.acquire(holder, "a", LockMode.EXCLUSIVE)
    request_event = manager.acquire(waiter, "a", LockMode.SHARED)
    request = manager.waiting_requests()[0]
    assert manager.timeout_policy(manager, request) == ABORT_WAITER
    request_event.defuse()


def test_timeout_policy_secondary_wounds_latest_primary():
    env, system = build()
    protocol = make_protocol("dag_wt", system)
    system.use_protocol(protocol)
    site = system.site_of(0)
    manager = site.engine.locks

    # Two primary holders with distinct start times, driven by processes
    # so they are woundable.
    held = []

    def holder_proc(seq, delay):
        ref = []

        def body():
            yield env.timeout(delay)
            txn = site.engine.begin(GlobalTransactionId(0, seq),
                                    SubtransactionKind.PRIMARY,
                                    process=ref[0])
            held.append(txn)
            yield site.engine.locks.acquire(txn, "a", LockMode.SHARED)
            yield env.timeout(10.0)

        ref.append(env.process(body()))

    holder_proc(1, 0.0)
    holder_proc(2, 0.1)
    env.run(until=0.5)
    waiter = site.engine.begin(GlobalTransactionId(0, 3),
                               SubtransactionKind.SECONDARY)
    manager.acquire(waiter, "a", LockMode.EXCLUSIVE)
    request = manager.waiting_requests()[0]
    assert manager.timeout_policy(manager, request) == KEEP_WAITING
    # The *latest-arrived* primary was wounded (the paper's example
    # fairness policy).
    wounded = [txn for txn in held if txn.wound_reason]
    assert [txn.gid.seq for txn in wounded] == [2]
