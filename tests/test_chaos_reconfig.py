"""Chaos under reconfiguration: fault injection while epoch transitions
are in flight.

The flagship scenario SIGKILLs the replica-*gaining* member in the
middle of its epoch transition.  The controller's reconfig driver must
abort cleanly (an unreachable member aborts the transition everywhere),
retry once the member restarts, and land the transition — and the
verdict must be green: converged against the *final* placement, DSG
acyclic, and every surviving member in the same epoch (the controller
files an ``epoch-divergence`` violation otherwise).

Port plan: this file owns 8250-8299.
"""

import pytest

from repro.chaos.controller import ChaosScenario, run_chaos
from repro.chaos.plan import FaultPlan, KillFault
from repro.cluster.spec import ClusterSpec
from repro.workload.params import WorkloadParams


def _scenario(base_port=8250, at=0.15, kill_at=0.2, down_for=0.8):
    params = WorkloadParams(n_sites=6, n_items=18,
                            placement_scheme="sharded-hash",
                            replication_factor=2,
                            threads_per_site=1,
                            transactions_per_thread=10,
                            read_txn_probability=0.2,
                            deadlock_timeout=0.05)
    return ChaosScenario(
        spec=ClusterSpec(params=params, protocol="dag_wt", seed=3,
                         base_port=base_port),
        plan=FaultPlan(seed=11, events=(
            KillFault(site=4, at=kill_at, down_for=down_for),)),
        reconfig=({"at": at,
                   "change": {"kind": "add-replica", "site": 4,
                              "item": 1}},),
        name="kill-mid-transition")


def test_scenario_json_round_trip_keeps_reconfig(tmp_path):
    scenario = _scenario()
    path = str(tmp_path / "scenario.json")
    scenario.save(path)
    loaded = ChaosScenario.load(path)
    assert loaded.reconfig == scenario.reconfig
    assert loaded.spec.params.placement_scheme == "sharded-hash"
    assert loaded.name == scenario.name


def test_scenario_rejects_bad_reconfig_entries():
    base = _scenario()
    with pytest.raises(ValueError):
        ChaosScenario(spec=base.spec, plan=base.plan,
                      reconfig=({"at": -1.0,
                                 "change": {"kind": "add-replica",
                                            "site": 4,
                                            "item": 1}},)).validate()
    with pytest.raises(Exception):
        ChaosScenario(spec=base.spec, plan=base.plan,
                      reconfig=({"at": 0.1,
                                 "change": {"kind": "shuffle",
                                            "site": 4}},)).validate()


def test_kill_of_gaining_member_mid_transition_recovers(tmp_path):
    """The epoch-recovery invariant, live: the transition targeted at
    the killed member aborts, is retried after the restart, and the run
    ends converged in an agreed epoch > 0 with green oracles."""
    scenario = _scenario()
    report = run_chaos(scenario, str(tmp_path), quiesce_timeout=30.0)
    assert report.ok, report.violations
    assert report.final_epoch == 1
    assert len(report.reconfigs) == 1
    assert report.reconfigs[0]["epoch"] == 1
    # The kill window overlapped the transition, so the driver needed
    # at least one attempt; a retry proves the abort path fired.
    assert report.reconfigs[0]["attempts"] >= 1
    assert report.committed > 0
    # The verdict was judged against the final (epoch 1) placement —
    # the gained replica is part of the convergence check.
    assert not any("epoch-divergence" in violation
                   for violation in report.violations)
