"""Tests for the FIFO network substrate."""

import pytest

from repro.network import MessageType, Network
from repro.sim import Environment


def collect(network, site):
    """Register a collector handler; returns the list it appends to."""
    received = []
    network.set_handler(
        site, lambda msg: received.append((network.env.now, msg)))
    return received


def test_message_delivered_after_latency():
    env = Environment()
    network = Network(env, n_sites=2, latency=0.5)
    received = collect(network, 1)
    network.send(MessageType.SECONDARY, 0, 1, gid="t1")
    env.run()
    assert len(received) == 1
    time, msg = received[0]
    assert time == 0.5
    assert msg.payload["gid"] == "t1"
    assert msg.send_time == 0.0
    assert msg.deliver_time == 0.5


def test_fifo_order_between_pair():
    env = Environment()
    network = Network(env, n_sites=2, latency=0.1)
    received = collect(network, 1)
    for seq in range(5):
        network.send(MessageType.SECONDARY, 0, 1, seq=seq)
    env.run()
    assert [msg.payload["seq"] for _t, msg in received] == [0, 1, 2, 3, 4]


def test_fifo_preserved_under_jittered_latency():
    env = Environment()
    # Decreasing latency would reorder without the FIFO clamp.
    samples = iter([1.0, 0.1, 0.05])
    network = Network(env, n_sites=2, latency=lambda: next(samples))
    received = collect(network, 1)

    def sender(env):
        for seq in range(3):
            network.send(MessageType.SECONDARY, 0, 1, seq=seq)
            yield env.timeout(0.01)

    env.process(sender(env))
    env.run()
    assert [msg.payload["seq"] for _t, msg in received] == [0, 1, 2]
    times = [t for t, _msg in received]
    assert times == sorted(times)
    # All clamped to >= first message's arrival.
    assert times[0] == pytest.approx(1.0)


def test_independent_pairs_do_not_clamp_each_other():
    env = Environment()
    network = Network(env, n_sites=3, latency=0.2)
    first = collect(network, 1)
    second = collect(network, 2)

    def sender(env):
        network.send(MessageType.SECONDARY, 0, 1, seq="a")
        yield env.timeout(0.05)
        network.send(MessageType.SECONDARY, 0, 2, seq="b")

    env.process(sender(env))
    env.run()
    assert first[0][0] == pytest.approx(0.2)
    assert second[0][0] == pytest.approx(0.25)


def test_send_to_self_rejected():
    network = Network(Environment(), n_sites=2)
    with pytest.raises(ValueError):
        network.send(MessageType.SECONDARY, 0, 0)


def test_unknown_site_rejected():
    network = Network(Environment(), n_sites=2)
    with pytest.raises(ValueError):
        network.send(MessageType.SECONDARY, 0, 5)
    with pytest.raises(ValueError):
        network.set_handler(9, lambda msg: None)


def test_missing_handler_goes_to_dead_letters():
    env = Environment()
    network = Network(env, n_sites=2, latency=0.1)
    network.send(MessageType.SECONDARY, 0, 1, seq=1)
    env.run()
    assert len(network.dead_letters) == 1


def test_message_counters_by_type():
    env = Environment()
    network = Network(env, n_sites=2, latency=0.1)
    collect(network, 1)
    network.send(MessageType.SECONDARY, 0, 1)
    network.send(MessageType.SECONDARY, 0, 1)
    network.send(MessageType.LOCK_REQUEST, 0, 1)
    env.run()
    assert network.total_sent == 3
    assert network.sent_by_type[MessageType.SECONDARY] == 2
    assert network.sent_by_type[MessageType.LOCK_REQUEST] == 1


def test_negative_latency_rejected():
    env = Environment()
    network = Network(env, n_sites=2, latency=-1.0)
    with pytest.raises(ValueError):
        network.send(MessageType.SECONDARY, 0, 1)


def test_needs_at_least_one_site():
    with pytest.raises(ValueError):
        Network(Environment(), n_sites=0)
