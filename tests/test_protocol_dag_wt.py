"""Integration tests for the DAG(WT) protocol (paper Sec. 2),
including the Example 1.1 scenario it must serialize correctly."""

import pytest

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def example_11_placement():
    """Paper Example 1.1: item a primary at s0, replicas at s1 and s2;
    item b primary at s1, replica at s2."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    return placement


@pytest.mark.parametrize("protocol", ["dag_wt", "dag_t", "backedge"])
def test_example_11_is_serialized_correctly(protocol):
    """T1 updates a at s0; T2 reads a and writes b at s1; T3 reads a and
    b at s2.  The resulting execution must be serializable with T1 before
    T2 (the indiscriminate-propagation anomaly of Example 1.1 must not
    occur)."""
    env, system, proto = make_system(example_11_placement(), protocol)
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    # T2 starts after T1's update reached s1.
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.05,
               outcomes)
    # T3 reads both replicas at s2, after T2's update propagates.
    run_client(env, proto, spec(2, 1, ("r", "a"), ("r", "b")), 0.15,
               outcomes)
    env.run(until=2.0)

    assert [status for _gid, status, _t in outcomes] == ["committed"] * 3
    graph = check_serializable(histories(system))
    # T3 must observe T1's write of a and T2's write of b.
    t1 = spec(0, 1, ("w", "a")).gid
    t2 = spec(1, 1, ("w", "b")).gid
    t3 = spec(2, 1, ("r", "a")).gid
    assert t3 in graph[t1]
    assert t3 in graph[t2]
    # T1 serialized before T2 everywhere (T2 read T1's a at s1).
    assert t2 in graph[t1]
    check_convergence(system)
    assert no_locks_leaked(system)


def test_secondary_applies_only_replicated_items():
    placement = DataPlacement(2)
    placement.add_item("rep", primary=0, replicas=[1])
    placement.add_item("local", primary=0)
    env, system, proto = make_system(placement, "dag_wt")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "rep"), ("w", "local")), 0.0,
               outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    replica_engine = system.site_of(1).engine
    assert replica_engine.item("rep").committed_version == 1
    assert not replica_engine.has_item("local")
    check_convergence(system)


def test_forwarding_skips_irrelevant_subtrees():
    """A chain s0-s1-s2 where the updated item is replicated only at s1:
    no secondary message should travel to s2."""
    placement = DataPlacement(3)
    placement.add_item("x", primary=0, replicas=[1])
    placement.add_item("y", primary=1, replicas=[2])  # Forces the chain.
    env, system, proto = make_system(placement, "dag_wt")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "x")), 0.0, outcomes)
    env.run(until=1.0)
    sent = system.network.sent_by_type
    from repro.network.message import MessageType
    assert sent[MessageType.SECONDARY] == 1  # s0 -> s1 only.


def test_updates_relay_through_tree_in_order():
    """Two writes committed in order at s0 must commit in the same order
    at every replica site down the chain."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "dag_wt")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(0, 2, ("w", "a")), 0.001, outcomes)
    env.run(until=1.0)
    for site_id in (1, 2):
        entries = [entry for entry
                   in system.site_of(site_id).engine.history
                   if "a" in entry.writes]
        assert [entry.gid.seq for entry in entries] == [1, 2]
        assert [entry.writes["a"] for entry in entries] == [1, 2]
    check_convergence(system)


def test_read_only_transaction_sends_nothing():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    env, system, proto = make_system(placement, "dag_wt")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("r", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    assert system.network.total_sent == 0


def test_secondary_wounds_blocking_primary():
    """A local primary holding a replica's lock past the timeout is
    wounded so the secondary subtransaction can commit (Sec. 2 fairness:
    secondaries are never starved)."""
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("z", primary=1)
    env, system, proto = make_system(placement, "dag_wt",
                                     lock_timeout=0.02)
    outcomes = []
    # A slow local primary at s1 grabs the replica of "a" via a read and
    # then stalls on CPU-free waiting (simulated via many ops).
    blocker = spec(1, 1, ("r", "a"), *[("w", "z")] * 8)

    def slow_client():
        process = process_ref[0]
        from repro.errors import TransactionAborted
        try:
            site = system.site_of(1)
            txn = site.engine.begin(blocker.gid, process=process)
            from repro.types import SubtransactionKind
            txn.kind = SubtransactionKind.PRIMARY
            value = yield from site.engine.read(txn, "a")
            del value
            yield env.timeout(10.0)  # Holds the lock far too long.
            site.engine.commit(txn)
            outcomes.append((blocker.gid, "committed", env.now))
        except BaseException:
            site.engine.abort(txn)
            outcomes.append((blocker.gid, "wounded", env.now))

    process_ref = []
    process_ref.append(env.process(slow_client()))
    # The writer at s0 whose secondary needs the X lock at s1.
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.01, outcomes)
    env.run(until=1.0)
    statuses = {gid: status for gid, status, _t in outcomes}
    assert statuses[blocker.gid] == "wounded"
    assert statuses[spec(0, 1).gid] == "committed"
    # The secondary finally applied at s1.
    assert system.site_of(1).engine.item("a").committed_version == 1
