"""Regression test: a 2PC vote must never be lost to the
handler/coordinator race.

The original eager implementation popped the vote event inside the
message handler; a NO vote arriving while the coordinator was still
awaiting a *different* participant's vote vanished, and the coordinator
committed.  The fix leaves the event registered until the coordinator
consumes it.
"""

from repro.graph.placement import DataPlacement
from repro.network.message import Message, MessageType
from repro.testing import ScenarioBuilder
from repro.types import GlobalTransactionId


def test_late_no_vote_is_not_lost():
    scenario = (ScenarioBuilder(n_sites=3, protocol="eager")
                .item("a", primary=0, replicas=[1, 2]))
    env, system, protocol = scenario.build()
    gid = GlobalTransactionId(0, 77)
    handler = protocol._make_handler(system.site_of(0))

    outcome = []

    def coordinator():
        ok = yield from protocol._collect_votes(0, gid, {1, 2})
        outcome.append(ok)

    def voters():
        # Let the coordinator register its events and block on s1's
        # vote, then deliver s2's NO first and s1's YES afterwards.
        yield env.timeout(0.01)
        handler(Message(MessageType.VOTE, 2, 0,
                        {"gid": gid, "commit": False}))
        yield env.timeout(0.01)
        handler(Message(MessageType.VOTE, 1, 0,
                        {"gid": gid, "commit": True}))

    env.process(coordinator())
    env.process(voters())
    env.run(until=1.0)
    assert outcome == [False]


def test_all_yes_votes_still_commit():
    scenario = (ScenarioBuilder(n_sites=3, protocol="eager")
                .item("a", primary=0, replicas=[1, 2]))
    scenario.transaction(0, at=0.0, ops=[("w", "a")])
    result = scenario.run(until=1.0)
    assert result.all_committed
    result.check()
