"""ScenarioBuilder.run() re-run semantics.

Historically a second ``run()`` call silently replayed an *empty*
workload (the transaction list is consumed by the first run) and
returned a result with no outcomes — an easy way to assert on nothing.
Now: a bare re-run raises, and adding transactions first performs a
genuine incremental re-run on the same system.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.testing import ScenarioBuilder


def _scenario() -> ScenarioBuilder:
    builder = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
               .item("a", primary=0, replicas=[1]))
    builder.transaction(0, at=0.0, ops=[("w", "a")])
    return builder


def test_second_run_without_new_transactions_raises():
    builder = _scenario()
    result = builder.run(until=1.0)
    assert result.all_committed
    with pytest.raises(ConfigurationError):
        builder.run(until=2.0)


def test_incremental_rerun_accumulates_outcomes():
    builder = _scenario()
    first = builder.run(until=1.0)
    assert len(first.outcomes) == 1

    # Add more work; the clock keeps advancing on the same system.
    builder.transaction(0, at=0.0, ops=[("w", "a")])
    second = builder.run(until=3.0)
    assert len(second.outcomes) == 2
    assert second.all_committed
    second.check()

    # The second run reuses the already-built system.
    env, system, _protocol = builder.build()
    assert env.now >= 3.0
    assert system.site_of(1).engine.item("a").committed_version == 2


def test_rerun_until_must_advance_the_clock():
    builder = _scenario()
    builder.run(until=1.0)
    builder.transaction(0, at=0.0, ops=[("w", "a")])
    with pytest.raises(ValueError):
        builder.run(until=0.5)
