"""Differential testing across protocols.

All serializable propagation protocols must drive the replicas to the
*same* final values on the same committed workload — they differ in
freshness and messaging, not in outcome.  The indiscriminate baseline is
the differential's control: the explorer must flag it within a bounded
number of schedules.
"""

from __future__ import annotations

import pytest

from repro.explorer import (
    ExplorationConfig,
    PerturbationPlan,
    ScenarioSpec,
    build_scenario,
    explore,
    run_schedule,
)

#: The serializable propagation protocols under comparison (PSL is
#: excluded: it refreshes on access, so replicas lag by design).
PROTOCOLS = ("dag_wt", "dag_t", "backedge", "eager")

#: Fixed low-contention workload: writes spaced well apart so every
#: protocol commits everything (eager included).
WORKLOAD = ScenarioSpec(
    protocol="dag_wt",
    n_sites=3,
    items=((0, 0, (1, 2)), (1, 1, (2,))),
    transactions=(
        (0, 1, 0.0, (("w", 0),)),
        (1, 1, 0.2, (("r", 0), ("w", 1))),
        (2, 1, 0.5, (("r", 0), ("r", 1))),
        (0, 2, 0.8, (("w", 0),)),
        (1, 2, 1.1, (("w", 1),)),
    ))


def _final_values(protocol: str, plan: PerturbationPlan):
    spec = WORKLOAD.with_protocol(protocol)
    builder = build_scenario(spec,
                             schedule_policy=plan.schedule_policy())
    _env, system, _protocol = builder.build()
    system.network.set_perturbation(plan.latency_perturb(spec.latency))
    result = builder.run(until=spec.until, drain=spec.drain)
    assert result.all_committed, protocol
    result.check()
    return {(site.site_id, item_id):
            (site.engine.item(item_id).value,
             site.engine.item(item_id).committed_version)
            for site in system.sites
            for item_id in site.engine.item_ids()}


def test_protocols_converge_to_identical_values_unperturbed():
    plan = PerturbationPlan(seed=0, latency_scale=0.0,
                            schedule_noise=False)
    baseline = _final_values(PROTOCOLS[0], plan)
    for protocol in PROTOCOLS[1:]:
        assert _final_values(protocol, plan) == baseline, protocol


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_protocols_converge_under_perturbation(seed):
    # Scale 50 keeps the worst extra delay (50 x 1ms) below the lock
    # timeout, so even eager's 2PC lock holds cannot force aborts on
    # this low-contention workload.
    plan = PerturbationPlan(seed=seed, latency_scale=50.0)
    baseline = _final_values(PROTOCOLS[0], plan)
    for protocol in PROTOCOLS[1:]:
        assert _final_values(protocol, plan) == baseline, protocol


def test_serializable_protocols_pass_oracles_on_the_workload():
    plan = PerturbationPlan(seed=5, latency_scale=200.0)
    for protocol in PROTOCOLS:
        outcome = run_schedule(WORKLOAD.with_protocol(protocol), plan)
        assert not outcome.failed, (protocol, outcome.failures)


def test_explorer_flags_indiscriminate_within_bounded_schedules():
    report = explore(ExplorationConfig(protocol="indiscriminate",
                                       budget=200, seed=0))
    assert report.failures_found >= 1
    assert report.schedules_run <= 200
    assert any(failure.oracle == "acyclicity"
               for failure in report.failure.failures)
