"""Shared test fixtures: hand-built small systems for protocol scenarios."""

from __future__ import annotations

import typing

from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.errors import TransactionAborted
from repro.graph.placement import DataPlacement
from repro.sim.environment import Environment
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)

#: Fast cost model for scenario tests: tiny CPU costs, visible latency.
FAST = dict(cpu_txn_setup=0.001, cpu_per_op=0.0002, cpu_commit=0.0002,
            cpu_message=0.0001, cpu_apply_write=0.0002,
            cpu_remote_read=0.0002, heartbeat_interval=0.020,
            epoch_interval=0.040)


def make_system(placement: DataPlacement, protocol_name: str,
                lock_timeout: float = 0.050,
                latency: float = 0.001,
                protocol_options: typing.Optional[dict] = None):
    """Build (env, system, protocol) with the FAST cost model."""
    config = SystemConfig(lock_timeout=lock_timeout,
                          network_latency=latency, **FAST)
    env = Environment()
    system = ReplicatedSystem(env, placement, config)
    protocol = make_protocol(protocol_name, system,
                             **(protocol_options or {}))
    system.use_protocol(protocol)
    return env, system, protocol


def spec(site: int, seq: int, *ops) -> TransactionSpec:
    """Build a TransactionSpec from ("r"/"w", item) pairs."""
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def run_client(env, protocol, transaction_spec, start_delay=0.0,
               outcomes=None):
    """Spawn a client process running one transaction; returns the
    process.  Appends (gid, "committed"/reason, time) to ``outcomes``."""
    if outcomes is None:
        outcomes = []
    process_ref = []

    def client():
        process = process_ref[0]
        if start_delay:
            yield env.timeout(start_delay)
        try:
            yield from protocol.run_transaction(
                transaction_spec.origin, transaction_spec, process)
            outcomes.append((transaction_spec.gid, "committed", env.now))
        except TransactionAborted as exc:
            outcomes.append((transaction_spec.gid, exc.reason, env.now))

    process = env.process(client())
    process_ref.append(process)
    return process


def histories(system):
    return [site.engine.history for site in system.sites]


def no_locks_leaked(system) -> bool:
    """After quiescence no transaction should hold or wait for locks."""
    for site in system.sites:
        manager = site.engine.locks
        if manager.waiting_requests():
            return False
        if manager._table:  # noqa: SLF001 - test introspection
            return False
    return True
