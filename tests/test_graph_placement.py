"""Tests for data placement and copy-graph construction, the placement
mutation APIs behind the reconfiguration plane, and the sharded
partial-replication generators."""

import pytest

from repro.errors import GraphError, PlacementError
from repro.graph import CopyGraph, DataPlacement, build_shard_trees
from repro.workload.distribution import generate_placement
from repro.workload.params import WorkloadParams


@pytest.fixture
def paper_placement():
    """The 3-site placement of the paper's Example 1.1: item a primary at
    s0 with replicas at s1, s2; item b primary at s1 with replica at s2."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    return placement


def test_placement_basic_queries(paper_placement):
    assert paper_placement.primary_site("a") == 0
    assert paper_placement.replica_sites("a") == {1, 2}
    assert paper_placement.sites_of("b") == {1, 2}
    assert paper_placement.is_replicated("a")
    assert paper_placement.items_at(2) == {"a", "b"}
    assert paper_placement.primary_items_at(1) == {"b"}
    assert paper_placement.replica_items_at(1) == {"a"}
    assert paper_placement.replica_count() == 3
    assert len(paper_placement) == 2
    assert "a" in paper_placement


def test_placement_rejects_duplicates_and_bad_sites():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0)
    with pytest.raises(PlacementError):
        placement.add_item("a", primary=1)
    with pytest.raises(PlacementError):
        placement.add_item("b", primary=5)
    with pytest.raises(PlacementError):
        placement.add_item("c", primary=0, replicas=[0])
    with pytest.raises(PlacementError):
        placement.primary_site("zzz")


def test_unreplicated_item_has_no_replica_sites():
    placement = DataPlacement(2)
    placement.add_item("local", primary=1)
    assert placement.replica_sites("local") == frozenset()
    assert not placement.is_replicated("local")
    assert placement.sites_of("local") == {1}


def test_copy_graph_from_placement(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    assert graph.edges == {(0, 1), (0, 2), (1, 2)}
    assert graph.children(0) == {1, 2}
    assert graph.parents(2) == {0, 1}
    assert graph.edge_items(0, 1) == {"a"}
    assert graph.edge_items(1, 2) == {"b"}
    assert graph.sources() == [0]


def test_copy_graph_rejects_self_loop():
    graph = CopyGraph(2)
    with pytest.raises(GraphError):
        graph.add_edge(0, 0)


def test_topological_order_of_dag(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    order = graph.topological_order()
    assert order == [0, 1, 2]
    assert graph.is_dag()


def test_cycle_detected():
    graph = CopyGraph(2)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    assert not graph.is_dag()
    with pytest.raises(GraphError):
        graph.topological_order()
    cycle = graph.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {0, 1}


def test_find_cycle_none_on_dag(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    assert graph.find_cycle() is None


def test_ancestors_descendants():
    graph = CopyGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 3)
    assert graph.ancestors(2) == {0, 1}
    assert graph.descendants(0) == {1, 2, 3}
    assert graph.ancestors(0) == set()
    assert graph.descendants(2) == set()


def test_without_edges_preserves_items():
    graph = CopyGraph(3)
    graph.add_edge(0, 1, "a")
    graph.add_edge(1, 2, "b")
    pruned = graph.without_edges([(0, 1)])
    assert pruned.edges == {(1, 2)}
    assert pruned.edge_items(1, 2) == {"b"}


def test_edge_weight_counts_items():
    graph = CopyGraph(2)
    graph.add_edge(0, 1, "a")
    graph.add_edge(0, 1, "b")
    assert graph.edge_weight(0, 1) == 2


# ----------------------------------------------------------------------
# Mutation APIs (the reconfiguration plane edits placements between
# epochs)
# ----------------------------------------------------------------------

def test_add_and_drop_replica(paper_placement):
    paper_placement.add_replica("b", 0)
    assert paper_placement.sites_of("b") == {0, 1, 2}
    paper_placement.drop_replica("b", 0)
    assert paper_placement.sites_of("b") == {1, 2}
    with pytest.raises(PlacementError):
        paper_placement.add_replica("a", 0)   # already the primary
    with pytest.raises(PlacementError):
        paper_placement.add_replica("a", 1)   # already a replica
    with pytest.raises(PlacementError):
        paper_placement.drop_replica("b", 0)  # holds no replica
    with pytest.raises(PlacementError):
        paper_placement.add_replica("zzz", 0)


def test_migrate_primary_promotes_and_demotes(paper_placement):
    paper_placement.migrate_primary("a", 2)
    assert paper_placement.primary_site("a") == 2
    # The old primary keeps its copy, demoted to a replica.
    assert paper_placement.replica_sites("a") == {0, 1}
    with pytest.raises(PlacementError):
        paper_placement.migrate_primary("a", 2)  # already the primary
    with pytest.raises(PlacementError):
        paper_placement.migrate_primary("b", 0)  # holds no replica


def test_clone_is_independent(paper_placement):
    other = paper_placement.clone()
    other.add_replica("b", 0)
    other.migrate_primary("a", 1)
    assert paper_placement.sites_of("b") == {1, 2}
    assert paper_placement.primary_site("a") == 0
    assert other.primary_site("a") == 1


def test_placement_view_slices_one_site(paper_placement):
    view = paper_placement.view(2)
    assert view.primary_items == frozenset()
    assert view.replica_items == {"a", "b"}
    assert view.items == {"a", "b"}
    assert view.holds("a") and not view.holds("zzz")
    assert view.is_member()
    empty = DataPlacement(2)
    empty.add_item("x", primary=0)
    assert not empty.view(1).is_member()


def test_shards_group_by_signature():
    placement = DataPlacement(3)
    placement.add_item(0, primary=0, replicas=[1])
    placement.add_item(3, primary=0, replicas=[1])
    placement.add_item(1, primary=1, replicas=[2])
    shards = placement.shards()
    assert shards[(0, (1,))] == {0, 3}
    assert shards[(1, (2,))] == {1}
    assert placement.shard_key(3) == (0, (1,))


def test_placement_json_round_trip(paper_placement):
    placement = DataPlacement(4)
    placement.add_item(0, primary=0, replicas=[1, 3])
    placement.add_item(7, primary=2)
    back = DataPlacement.from_json(placement.to_json())
    assert back.n_sites == 4
    assert back.sites_of(0) == {0, 1, 3}
    assert back.primary_site(7) == 2
    # Through real JSON text: int item keys stringify and must coerce
    # back (the wire's ``placement`` op does exactly this round trip).
    import json
    again = DataPlacement.from_json(
        json.loads(json.dumps(placement.to_json())))
    assert again.sites_of(0) == {0, 1, 3}


# ----------------------------------------------------------------------
# Sharded partial-replication generators
# ----------------------------------------------------------------------

def _sharded(scheme, m=12, n=48, k=2):
    import random
    params = WorkloadParams(n_sites=m, n_items=n,
                            placement_scheme=scheme,
                            replication_factor=k)
    # The sharded schemes are deterministic; the rng is never consulted.
    return generate_placement(params, random.Random(0))


@pytest.mark.parametrize("scheme", ["sharded-hash", "sharded-range"])
@pytest.mark.parametrize("m,n,k", [(12, 48, 2), (12, 48, 3),
                                   (6, 24, 2), (4, 7, 3)])
def test_sharded_placement_has_one_primary_and_honors_k(scheme, m, n, k):
    placement = _sharded(scheme, m, n, k)
    assert len(placement) == n
    for item in range(n):
        primary = placement.primary_site(item)
        assert 0 <= primary < m
        copies = placement.sites_of(item)
        assert primary in copies
        # k copies wherever the site space allows; truncated (never
        # wrapped — wrap-around would make the copy graph cyclic) at
        # the last site.
        assert len(copies) == min(k, m - primary)
    # Every site originates writes somewhere (no stranded generator).
    for site in range(min(m, n)):
        assert placement.primary_items_at(site)


@pytest.mark.parametrize("scheme", ["sharded-hash", "sharded-range"])
def test_sharded_placement_is_deterministic_and_a_dag(scheme):
    first = _sharded(scheme)
    second = _sharded(scheme)
    assert first.to_json() == second.to_json()
    assert CopyGraph.from_placement(first).is_dag()


def test_replication_factor_zero_means_replicate_to_every_later_site():
    placement = _sharded("sharded-hash", m=4, n=8, k=0)
    for item in range(8):
        primary = placement.primary_site(item)
        assert placement.sites_of(item) == set(range(primary, 4))


def test_range_scheme_keeps_items_contiguous():
    placement = _sharded("sharded-range", m=4, n=16, k=2)
    for site in range(4):
        primaries = sorted(placement.primary_items_at(site))
        assert primaries == list(range(primaries[0],
                                       primaries[-1] + 1))


def test_paper_scheme_is_still_the_default():
    assert WorkloadParams(n_sites=3, n_items=12).placement_scheme \
        == "paper"


def test_shard_trees_span_exactly_the_replicating_sites():
    placement = _sharded("sharded-hash", m=6, n=24, k=3)
    trees = build_shard_trees(placement)
    assert set(trees) == set(placement.shards())
    for (primary, replicas), tree in trees.items():
        span = {primary} | set(replicas)
        assert set(tree.sites) == span
        assert tree.roots() == [primary]
        # A chain: each replica's parent is its predecessor, so
        # forwarding never visits a non-replicating site.
        order = [primary] + list(replicas)
        for parent, child in zip(order, order[1:]):
            assert tree.parent[child] == parent
