"""Tests for data placement and copy-graph construction."""

import pytest

from repro.errors import GraphError, PlacementError
from repro.graph import CopyGraph, DataPlacement


@pytest.fixture
def paper_placement():
    """The 3-site placement of the paper's Example 1.1: item a primary at
    s0 with replicas at s1, s2; item b primary at s1 with replica at s2."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    return placement


def test_placement_basic_queries(paper_placement):
    assert paper_placement.primary_site("a") == 0
    assert paper_placement.replica_sites("a") == {1, 2}
    assert paper_placement.sites_of("b") == {1, 2}
    assert paper_placement.is_replicated("a")
    assert paper_placement.items_at(2) == {"a", "b"}
    assert paper_placement.primary_items_at(1) == {"b"}
    assert paper_placement.replica_items_at(1) == {"a"}
    assert paper_placement.replica_count() == 3
    assert len(paper_placement) == 2
    assert "a" in paper_placement


def test_placement_rejects_duplicates_and_bad_sites():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0)
    with pytest.raises(PlacementError):
        placement.add_item("a", primary=1)
    with pytest.raises(PlacementError):
        placement.add_item("b", primary=5)
    with pytest.raises(PlacementError):
        placement.add_item("c", primary=0, replicas=[0])
    with pytest.raises(PlacementError):
        placement.primary_site("zzz")


def test_unreplicated_item_has_no_replica_sites():
    placement = DataPlacement(2)
    placement.add_item("local", primary=1)
    assert placement.replica_sites("local") == frozenset()
    assert not placement.is_replicated("local")
    assert placement.sites_of("local") == {1}


def test_copy_graph_from_placement(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    assert graph.edges == {(0, 1), (0, 2), (1, 2)}
    assert graph.children(0) == {1, 2}
    assert graph.parents(2) == {0, 1}
    assert graph.edge_items(0, 1) == {"a"}
    assert graph.edge_items(1, 2) == {"b"}
    assert graph.sources() == [0]


def test_copy_graph_rejects_self_loop():
    graph = CopyGraph(2)
    with pytest.raises(GraphError):
        graph.add_edge(0, 0)


def test_topological_order_of_dag(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    order = graph.topological_order()
    assert order == [0, 1, 2]
    assert graph.is_dag()


def test_cycle_detected():
    graph = CopyGraph(2)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    assert not graph.is_dag()
    with pytest.raises(GraphError):
        graph.topological_order()
    cycle = graph.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {0, 1}


def test_find_cycle_none_on_dag(paper_placement):
    graph = CopyGraph.from_placement(paper_placement)
    assert graph.find_cycle() is None


def test_ancestors_descendants():
    graph = CopyGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 3)
    assert graph.ancestors(2) == {0, 1}
    assert graph.descendants(0) == {1, 2, 3}
    assert graph.ancestors(0) == set()
    assert graph.descendants(2) == set()


def test_without_edges_preserves_items():
    graph = CopyGraph(3)
    graph.add_edge(0, 1, "a")
    graph.add_edge(1, 2, "b")
    pruned = graph.without_edges([(0, 1)])
    assert pruned.edges == {(1, 2)}
    assert pruned.edge_items(1, 2) == {"b"}


def test_edge_weight_counts_items():
    graph = CopyGraph(2)
    graph.add_edge(0, 1, "a")
    graph.add_edge(0, 1, "b")
    assert graph.edge_weight(0, 1) == 2
