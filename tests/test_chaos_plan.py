"""Unit tests for the chaos fault-plan layer.

The plan is the replayable artifact of the whole harness: everything a
chaos run injects must be a pure function of the plan's seed and
script, and the script must survive a JSON round trip unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos.plan import (
    PROFILES,
    CorruptFault,
    FaultPlan,
    KillFault,
    LinkFault,
    LinkFaultInjector,
    profile_plan,
)


def full_plan() -> FaultPlan:
    return FaultPlan(seed=7, events=(
        LinkFault(delay=0.001, jitter=0.004, reorder=0.1),
        LinkFault(src=0, dst=2, drop=0.2, ack_loss=0.1),
        KillFault(site=1, at=0.4, down_for=0.3),
        CorruptFault(site=1, target="journal", mode="torn", offset=-5),
        CorruptFault(site=1, target="wal", mode="bitflip",
                     offset=12, bit=6),
    ))


def test_plan_json_round_trip_is_lossless():
    plan = full_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    # And through an actual string, as the CLI artifacts do it.
    assert FaultPlan.from_json(
        json.loads(json.dumps(plan.to_json()))) == plan


def test_plan_save_load_round_trip(tmp_path):
    plan = full_plan()
    path = str(tmp_path / "plan.json")
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_plan_event_views_partition_and_sort():
    plan = full_plan()
    assert len(plan.link_events()) == 2
    assert [e.site for e in plan.kill_events()] == [1]
    assert len(plan.corrupt_events()) == 2
    assert plan.corrupt_events(site=0) == []
    # Kill events come back sorted by schedule time.
    multi = FaultPlan(events=(KillFault(site=2, at=0.9),
                              KillFault(site=0, at=0.1)))
    assert [e.site for e in multi.kill_events()] == [0, 2]


@pytest.mark.parametrize("bad, message", [
    (LinkFault(drop=1.5), "probability"),
    (LinkFault(ack_loss=-0.1), "probability"),
    (LinkFault(delay=-1.0), "negative"),
    (KillFault(site=0, at=-0.5), "negative"),
    (CorruptFault(site=0, target="inbox"), "target"),
    (CorruptFault(site=0, mode="scribble"), "mode"),
    (CorruptFault(site=0, bit=8), "bit"),
])
def test_validate_rejects_malformed_events(bad, message):
    with pytest.raises(ValueError, match=message):
        FaultPlan(events=(bad,)).validate()


def test_validate_rejects_kill_outside_cluster():
    plan = FaultPlan(events=(KillFault(site=5, at=0.1),))
    plan.validate()  # fine without a cluster size
    with pytest.raises(ValueError, match="outside the cluster"):
        plan.validate(n_sites=3)


def test_every_profile_yields_a_valid_plan():
    for name in sorted(PROFILES):
        for n_sites in (2, 3, 5):
            plan = profile_plan(name, seed=3, n_sites=n_sites)
            plan.validate(n_sites=n_sites)
            # Profiles are replayable artifacts too.
            assert FaultPlan.from_json(plan.to_json()) == plan


def test_unknown_profile_raises():
    with pytest.raises((KeyError, ValueError)):
        profile_plan("does-not-exist", seed=0, n_sites=3)


def test_injector_decisions_are_deterministic_per_seed():
    plan = FaultPlan(seed=13, events=(
        LinkFault(delay=0.001, jitter=0.01, drop=0.3, ack_loss=0.2,
                  reorder=0.2),))
    frames = [(src, dst, seq, 1)
              for src in range(3) for dst in range(3) if src != dst
              for seq in range(1, 20)]
    first = LinkFaultInjector(plan)
    second = LinkFaultInjector(plan)
    for frame in frames:
        assert first.on_frame(*frame) == second.on_frame(*frame)
    assert first.sorted_log() == second.sorted_log()
    # Arrival order must not matter either.
    shuffled = LinkFaultInjector(plan)
    for frame in reversed(frames):
        shuffled.on_frame(*frame)
    assert shuffled.sorted_log() == first.sorted_log()


def test_injector_reseeds_change_decisions():
    events = (LinkFault(jitter=0.01, drop=0.3),)
    frames = [(0, 1, seq, 1) for seq in range(1, 40)]
    a = LinkFaultInjector(FaultPlan(seed=1, events=events))
    b = LinkFaultInjector(FaultPlan(seed=2, events=events))
    verdicts_a = [a.on_frame(*f) for f in frames]
    verdicts_b = [b.on_frame(*f) for f in frames]
    assert verdicts_a != verdicts_b


def test_injector_resend_attempt_rerolls():
    # A deterministic drop must not repeat forever: the resend is a new
    # attempt and re-rolls the drop decision.
    plan = FaultPlan(seed=0, events=(LinkFault(drop=0.5),))
    injector = LinkFaultInjector(plan)
    verdicts = [injector.on_frame(0, 1, 1, 1) for _ in range(64)]
    assert any(v.drop for v in verdicts)
    assert any(not v.drop for v in verdicts)
    attempts = [entry["attempt"] for entry in injector.log]
    assert attempts == list(range(64))


def test_injector_log_entries_are_replay_shaped():
    plan = FaultPlan(seed=5, events=(
        LinkFault(delay=0.002, jitter=0.003),))
    injector = LinkFaultInjector(plan)
    injector.on_frame(0, 1, 1, 1)
    injector.on_frame(1, 2, 4, 1)
    for entry in injector.sorted_log():
        assert set(entry) >= {"src", "dst", "seq", "attempt", "delay",
                              "drop", "ack_loss", "reorder"}
        assert 0.002 <= entry["delay"] < 0.005


def test_injector_ignores_unmatched_channels():
    plan = FaultPlan(seed=0, events=(
        LinkFault(src=0, dst=1, delay=0.01),))
    injector = LinkFaultInjector(plan)
    assert injector.on_frame(1, 0, 1, 1) is None
    assert injector.on_frame(2, 1, 1, 1) is None
    assert injector.on_frame(0, 1, 1, 1) is not None
    # Unmatched frames leave no trace in the injection log.
    assert len(injector.log) == 1


def test_empty_plan_never_injects():
    injector = LinkFaultInjector(FaultPlan(seed=9))
    for seq in range(1, 50):
        assert injector.on_frame(0, 1, seq, 1) is None
    assert injector.log == []
