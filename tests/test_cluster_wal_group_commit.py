"""Group-commit WAL/journal: buffering, sync barriers, crash honesty.

The durability promise of a group-committed record attaches to the
``sync()`` that covers it, never to the ``append()``.  These tests pin
down both sides of that contract:

- records buffered between sync points coalesce into **one** write+flush
  (the amortization the live hot path depends on), and the size cap /
  timer force a sync when no explicit barrier arrives;
- a crash — simulated by ``abandon()`` or by truncating the file at
  *every* byte offset — loses only never-promised records, and reload
  repairs the file to the last complete record boundary;
- ``"fsync"`` durability really calls :func:`os.fsync`; a malformed
  *terminated* line (impossible from a torn append) is corruption, not
  crash damage.
"""

import asyncio
import json
import os
import shutil

import pytest

from repro.cluster.codec import encode_message
from repro.cluster.wal import CorruptLogError, FileWal, MessageJournal
from repro.network.message import Message, MessageType
from repro.storage.log import LogRecordKind
from repro.types import GlobalTransactionId


def gid(seq):
    return GlobalTransactionId(0, seq)


def append_n(wal, count, start=0):
    for index in range(start, start + count):
        wal.append(LogRecordKind.CREATE, item=index, value=index,
                   time=float(index))


# ----------------------------------------------------------------------
# Buffering and sync points
# ----------------------------------------------------------------------

def test_appends_buffer_until_sync_then_one_write(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 5)
    assert wal.pending_sync == 5
    assert wal.syncs == 0
    # Nothing promised yet: a reload (the crash view) sees no records.
    assert not path.exists() or FileWal(path).recovered_records == 0

    assert wal.sync() == 5          # one barrier covers all five
    assert wal.pending_sync == 0
    assert wal.syncs == 1
    assert FileWal(path).recovered_records == 5
    wal.close()


def test_without_group_commit_every_append_is_a_sync(tmp_path):
    wal = FileWal(tmp_path / "site0.wal")  # group_commit=False
    append_n(wal, 3)
    assert wal.pending_sync == 0
    assert wal.syncs == 3           # the pre-batching behaviour
    wal.close()


def test_max_pending_cap_forces_a_sync(tmp_path):
    wal = FileWal(tmp_path / "site0.wal", group_commit=True,
                  max_pending=4)
    append_n(wal, 11)
    # Two forced syncs at 4 and 8; three records still pending.
    assert wal.syncs == 2
    assert wal.pending_sync == 3
    wal.close()
    assert wal.syncs == 3           # close drains the tail


def test_flush_interval_timer_syncs_without_explicit_barrier(tmp_path):
    async def scenario():
        wal = FileWal(tmp_path / "site0.wal", group_commit=True,
                      flush_interval=0.01)
        append_n(wal, 3)
        assert wal.pending_sync == 3
        deadline = asyncio.get_event_loop().time() + 5.0
        while wal.pending_sync:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.005)
        assert wal.syncs == 1
        wal.close()

    asyncio.run(scenario())


def test_sync_with_nothing_pending_is_free(tmp_path):
    wal = FileWal(tmp_path / "site0.wal", group_commit=True)
    assert wal.sync() == 0
    assert wal.syncs == 0           # no empty write+flush cycles
    wal.close()


def test_unknown_durability_level_rejected(tmp_path):
    with pytest.raises(ValueError):
        FileWal(tmp_path / "site0.wal", durability="scout's-honour")


# ----------------------------------------------------------------------
# Crash semantics
# ----------------------------------------------------------------------

def test_abandon_loses_only_unpromised_records(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 4)
    wal.sync()                      # these four are promised
    append_n(wal, 3, start=4)       # these three are not
    wal.abandon()                   # the crash

    survivor = FileWal(path)
    assert survivor.recovered_records == 4
    assert [record.item for record in survivor] == [0, 1, 2, 3]


def test_crash_truncation_at_every_byte_offset(tmp_path):
    """Cut the file at every byte: reload must keep exactly the
    complete newline-terminated prefix, repair the file to that
    boundary, and accept appends afterwards."""
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 6)
    wal.close()
    data = path.read_bytes()

    for cut in range(len(data) + 1):
        torn = tmp_path / "torn.wal"
        torn.write_bytes(data[:cut])
        survivors = data[:cut].count(b"\n")
        reloaded = FileWal(torn)
        assert reloaded.recovered_records == survivors
        assert reloaded.torn_tail == (cut > 0 and data[cut - 1:cut]
                                      != b"\n" )
        # The torn bytes are gone from disk, not just skipped in RAM.
        boundary = data[:cut].rfind(b"\n") + 1
        reloaded.close()
        assert torn.read_bytes() == data[:boundary]
        # Appending lands on a clean record boundary.
        reloaded = FileWal(torn)
        reloaded.append(LogRecordKind.CREATE, item=99, value=99,
                        time=9.0)
        reloaded.close()
        assert FileWal(torn).recovered_records == survivors + 1
        torn.unlink()


def test_malformed_terminated_line_is_corruption_not_crash(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 2)
    wal.close()
    with open(path, "ab") as handle:
        handle.write(b"{not json}\n")          # terminated => promised
    with pytest.raises(CorruptLogError):
        FileWal(path)
    # Same verdict for a well-formed line that is not an object.
    shutil.copy(path, tmp_path / "x.wal")
    os.truncate(path, path.stat().st_size - len(b"{not json}\n"))
    with open(path, "ab") as handle:
        handle.write(b"[1, 2]\n")
    with pytest.raises(CorruptLogError):
        FileWal(path)


# ----------------------------------------------------------------------
# fsync honesty
# ----------------------------------------------------------------------

def test_fsync_durability_actually_calls_os_fsync(tmp_path,
                                                  monkeypatch):
    fsynced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (fsynced.append(fd),
                                    real_fsync(fd))[1])

    wal = FileWal(tmp_path / "site0.wal", durability="fsync",
                  group_commit=True)
    append_n(wal, 5)
    assert fsynced == []            # buffered: no promise, no fsync
    wal.sync()
    assert len(fsynced) == 1        # one barrier, one disk round trip
    wal.close()

    journal = MessageJournal(tmp_path / "site0.wal.inbox",
                             durability="fsync", group_commit=True)
    journal.append(1, "inc-a", 1, encode_message(
        Message(MessageType.SECONDARY, 1, 0,
                {"gid": gid(1), "writes": {0: 1}})))
    before = len(fsynced)
    journal.sync()
    assert len(fsynced) == before + 1
    journal.close()


def test_flush_and_none_levels_never_fsync(tmp_path, monkeypatch):
    monkeypatch.setattr(os, "fsync",
                        lambda fd: pytest.fail("fsync at level<fsync"))
    for durability in ("none", "flush"):
        wal = FileWal(tmp_path / (durability + ".wal"),
                      durability=durability, group_commit=True)
        append_n(wal, 3)
        wal.sync()
        wal.close()


# ----------------------------------------------------------------------
# MessageJournal group commit (journal-then-ack)
# ----------------------------------------------------------------------

def _secondary(seq):
    return Message(MessageType.SECONDARY, src=1, dst=0,
                   payload={"gid": GlobalTransactionId(1, seq),
                            "writes": {3: seq}})


def test_journal_batch_is_atomic_at_the_sync_barrier(tmp_path):
    path = tmp_path / "site0.wal.inbox"
    journal = MessageJournal(path, group_commit=True)
    for seq in range(1, 5):
        journal.append(1, "inc-a", seq,
                       encode_message(_secondary(seq)))
    assert journal.pending_sync == 4
    # Crash before the sync barrier: the ack never went out, so the
    # sender still holds all four and will resend — losing them is
    # correct, acking them would not have been.
    journal.abandon()
    assert len(MessageJournal(path)) == 0

    journal = MessageJournal(path, group_commit=True)
    for seq in range(1, 5):
        journal.append(1, "inc-a", seq,
                       encode_message(_secondary(seq)))
    assert journal.sync() == 4      # journal-then-ack: one barrier
    assert journal.syncs == 1
    journal.abandon()               # crash *after* the barrier
    reloaded = MessageJournal(path)
    assert [entry["seq"] for entry in reloaded.entries] == [1, 2, 3, 4]


def test_journal_torn_tail_repaired_on_reload(tmp_path):
    path = tmp_path / "site0.wal.inbox"
    journal = MessageJournal(path, group_commit=True)
    for seq in range(1, 4):
        journal.append(1, "inc-a", seq,
                       encode_message(_secondary(seq)))
    journal.sync()
    journal.close()
    with open(path, "ab") as handle:
        handle.write(b'{"src": 1, "inc": "inc-a", "seq": 4')  # torn

    reloaded = MessageJournal(path)
    assert reloaded.torn_tail
    assert [entry["seq"] for entry in reloaded.entries] == [1, 2, 3]
    # Repaired in place: a fresh reload sees a clean file.
    assert not MessageJournal(path).torn_tail


def test_wal_sync_coalesces_interleaved_transactions(tmp_path):
    """The group-commit story end to end: several transactions' records
    interleave in the buffer, one sync makes them all durable, and the
    reloaded WAL replays them in append order."""
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    for seq in (1, 2):
        wal.append(LogRecordKind.BEGIN, gid=gid(seq), time=0.0)
    for seq in (1, 2):
        wal.append(LogRecordKind.WRITE, gid=gid(seq), item=seq,
                   value=seq * 10, time=0.1)
        wal.append(LogRecordKind.COMMIT, gid=gid(seq), time=0.2)
    assert wal.sync() == 6
    wal.close()

    reloaded = FileWal(path)
    kinds = [record.kind for record in reloaded]
    assert kinds == [LogRecordKind.BEGIN, LogRecordKind.BEGIN,
                     LogRecordKind.WRITE, LogRecordKind.COMMIT,
                     LogRecordKind.WRITE, LogRecordKind.COMMIT]
    assert json.loads(path.read_text().splitlines()[0])  # real JSONL


# ----------------------------------------------------------------------
# Corruption matrix: flipped bits must never be silently accepted
# ----------------------------------------------------------------------

def _reload_verdict(path):
    """Reload a damaged WAL; returns ``("error", exc)`` or
    ``("loaded", wal)``."""
    try:
        return "loaded", FileWal(path)
    except CorruptLogError as exc:
        return "error", exc


def test_bit_flip_at_every_byte_of_final_record_is_never_silent(
        tmp_path):
    """Flip single bits at every byte of the final record: reload must
    either raise :class:`CorruptLogError` (the checksum catches it) or
    repair a torn tail (the flip destroyed the line framing) — it must
    never hand back the full record count with a silently altered
    record."""
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 6)
    wal.close()
    data = path.read_bytes()
    last_start = data.rfind(b"\n", 0, len(data) - 1) + 1

    for offset in range(last_start, len(data)):
        for bit in (0, 3, 7):
            damaged = bytearray(data)
            damaged[offset] ^= 1 << bit
            victim = tmp_path / "flip.wal"
            victim.write_bytes(bytes(damaged))
            verdict, result = _reload_verdict(victim)
            if verdict == "loaded":
                # Only acceptable if the reader treated the flipped
                # tail as torn: final record dropped and repaired,
                # never parsed as valid.
                assert result.torn_tail, \
                    "flip at byte {} bit {} was silently " \
                    "accepted".format(offset, bit)
                assert result.recovered_records == 5
                result.close()
            victim.unlink()


def test_bit_flip_in_interior_record_raises(tmp_path):
    """A flip in a fully-terminated interior record can never look like
    a torn tail — it must raise."""
    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 6)
    wal.close()
    data = path.read_bytes()
    second_record_at = data.index(b"\n") + 1

    for bit in (0, 4):
        damaged = bytearray(data)
        # Flip inside the stored checksum value of record 2 ("c" sorts
        # first in the canonical encoding, so byte +6 is inside it).
        damaged[second_record_at + 6] ^= 1 << bit
        victim = tmp_path / "flip.wal"
        victim.write_bytes(bytes(damaged))
        with pytest.raises(CorruptLogError):
            FileWal(victim)
        victim.unlink()


def test_journal_bit_flip_at_every_byte_of_final_entry(tmp_path):
    """Same contract for the inbox journal."""
    path = tmp_path / "site0.inbox"
    journal = MessageJournal(path, group_commit=True)
    for seq in range(1, 5):
        journal.append(1, "inc-a", seq, encode_message(
            Message(MessageType.SECONDARY, src=1, dst=0,
                    payload={"gid": "T1.%d" % seq})))
    journal.sync()
    journal.close()
    data = path.read_bytes()
    last_start = data.rfind(b"\n", 0, len(data) - 1) + 1

    for offset in range(last_start, len(data)):
        damaged = bytearray(data)
        damaged[offset] ^= 1 << 2
        victim = tmp_path / "flip.inbox"
        victim.write_bytes(bytes(damaged))
        try:
            reloaded = MessageJournal(victim)
        except CorruptLogError:
            pass
        else:
            assert reloaded.torn_tail, \
                "journal flip at byte {} silently accepted".format(
                    offset)
            assert len(reloaded.entries) == 3
        victim.unlink()


def test_checksummed_lines_round_trip_and_detect_missing_field(
        tmp_path):
    """Every line carries ``"c"``; a record without one (hand-edited or
    pre-checksum file) is corruption, not a quiet default."""
    from repro.cluster.wal import record_checksum

    path = tmp_path / "site0.wal"
    wal = FileWal(path, group_commit=True)
    append_n(wal, 2)
    wal.close()
    lines = path.read_text().splitlines()
    for line in lines:
        obj = json.loads(line)
        stored = obj.pop("c")
        assert stored == record_checksum(obj)

    stripped = json.loads(lines[0])
    del stripped["c"]
    path.write_bytes(json.dumps(stripped).encode() + b"\n")
    with pytest.raises(CorruptLogError):
        FileWal(path)
