"""Tests for DAG(T) vector timestamps, including the paper's worked
examples after Def. 3.3 and property-based total-order checks."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamps import SiteTuple, VectorTimestamp
from repro.errors import ConfigurationError


def ts(*pairs, epoch=0):
    return VectorTimestamp(
        tuple(SiteTuple(site, counter) for site, counter in pairs),
        epoch=epoch)


def test_paper_example_1_prefix_is_smaller():
    # (s1,1) < (s1,1)(s2,1)
    assert ts((1, 1)) < ts((1, 1), (2, 1))


def test_paper_example_2_reversed_site_order():
    # (s1,1)(s3,1) < (s1,1)(s2,1)
    assert ts((1, 1), (3, 1)) < ts((1, 1), (2, 1))


def test_paper_example_3_counter_order():
    # (s1,1)(s2,1) < (s1,1)(s2,2)
    assert ts((1, 1), (2, 1)) < ts((1, 1), (2, 2))


def test_example_from_section_3_3_progress_discussion():
    """(s2, j) < (s1, 1) for all j — the starvation scenario motivating
    epochs: site s3 would never execute T1 with timestamp (s1,1)."""
    for j in range(5):
        assert ts((2, j)) < ts((1, 1))


def test_epoch_dominates_vector_comparison():
    low_epoch = ts((1, 100), epoch=0)
    high_epoch = ts((5, 1), epoch=1)
    assert low_epoch < high_epoch
    assert not high_epoch < low_epoch


def test_equal_timestamps():
    assert ts((1, 1), (2, 2)) == ts((1, 1), (2, 2))
    assert ts((1, 1)) != ts((1, 1), epoch=1)
    assert hash(ts((1, 1))) == hash(ts((1, 1)))


def test_empty_timestamp_is_minimum_of_its_epoch():
    assert ts() < ts((0, 0))
    assert ts() < ts((3, 7))


def test_tuples_must_be_site_ascending():
    with pytest.raises(ConfigurationError):
        ts((2, 1), (1, 1))
    with pytest.raises(ConfigurationError):
        ts((1, 1), (1, 2))


def test_concat_appends_larger_site():
    base = ts((0, 1))
    extended = base.concat(SiteTuple(2, 5))
    assert extended == ts((0, 1), (2, 5))
    with pytest.raises(ConfigurationError):
        extended.concat(SiteTuple(1, 1))


def test_concat_preserves_epoch():
    base = ts((0, 1), epoch=7)
    assert base.concat(SiteTuple(1, 1)).epoch == 7


def test_with_epoch():
    assert ts((0, 1)).with_epoch(3) == ts((0, 1), epoch=3)


def test_counter_of():
    stamp = ts((0, 4), (2, 9))
    assert stamp.counter_of(0) == 4
    assert stamp.counter_of(2) == 9
    assert stamp.counter_of(1) is None


def test_str_rendering():
    assert str(ts((1, 2), (3, 4), epoch=5)) == "e5:(s1,2)(s3,4)"
    assert str(ts()) == "e0:()"


# ----------------------------------------------------------------------
# Property-based total-order checks
# ----------------------------------------------------------------------

timestamp_strategy = st.builds(
    lambda sites, counters, epoch: VectorTimestamp(
        tuple(SiteTuple(site, counter)
              for site, counter in zip(sorted(sites), counters)),
        epoch=epoch),
    st.sets(st.integers(0, 5), max_size=4),
    st.lists(st.integers(0, 3), min_size=4, max_size=4),
    st.integers(0, 2),
)


@settings(max_examples=200, deadline=None)
@given(a=timestamp_strategy, b=timestamp_strategy)
def test_property_trichotomy(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@settings(max_examples=200, deadline=None)
@given(a=timestamp_strategy, b=timestamp_strategy, c=timestamp_strategy)
def test_property_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@settings(max_examples=100, deadline=None)
@given(a=timestamp_strategy)
def test_property_irreflexive(a):
    assert not a < a


@settings(max_examples=100, deadline=None)
@given(a=timestamp_strategy, b=timestamp_strategy)
def test_property_consistent_with_sorting(a, b):
    ordered = sorted([a, b])
    assert ordered[0] <= ordered[1]


def test_exhaustive_total_order_on_small_universe():
    """Brute-force check: sorting a family of timestamps yields a strict
    chain under the Def. 3.3 comparison."""
    pool = []
    for sites in itertools.chain.from_iterable(
            itertools.combinations(range(3), k) for k in range(3)):
        for counters in itertools.product(range(2), repeat=len(sites)):
            pool.append(ts(*zip(sites, counters)) if sites else ts())
    ordered = sorted(pool)
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier < later or earlier == later
        assert not later < earlier
