"""Tests for the indiscriminate (commercial-style) lazy baseline —
including demonstrating the anomalies the paper's protocols eliminate."""

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.workload.params import WorkloadParams
from tests.helpers import histories, make_system, run_client, spec

CONTENDED = WorkloadParams(
    n_sites=5, n_items=30, threads_per_site=3,
    transactions_per_thread=25, replication_probability=0.6,
    site_probability=0.8, backedge_probability=0.4,
    read_op_probability=0.5, read_txn_probability=0.2,
    deadlock_timeout=0.02)


def test_updates_reach_replicas_and_reconcile():
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    env, system, proto = make_system(placement, "indiscriminate")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(0, 2, ("w", "a")), 0.1, outcomes)
    env.run(until=1.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    check_convergence(system)


def test_last_writer_wins_discards_stale_update():
    """Feed the replica an old update after a newer one was applied: the
    Thomas write rule drops it and the replica keeps the newer value."""
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    env, system, proto = make_system(placement, "indiscriminate")
    site1 = system.site_of(1)

    from repro.network.message import Message, MessageType
    from repro.types import GlobalTransactionId

    def feed():
        newer = Message(MessageType.SECONDARY, 0, 1,
                        {"gid": GlobalTransactionId(0, 2),
                         "writes": {"a": "new"}, "commit_time": 5.0})
        older = Message(MessageType.SECONDARY, 0, 1,
                        {"gid": GlobalTransactionId(0, 1),
                         "writes": {"a": "old"}, "commit_time": 1.0})
        yield env.timeout(0.01)
        proto._make_handler(site1)(newer)
        yield env.timeout(0.05)
        proto._make_handler(site1)(older)

    env.process(feed())
    env.run(until=1.0)
    assert site1.engine.item("a").value == "new"
    assert site1.engine.item("a").committed_version == 1


def test_without_reconciliation_arrival_order_wins():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    env, system, proto = make_system(
        placement, "indiscriminate",
        protocol_options={"reconcile": False})
    site1 = system.site_of(1)

    from repro.network.message import Message, MessageType
    from repro.types import GlobalTransactionId

    def feed():
        yield env.timeout(0.01)
        proto._make_handler(site1)(Message(
            MessageType.SECONDARY, 0, 1,
            {"gid": GlobalTransactionId(0, 2), "writes": {"a": "new"},
             "commit_time": 5.0}))
        yield env.timeout(0.05)
        proto._make_handler(site1)(Message(
            MessageType.SECONDARY, 0, 1,
            {"gid": GlobalTransactionId(0, 1), "writes": {"a": "old"},
             "commit_time": 1.0}))

    env.process(feed())
    env.run(until=1.0)
    # Raw arrival order: the stale value overwrote the newer one.
    assert site1.engine.item("a").value == "old"
    assert site1.engine.item("a").committed_version == 2


def test_contended_workload_produces_anomalies_checker_catches():
    """The headline negative result: across seeds, indiscriminate
    propagation yields DSG cycles on a contended workload."""
    violation_seen = False
    for seed in range(4):
        config = ExperimentConfig(protocol="indiscriminate",
                                  params=CONTENDED, seed=seed,
                                  strict_serializability=False,
                                  drain_time=2.0)
        result = run_experiment(config)
        if not result.serializable:
            violation_seen = True
            assert result.violation_cycle is not None
            assert result.violation_cycle[0] == \
                result.violation_cycle[-1]
    assert violation_seen


def test_same_workload_is_serializable_under_backedge():
    for seed in range(4):
        config = ExperimentConfig(protocol="backedge", params=CONTENDED,
                                  seed=seed, drain_time=2.0)
        assert run_experiment(config).serializable is True


def test_example_11_interleaving_breaks_under_indiscriminate():
    """Reconstruct Example 1.1's bad interleaving: delay the s0->s2 link
    so T1's update reaches s2 after T2's, while s1 sees them in order."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "indiscriminate",
                                     latency=0.001)
    # Delay only the s0 -> s2 channel.
    slow = system.network._channel(0, 2)
    slow._latency = 0.5

    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.00, outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.05,
               outcomes)
    run_client(env, proto, spec(2, 1, ("r", "a"), ("r", "b")), 0.10,
               outcomes)
    env.run(until=2.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 3
    graph = build_serialization_graph(histories(system))
    cycle = find_dsg_cycle(graph)
    assert cycle is not None  # The Example 1.1 anomaly, reproduced.
