"""The reconfiguration plane: placement changes, epoch replay, spec
fingerprints, and live epoch transitions on real clusters.

The live tests boot partial-replication clusters (sharded placement,
replication factor 2) on localhost TCP and drive epoch transitions
through :class:`repro.reconfig.ReconfigCoordinator` while the paper's
closed-loop workload keeps running — the acceptance scenario of the
reconfiguration plane.  Offline tests cover the change vocabulary and
the WAL epoch-replay rule.

Port plan: this file owns 8100-8199 so it never collides with the
other live-cluster suites (7450-7900) or the CI fixtures.
"""

import asyncio
import dataclasses
import os
import random

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.codec import decode_value
from repro.cluster.loadgen import history_from_status, wait_quiescent
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.graph import CopyGraph, DataPlacement
from repro.harness.convergence import divergent_copies
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.obs.monitor import MonitorConfig, Watchdog
from repro.reconfig import (
    PlacementChange,
    ReconfigCoordinator,
    ReconfigError,
)
from repro.reconfig.change import replay_epochs
from repro.sim.rng import RngRegistry
from repro.workload.distribution import generate_placement
from repro.workload.generator import TransactionGenerator
from repro.workload.params import WorkloadParams


# ----------------------------------------------------------------------
# PlacementChange (pure data)
# ----------------------------------------------------------------------

@pytest.fixture
def chain6():
    """6-site sharded-hash placement, k=2 (each item at its primary and
    the next site; items at s5 stay unreplicated)."""
    params = WorkloadParams(n_sites=6, n_items=12,
                            placement_scheme="sharded-hash",
                            replication_factor=2)
    return generate_placement(params, random.Random(0))


def test_change_validation():
    with pytest.raises(ReconfigError):
        PlacementChange(kind="shuffle", site=0).validate()
    with pytest.raises(ReconfigError):
        PlacementChange(kind="add-replica", site=0).validate()
    PlacementChange(kind="remove-site", site=0).validate()


def test_change_apply_each_kind(chain6):
    added = PlacementChange(kind="add-replica", site=4,
                            item=1).apply(chain6)
    assert added.sites_of(1) == {1, 2, 4}
    assert chain6.sites_of(1) == {1, 2}  # input untouched

    dropped = PlacementChange(kind="drop-replica", site=2,
                              item=1).apply(chain6)
    assert dropped.sites_of(1) == {1}

    migrated = PlacementChange(kind="migrate-primary", site=2,
                               item=1).apply(chain6)
    assert migrated.primary_site(1) == 2
    assert migrated.replica_sites(1) == {1}

    with pytest.raises(ReconfigError):
        PlacementChange(kind="add-replica", site=2, item=1).apply(chain6)
    with pytest.raises(ReconfigError):
        # s0 still holds primaries.
        PlacementChange(kind="remove-site", site=0).apply(chain6)


def test_remove_site_drops_every_replica(chain6):
    # s1 holds replicas of items 0 and 6 plus primaries 1, 7: migrating
    # the primaries away first makes the removal legal.
    working = chain6.clone()
    working.migrate_primary(1, 2)
    working.migrate_primary(7, 2)
    removed = PlacementChange(kind="remove-site", site=1).apply(working)
    assert not removed.items_at(1)
    assert not removed.view(1).is_member()


def test_affected_and_gained_items(chain6):
    change = PlacementChange(kind="add-replica", site=4, item=1)
    assert change.affected_items(chain6) == {1}
    assert change.gained_items(chain6, 4) == {1}
    assert change.gained_items(chain6, 2) == frozenset()
    removal = PlacementChange(kind="remove-site", site=5)
    assert removal.affected_items(chain6) == \
        chain6.replica_items_at(5)


def test_check_against_rejects_cycles_for_tree_protocols(chain6):
    backward = PlacementChange(kind="add-replica", site=1, item=4)
    with pytest.raises(ReconfigError):
        backward.check_against(chain6, protocol="dag_wt")
    # BackEdge tolerates cyclic copy graphs (eager backedge 2PC).
    result = backward.check_against(chain6, protocol="backedge")
    assert not CopyGraph.from_placement(result).is_dag()


def test_check_against_protects_the_last_primary():
    placement = DataPlacement(2)
    placement.add_item(0, primary=0, replicas=[1])
    placement.add_item(1, primary=1)
    placement.add_item(2, primary=0)  # s0 keeps a primary afterwards
    change = PlacementChange(kind="migrate-primary", site=1, item=0)
    ok = change.check_against(placement, protocol="dag_wt")
    assert ok.primary_site(0) == 1
    # Now move s0's only primary away: refused unless explicitly allowed.
    lonely = DataPlacement(2)
    lonely.add_item(0, primary=0, replicas=[1])
    with pytest.raises(ReconfigError):
        change.check_against(lonely, protocol="dag_wt")
    allowed = change.check_against(lonely, protocol="dag_wt",
                                   allow_empty_primaries=True)
    assert not allowed.primary_items_at(0)


def test_change_json_round_trip():
    for change in (PlacementChange(kind="add-replica", site=3, item=7),
                   PlacementChange(kind="remove-site", site=2)):
        assert PlacementChange.from_json(change.to_json()) == change


def test_replay_epochs_applies_in_order_and_skips_duplicates(chain6):
    add = PlacementChange(kind="add-replica", site=4, item=1)
    migrate = PlacementChange(kind="migrate-primary", site=4, item=1)
    commits = [(1, add.to_json()),
               (1, add.to_json()),       # duplicate commit record
               (2, migrate.to_json()),
               (2, migrate.to_json())]
    epoch, placement = replay_epochs(chain6, commits)
    assert epoch == 2
    assert placement.primary_site(1) == 4
    assert placement.sites_of(1) == {1, 2, 4}
    # Starting past the records is a no-op.
    epoch, placement = replay_epochs(chain6, commits, start_epoch=2)
    assert epoch == 2
    assert placement.primary_site(1) == 1


# ----------------------------------------------------------------------
# ClusterSpec epochs
# ----------------------------------------------------------------------

def test_spec_epoch_changes_fingerprint_but_not_genesis():
    params = WorkloadParams(n_sites=4, n_items=8,
                            placement_scheme="sharded-hash",
                            replication_factor=2)
    spec = ClusterSpec(params=params, protocol="dag_wt", seed=3,
                       base_port=8190)
    later = dataclasses.replace(spec, epoch=2)
    assert spec.epoch == 0
    assert later.fingerprint() != spec.fingerprint()
    assert later.genesis_fingerprint() == spec.fingerprint()
    round_tripped = ClusterSpec.from_json(later.to_json())
    assert round_tripped.epoch == 2
    assert round_tripped.fingerprint() == later.fingerprint()


def test_spec_fingerprint_covers_placement_scheme():
    params = WorkloadParams(n_sites=4, n_items=8,
                            placement_scheme="sharded-hash",
                            replication_factor=2)
    spec = ClusterSpec(params=params, protocol="dag_wt", seed=3,
                       base_port=8190)
    other = dataclasses.replace(
        spec, params=params.replaced(replication_factor=3))
    assert other.fingerprint() != spec.fingerprint()


# ----------------------------------------------------------------------
# Live epoch transitions
# ----------------------------------------------------------------------

def _spec(base_port, n_sites=6, n_items=12, txns=8):
    params = WorkloadParams(n_sites=n_sites, n_items=n_items,
                            placement_scheme="sharded-hash",
                            replication_factor=2,
                            threads_per_site=1,
                            transactions_per_thread=txns,
                            read_txn_probability=0.2,
                            deadlock_timeout=0.05)
    return ClusterSpec(params=params, protocol="dag_wt", seed=3,
                       base_port=base_port)


async def _boot(spec, wal_dir, anti_entropy_interval=0.3):
    servers = {}
    for site in range(spec.params.n_sites):
        servers[site] = SiteServer(
            spec, site,
            wal_path=os.path.join(wal_dir, "s{}.wal".format(site)),
            anti_entropy_interval=anti_entropy_interval)
        await servers[site].start()
    client = ClusterClient(spec, timeout=5.0)
    await client.wait_ready()
    return servers, client


async def _shutdown(servers, client):
    await client.close()
    for server in servers.values():
        await server.stop()


def test_live_transitions_under_load_with_watchdog(tmp_path):
    """The acceptance scenario: a 12-site partial-replication cluster
    completes add-replica, remove-secondary (drop-replica) and
    migrate-primary transitions without stopping traffic — zero
    watchdog criticals across the transitions, and the convergence +
    serializability oracles green against the *final* placement."""
    spec = _spec(8100, n_sites=12, n_items=24)
    placement = spec.build_placement()

    async def scenario():
        servers, client = await _boot(spec, str(tmp_path))
        watchdog = Watchdog(spec, ClusterClient(spec, timeout=2.0,
                                                retries=1),
                            config=MonitorConfig(interval=0.25,
                                                 convergence_every=5,
                                                 trace_limit=0))
        watchdog_task = asyncio.get_running_loop().create_task(
            watchdog.run())
        generator = TransactionGenerator(
            spec.params, placement,
            RngRegistry(spec.seed).stream("workload"))
        outcomes = {"committed": 0, "aborted": 0, "unknown": 0}

        async def worker(site, thread):
            for txn_spec in generator.thread_stream(site, thread):
                outcome = await client.run_transaction(txn_spec)
                outcomes[outcome["status"]] += 1
                await asyncio.sleep(0.01)

        coordinator = ReconfigCoordinator(client, timeout=20.0)
        reports = []

        async def reconfigure():
            await asyncio.sleep(0.15)
            # Epoch 1: a new downstream replica (forward edge).
            reports.append(await coordinator.execute(PlacementChange(
                kind="add-replica", site=5, item=1)))
            # Epoch 2: remove-secondary — item 16 shares s4's shard
            # with item 4; dropping its s5 replica leaves item 4 the
            # only witness of the s4 -> s5 copy edge...
            reports.append(await coordinator.execute(PlacementChange(
                kind="drop-replica", site=5, item=16)))
            # Epoch 3: ...so promoting s5 to item 4's primary keeps
            # the copy graph a DAG (the old edge flips with it).
            reports.append(await coordinator.execute(PlacementChange(
                kind="migrate-primary", site=5, item=4)))

        await asyncio.gather(
            reconfigure(),
            *(worker(site, thread)
              for site in range(spec.params.n_sites)
              for thread in range(spec.params.threads_per_site)))
        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        epoch, final_placement = await coordinator.current_placement()
        watchdog.request_stop()
        await watchdog_task
        summary = watchdog.summary()
        watchdog.close()
        await watchdog.client.close()
        try:
            return (outcomes, reports, statuses, epoch,
                    final_placement, summary)
        finally:
            await _shutdown(servers, client)

    outcomes, reports, statuses, epoch, final_placement, summary = \
        asyncio.run(scenario())

    assert epoch == 3
    assert [r.epoch for r in reports] == [1, 2, 3]
    assert all(r.total_s < 20.0 for r in reports)
    assert outcomes["unknown"] == 0
    assert outcomes["committed"] > 0
    # Traffic never stopped and nothing paged: zero criticals across
    # all three transitions (site-down, lag-SLO, divergence rules all
    # armed and epoch-aware).
    assert summary["critical"] == 0, summary
    assert summary["epoch"] == 3

    assert final_placement.sites_of(1) >= {1, 5}
    assert final_placement.sites_of(16) == {4}
    assert final_placement.primary_site(4) == 5
    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    assert divergent_copies(final_placement, state) == []
    histories = [history_from_status(status)
                 for status in statuses.values()]
    assert find_dsg_cycle(build_serialization_graph(histories)) is None
    # Every member agrees on the epoch.
    assert {int(status["epoch"]) for status in statuses.values()} == {3}


def test_stale_epoch_client_adopts_forward(tmp_path):
    """A client whose spec sits at a historical (non-genesis) epoch is
    rejected with an epoch hint and transparently re-fingerprints."""
    spec = _spec(8120)

    async def scenario():
        servers, client = await _boot(spec, str(tmp_path))
        coordinator = ReconfigCoordinator(client, timeout=20.0)
        await coordinator.execute(PlacementChange(
            kind="add-replica", site=4, item=1))
        await coordinator.execute(PlacementChange(
            kind="add-replica", site=5, item=2))
        stale = ClusterClient(dataclasses.replace(spec, epoch=1),
                              timeout=5.0)
        try:
            status = await stale.reconfig_status(0)
            return status, stale.spec.epoch
        finally:
            await stale.close()
            await _shutdown(servers, client)

    status, adopted = asyncio.run(scenario())
    assert status["epoch"] == 2
    assert adopted == 2


def test_crashed_member_recovers_into_the_committed_epoch(tmp_path):
    """Epoch durability: a member killed after a transition restarts
    from its WAL directly into the committed epoch — including the
    copy it *gained* in that epoch (created at prepare, journaled, and
    refilled over catch-up)."""
    spec = _spec(8130)
    victim = 4

    async def scenario():
        servers, client = await _boot(spec, str(tmp_path))
        coordinator = ReconfigCoordinator(client, timeout=20.0)
        await coordinator.execute(PlacementChange(
            kind="add-replica", site=victim, item=1))
        # Write through item 1's primary so the new replica has real
        # traffic to hold, then crash the gaining member.
        from repro.types import (GlobalTransactionId, Operation, OpType,
                                 TransactionSpec)
        outcome = await client.run_transaction(TransactionSpec(
            GlobalTransactionId(1, 9000), 1,
            (Operation(OpType.WRITE, 1),)))
        assert outcome["status"] == "committed"
        await wait_quiescent(client, timeout=20.0, settle_polls=2)
        servers[victim].kill()
        await asyncio.sleep(0.2)
        servers[victim] = SiteServer(
            spec, victim,
            wal_path=os.path.join(str(tmp_path),
                                  "s{}.wal".format(victim)),
            anti_entropy_interval=0.3)
        await servers[victim].start()
        status = await client.reconfig_status(victim)
        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        placement_resp = await client.placement(victim)
        try:
            return status, statuses, placement_resp
        finally:
            await _shutdown(servers, client)

    status, statuses, placement_resp = asyncio.run(scenario())
    assert status["epoch"] == 1
    assert status["pending_epoch"] is None
    recovered = DataPlacement.from_json(placement_resp["placement"])
    assert victim in recovered.sites_of(1)
    state = {site: decode_value(s["items"])
             for site, s in statuses.items()}
    assert divergent_copies(recovered, state) == []


def test_torn_commit_is_healed(tmp_path):
    """A coordinator that dies between per-site commits leaves epochs
    torn; a later coordinator's heal pass re-drives the recorded change
    to the laggard before doing anything else."""
    spec = _spec(8140)
    change = PlacementChange(kind="add-replica", site=3, item=1)

    async def scenario():
        servers, client = await _boot(spec, str(tmp_path))
        target = 1
        for site in range(spec.params.n_sites):
            await client.reconfig_prepare(site, target,
                                          change.to_json())
        # The torn schedule: s5 crashes, then the coordinator commits
        # everyone it can reach and dies before s5 returns.  The
        # commit-time gossip to s5 dies with the sockets when the
        # committed members are bounced, so nothing heals s5 by
        # accident.
        servers[5].kill()
        for site in range(5):
            await client.reconfig_commit(site, target,
                                         change.to_json())
        for site in range(5):
            servers[site].kill()
        await client.close()
        for site in range(spec.params.n_sites):
            servers[site] = SiteServer(
                spec, site,
                wal_path=os.path.join(str(tmp_path),
                                      "s{}.wal".format(site)),
                anti_entropy_interval=0.3)
            await servers[site].start()
        client = ClusterClient(spec, timeout=5.0)
        await client.wait_ready()
        before = {site: (await client.reconfig_status(site))["epoch"]
                  for site in range(spec.params.n_sites)}
        coordinator = ReconfigCoordinator(client, timeout=20.0)
        healed = await coordinator.heal()
        after = {site: (await client.reconfig_status(site))["epoch"]
                 for site in range(spec.params.n_sites)}
        try:
            return before, healed, after
        finally:
            await _shutdown(servers, client)

    before, healed, after = asyncio.run(scenario())
    assert {before[site] for site in range(5)} == {1}
    assert before[5] == 0
    assert healed == [5]
    assert set(after.values()) == {1}


def test_writes_on_fenced_items_are_refused_not_lost(tmp_path):
    """While an item's transition is pending its writes abort cleanly
    (status aborted with a reason) instead of committing into a
    placement about to be swapped; after the commit they flow again."""
    spec = _spec(8160)

    async def scenario():
        servers, client = await _boot(spec, str(tmp_path))
        from repro.types import (GlobalTransactionId, Operation, OpType,
                                 TransactionSpec)

        def write(seq):
            return TransactionSpec(GlobalTransactionId(1, seq), 1,
                                   (Operation(OpType.WRITE, 1),))

        target = 1
        change = PlacementChange(kind="add-replica", site=4, item=1)
        for site in range(spec.params.n_sites):
            await client.reconfig_prepare(site, target,
                                          change.to_json())
        fenced = await client.run_transaction(write(9100))
        for site in range(spec.params.n_sites):
            await client.reconfig_commit(site, target,
                                         change.to_json())
        unfenced = await client.run_transaction(write(9101))
        try:
            return fenced, unfenced
        finally:
            await _shutdown(servers, client)

    fenced, unfenced = asyncio.run(scenario())
    assert fenced["status"] == "aborted"
    assert "fenced" in fenced.get("reason", "")
    assert unfenced["status"] == "committed"
