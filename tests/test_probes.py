"""Tests for the staleness and CPU-utilisation probes."""

import pytest

from repro.harness.probes import CpuUtilizationProbe, StalenessProbe
from repro.testing import ScenarioBuilder


def busy_scenario(protocol="dag_wt"):
    scenario = (ScenarioBuilder(n_sites=3, protocol=protocol)
                .item("a", primary=0, replicas=[1, 2])
                .item("b", primary=1, replicas=[2]))
    for seq in range(1, 9):
        scenario.transaction(0, at=0.01 * seq, ops=[("w", "a")])
    return scenario


def test_staleness_probe_sees_zero_lag_when_quiescent():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0, replicas=[1]))
    env, system, _protocol = scenario.build()
    probe = StalenessProbe(system, period=0.05)
    probe.start()
    env.run(until=0.5)
    assert probe.mean_version_lag() == 0.0
    assert probe.fraction_current() == 1.0
    assert probe.max_version_lag() == 0


def test_staleness_probe_tracks_propagation_lag():
    """With a slowed s0->s1 channel the replica lags, then catches up."""
    scenario = busy_scenario()
    env, system, _protocol = scenario.build()
    system.network._channel(0, 1)._latency = 0.3
    probe = StalenessProbe(system, period=0.02)
    probe.start()
    result = scenario.run(until=2.0, drain=1.0)
    assert result.all_committed
    assert probe.max_version_lag() > 0          # Lag was observed...
    assert probe.snapshot() == [0] * len(probe.snapshot())  # ...and gone.


def test_psl_replicas_stay_stale():
    """PSL never propagates: staleness grows with every commit."""
    scenario = busy_scenario(protocol="psl")
    env, system, _protocol = scenario.build()
    probe = StalenessProbe(system, period=0.05)
    probe.start()
    result = scenario.run(until=2.0)
    assert result.all_committed
    assert probe.max_version_lag() == 8  # All commits, never applied.
    assert probe.fraction_current() < 1.0


def test_cpu_probe_reports_busy_fraction():
    scenario = busy_scenario()
    env, system, _protocol = scenario.build()
    probe = CpuUtilizationProbe(system, period=0.001)
    probe.start()
    result = scenario.run(until=1.0)
    assert result.all_committed
    assert probe.total_samples > 0
    # Site 0 did all the primary work; it must show some utilisation.
    assert probe.utilization(0) > 0.0
    assert 0.0 <= probe.mean_utilization() <= 1.0


def test_cpu_probe_idle_system_is_zero():
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0))
    env, system, _protocol = scenario.build()
    probe = CpuUtilizationProbe(system, period=0.01)
    probe.start()
    env.run(until=0.2)
    assert probe.mean_utilization() == 0.0
