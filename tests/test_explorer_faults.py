"""Fault injection at commit boundaries: channel stalls and
crash/recovery at the storage seam."""

from __future__ import annotations

from repro.explorer import CrashFault, FaultInjector, StallFault
from repro.explorer.decisions import PerturbationPlan
from repro.explorer.generator import build_scenario, generate_scenario
from repro.explorer.runner import run_schedule
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.testing import ScenarioBuilder


def _example_scenario(protocol: str) -> ScenarioBuilder:
    """The paper's Example 1.1 placement with a benign workload."""
    builder = (ScenarioBuilder(n_sites=3, protocol=protocol)
               .item("a", primary=0, replicas=[1, 2])
               .item("b", primary=1, replicas=[2]))
    builder.transaction(0, at=0.00, ops=[("w", "a")])
    builder.transaction(1, at=0.05, ops=[("r", "a"), ("w", "b")])
    builder.transaction(2, at=0.30, ops=[("r", "a"), ("r", "b")])
    return builder


def test_stall_fault_slows_the_channel_but_stays_legal():
    builder = _example_scenario("dag_wt")
    # A second primary write after the first commit guarantees traffic
    # on the stalled channel after the fault fires.
    builder.transaction(0, at=0.10, ops=[("w", "a")])
    _env, system, _protocol = builder.build()
    injector = FaultInjector(
        system, [StallFault(src=0, dst=1, after_commits=1,
                            latency=0.2)])
    system.network.record_deliveries = True
    result = builder.run(until=3.0)
    assert injector.fired and isinstance(injector.fired[0][1],
                                         StallFault)
    # The stalled channel's post-fault deliveries take the new latency.
    stalled = [message for message in system.network.delivery_log
               if (message.src, message.dst) == (0, 1)
               and message.send_time > injector.fired[0][0]]
    assert stalled
    assert all(message.deliver_time - message.send_time >= 0.2 - 1e-9
               for message in stalled)
    # A stall is protocol-legal: everything still converges serializably.
    assert result.all_committed
    check_serializable(site.engine.history for site in system.sites)
    check_convergence(system)


def test_crash_fault_recovers_durable_state_and_catches_up():
    builder = _example_scenario("dag_wt")
    _env, system, _protocol = builder.build()
    injector = FaultInjector(
        system, [CrashFault(site=2, after_commits=1)])
    result = builder.run(until=3.0)
    assert any(isinstance(fault, CrashFault)
               for _time, fault in injector.fired)
    # The replaced engine is the recovered one, holding exactly the
    # WAL-durable state plus post-recovery propagation.
    assert system.site_of(2).engine.wal is injector.wals[2]
    assert result.all_committed
    check_serializable(site.engine.history for site in system.sites)
    check_convergence(system)


def test_fault_injector_orders_faults_by_trigger():
    builder = _example_scenario("dag_wt")
    _env, system, _protocol = builder.build()
    injector = FaultInjector(
        system, [StallFault(src=1, dst=2, after_commits=2,
                            latency=0.1),
                 StallFault(src=0, dst=1, after_commits=1,
                            latency=0.1)])
    builder.run(until=3.0)
    fired = [fault for _time, fault in injector.fired]
    assert fired[0].after_commits <= fired[1].after_commits


def test_run_schedule_accepts_faults():
    spec = generate_scenario(2, "dag_wt")
    outcome = run_schedule(
        spec, PerturbationPlan(seed=0, schedule_noise=False),
        faults=[StallFault(src=0, dst=spec.n_sites - 1,
                           after_commits=1, latency=0.1)])
    assert not outcome.failed


def test_build_scenario_matches_example(tmp_path):
    # Sanity: generator output builds and runs under fault injection.
    spec = generate_scenario(9, "backedge")
    builder = build_scenario(spec)
    _env, system, _protocol = builder.build()
    FaultInjector(system, [CrashFault(site=spec.n_sites - 1,
                                      after_commits=1)])
    builder.run(until=spec.until, drain=spec.drain)
    check_serializable(site.engine.history for site in system.sites)
