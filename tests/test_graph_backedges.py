"""Tests for feedback-arc-set (backedge) computation, incl. property-based
tests on random graphs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    CopyGraph,
    backedges_of_order,
    dfs_backedges,
    greedy_fas_order,
    is_feedback_arc_set,
    make_minimal,
    minimum_backedges,
)


def two_cycle():
    graph = CopyGraph(2)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    return graph


def random_graph(n_sites, n_edges, seed):
    rng = random.Random(seed)
    graph = CopyGraph(n_sites)
    added = 0
    while added < n_edges:
        src = rng.randrange(n_sites)
        dst = rng.randrange(n_sites)
        if src == dst or graph.has_edge(src, dst):
            continue
        graph.add_edge(src, dst)
        added += 1
    return graph


def test_dag_needs_no_backedges():
    graph = CopyGraph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    assert minimum_backedges(graph, "dfs") == set()
    assert minimum_backedges(graph, "greedy") == set()


def test_two_cycle_needs_exactly_one_backedge():
    graph = two_cycle()
    for method in ("dfs", "greedy"):
        backedges = minimum_backedges(graph, method)
        assert len(backedges) == 1
        assert is_feedback_arc_set(graph, backedges)


def test_make_minimal_drops_redundant_edges():
    graph = two_cycle()
    # Both edges form a (non-minimal) feedback arc set.
    minimal = make_minimal(graph, {(0, 1), (1, 0)})
    assert len(minimal) == 1


def test_make_minimal_rejects_non_fas():
    graph = two_cycle()
    with pytest.raises(GraphError):
        make_minimal(graph, set())


def test_backedges_of_order_matches_paper_definition():
    graph = CopyGraph(3)
    graph.add_edge(0, 1)
    graph.add_edge(2, 0)
    graph.add_edge(1, 2)
    backedges = backedges_of_order(graph, [0, 1, 2])
    assert backedges == {(2, 0)}
    assert is_feedback_arc_set(graph, backedges)


def test_greedy_order_covers_all_sites():
    graph = random_graph(8, 20, seed=1)
    order = greedy_fas_order(graph)
    assert sorted(order) == list(range(8))


def test_greedy_respects_weights():
    """With a heavy 0->1 edge, the greedy order should avoid making it a
    backedge if it can sacrifice the light 1->0 edge instead."""
    graph = CopyGraph(2)
    for item in ("a", "b", "c", "d"):
        graph.add_edge(0, 1, item)
    graph.add_edge(1, 0, "z")
    order = greedy_fas_order(graph)
    backedges = backedges_of_order(graph, order)
    assert backedges == {(1, 0)}


def test_unknown_method_rejected():
    with pytest.raises(GraphError):
        minimum_backedges(two_cycle(), method="magic")


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("method", ["dfs", "greedy"])
def test_random_graphs_yield_valid_minimal_fas(seed, method):
    graph = random_graph(7, 15, seed)
    backedges = minimum_backedges(graph, method)
    assert is_feedback_arc_set(graph, backedges)
    # Minimality: returning any single backedge recreates a cycle.
    for edge in backedges:
        assert not is_feedback_arc_set(graph, backedges - {edge})


@settings(max_examples=60, deadline=None)
@given(
    n_sites=st.integers(min_value=2, max_value=8),
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30),
)
def test_property_dfs_backedges_always_break_all_cycles(n_sites, edges):
    graph = CopyGraph(n_sites)
    for src, dst in edges:
        if src != dst and src < n_sites and dst < n_sites \
                and not graph.has_edge(src, dst):
            graph.add_edge(src, dst)
    backedges = dfs_backedges(graph)
    assert is_feedback_arc_set(graph, backedges)
    remaining = graph.without_edges(backedges)
    assert remaining.is_dag()


@settings(max_examples=60, deadline=None)
@given(
    n_sites=st.integers(min_value=2, max_value=8),
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30),
)
def test_property_greedy_order_backedges_break_all_cycles(n_sites, edges):
    graph = CopyGraph(n_sites)
    for src, dst in edges:
        if src != dst and src < n_sites and dst < n_sites \
                and not graph.has_edge(src, dst):
            graph.add_edge(src, dst)
    order = greedy_fas_order(graph)
    backedges = backedges_of_order(graph, order)
    assert is_feedback_arc_set(graph, backedges)
