"""Unit tests for the metrics registry (:mod:`repro.obs.registry`).

The registry underpins the live cluster's ``stats`` plane, so the
tests pin down the three design constraints: exact counts under thread
concurrency, Prometheus-style ``le`` bucket semantics at the edges,
and a disabled registry that keeps literally no state (the guard that
mixed instrumented/plain cluster members can interoperate).
"""

import threading

import pytest

from repro.obs.registry import (
    LAG_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_percentile,
    validate_snapshot,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------

def test_counter_and_gauge_basics():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5

    gauge = Gauge("g")
    gauge.set(3.0)
    gauge.set(7.5)
    gauge.set(2.0)
    assert gauge.value == 2.0
    assert gauge.high_water == 7.5


def test_histogram_bucket_edges_are_le_semantics():
    """A value exactly on an edge counts toward that edge's bucket;
    just above it falls into the next one; above the last edge lands in
    the overflow bucket."""
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    hist.observe(1.0)      # == first edge -> bucket 0
    hist.observe(1.0001)   # just above -> bucket 1
    hist.observe(2.0)      # == second edge -> bucket 1
    hist.observe(4.0)      # == last edge -> bucket 2
    hist.observe(99.0)     # overflow
    assert hist.bucket_counts() == [1, 2, 1, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(1.0 + 1.0001 + 2.0 + 4.0 + 99.0)
    snap = hist.snapshot()
    assert snap["min"] == 1.0 and snap["max"] == 99.0


def test_histogram_percentile_is_bucket_upper_bound():
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 0.5, 1.5, 3.0):
        hist.observe(value)
    assert hist.percentile(50.0) == 1.0   # rank 2 still in bucket <=1
    assert hist.percentile(75.0) == 2.0
    assert hist.percentile(100.0) == 4.0
    hist.observe(50.0)  # overflow: percentile reports the exact max
    assert hist.percentile(100.0) == 50.0
    with pytest.raises(ValueError):
        hist.percentile(101.0)


def test_histogram_empty_and_invalid_buckets():
    assert Histogram("h").percentile(99.0) == 0.0
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))


def test_default_bucket_tables_are_ascending():
    for table in (LATENCY_BUCKETS_S, SIZE_BUCKETS, LAG_BUCKETS):
        assert list(table) == sorted(table)
        assert len(set(table)) == len(table)


def test_snapshot_percentile_matches_live_instrument():
    hist = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
    for value in (0.0005, 0.003, 0.02, 0.02, 0.5, 3.0):
        hist.observe(value)
    snap = hist.snapshot()
    for pct in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
        assert snapshot_percentile(snap, pct) == hist.percentile(pct)
    assert snapshot_percentile(
        {"counts": [0, 0], "buckets": [1.0], "count": 0,
         "sum": 0.0, "min": None, "max": None}, 50.0) == 0.0


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------

def test_instruments_are_exact_under_thread_concurrency():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("hits")
    hist = registry.histogram("lat", buckets=(0.5, 1.5))
    n_threads, per_thread = 8, 5000

    def worker():
        for i in range(per_thread):
            counter.inc()
            hist.observe(1.0)

    threads = [threading.Thread(target=worker)
               for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = n_threads * per_thread
    assert counter.value == total
    assert hist.count == total
    assert hist.bucket_counts() == [0, total, 0]
    assert hist.sum == pytest.approx(float(total))


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry(enabled=True)
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    with pytest.raises(TypeError):
        registry.gauge("a")  # name already registered as a Counter


def test_disabled_registry_keeps_no_state():
    """The interoperability guard: a disabled registry hands out the
    shared falsy null instrument and its snapshot exposes nothing that
    could leak onto the wire or into a fingerprint."""
    registry = MetricsRegistry(enabled=False)
    assert not registry
    counter = registry.counter("hits")
    assert counter is NULL and not counter
    counter.inc(100)
    registry.gauge("depth").set(9.0)
    registry.histogram("lat").observe(1.0)
    snap = registry.snapshot()
    assert snap == {"enabled": False, "counters": {}, "gauges": {},
                    "histograms": {}}
    validate_snapshot(snap)  # still schema-valid
    assert registry._instruments == {}


def test_enabled_registry_snapshot_roundtrip_and_schema():
    registry = MetricsRegistry(enabled=True)
    registry.counter("net.frames_sent").inc(3)
    registry.gauge("server.apply_queue").set(2.0)
    registry.histogram("wal.sync_s").observe(0.004)
    snap = registry.snapshot()
    validate_snapshot(snap)
    assert snap["enabled"] is True
    assert snap["counters"]["net.frames_sent"] == 3
    assert snap["gauges"]["server.apply_queue"]["high_water"] == 2.0
    assert snap["histograms"]["wal.sync_s"]["count"] == 1
    # JSON-safe: survives an encode/decode round trip unchanged.
    import json
    assert json.loads(json.dumps(snap)) == snap


@pytest.mark.parametrize("mutate", [
    lambda snap: snap.pop("enabled"),
    lambda snap: snap.pop("histograms"),
    lambda snap: snap["counters"].__setitem__("bad", -1),
    lambda snap: snap["counters"].__setitem__("bad", True),
    lambda snap: snap["gauges"].__setitem__("bad", {"value": 1.0}),
    lambda snap: snap["histograms"]["wal.sync_s"].__setitem__(
        "count", 99),
    lambda snap: snap["histograms"]["wal.sync_s"]["counts"].pop(),
])
def test_validate_snapshot_rejects_malformed(mutate):
    registry = MetricsRegistry(enabled=True)
    registry.counter("ok").inc()
    registry.gauge("g").set(1.0)
    registry.histogram("wal.sync_s").observe(0.002)
    snap = registry.snapshot()
    mutate(snap)
    with pytest.raises(ValueError):
        validate_snapshot(snap)


def test_null_instrument_is_inert_and_falsy():
    assert not NULL
    NULL.inc()
    NULL.set(5.0)
    NULL.observe(1.0)
    assert NULL.value == 0
    assert NULL.count == 0
    assert NULL.high_water == 0.0


# ----------------------------------------------------------------------
# Pre-derived percentiles
# ----------------------------------------------------------------------

def test_histogram_snapshot_pre_derives_percentiles():
    """Snapshots ship p50/p95/p99 alongside the raw buckets, so wire
    consumers (dashboard, watchdog, CLI) need no re-derivation — and
    the pre-derived cuts must agree with recomputing from the raw
    buckets that are still present."""
    hist = Histogram("lat", buckets=(0.001, 0.004, 0.016, 0.064))
    for value in [0.0005] * 50 + [0.002] * 45 + [0.05] * 4 + [0.25]:
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["p50"] == 0.001   # rank 50 closes the <=1 ms bucket
    assert snap["p95"] == 0.004
    assert snap["p99"] == 0.064
    for pct, key in ((50.0, "p50"), (95.0, "p95"), (99.0, "p99")):
        assert snapshot_percentile(snap, pct) == snap[key]
    # Raw buckets are still the source of truth for windowed deltas.
    assert snap["buckets"] == [0.001, 0.004, 0.016, 0.064]
    assert sum(snap["counts"]) == snap["count"] == 100
    validate_snapshot({"enabled": True, "counters": {}, "gauges": {},
                       "histograms": {"lat": snap}})


def test_empty_histogram_percentiles_are_zero():
    snap = Histogram("lat").snapshot()
    assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0


def test_overflow_bucket_percentile_reports_exact_maximum():
    hist = Histogram("lat", buckets=(1.0,))
    hist.observe(123.5)
    snap = hist.snapshot()
    assert snap["p95"] == 123.5   # overflow: the observed max, not inf
    assert snapshot_percentile(snap, 100.0) == 123.5


def test_bucket_percentile_edge_cases():
    from repro.obs.registry import bucket_percentile

    # Empty histogram and out-of-range pct.
    assert bucket_percentile([1.0], [0, 0], 0, None, 95.0) == 0.0
    with pytest.raises(ValueError):
        bucket_percentile([1.0], [1, 0], 1, None, 101.0)
    # pct=0 still needs rank >= 1 (the smallest observation's bucket).
    assert bucket_percentile([1.0, 2.0], [0, 3, 0], 3, None, 0.0) == 2.0
    # Overflow bucket without a recorded maximum degrades to 0.
    assert bucket_percentile([1.0], [0, 5], 5, None, 99.0) == 0.0
