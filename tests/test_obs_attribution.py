"""Critical-path latency attribution, Chrome trace export, the
sampling profiler, and the observability pieces riding with them
(:mod:`repro.obs.reconstruct` attribution, :mod:`repro.obs.export`,
:mod:`repro.obs.profiler`, the dashboard stage column and the
``stage-regression`` watchdog rule).

All synthetic — no sockets.  The live acceptance criteria (components
summing to end-to-end latency on a real 3-site run, the obs-overhead
budget) ride with ``bench_live_cluster.py``; the ``profile`` wire op
is exercised in ``test_live_cluster.py``/CLI smoke.
"""

import asyncio
import os
import time

import pytest

from repro.obs.dashboard import Dashboard, top_stage
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.monitor import MonitorConfig
from repro.obs.profiler import SamplingProfiler, collapse_frame
from repro.obs.reconstruct import (
    HOP_COMPONENTS,
    attribute_tree,
    attribution_summary,
    format_attributed_path,
    format_attribution,
    hop_attributions,
    reconstruct,
)
from repro.obs.trace import TraceSink, load_trace_file
from tests.test_obs_monitor import (
    StubClient,
    make_spec,
    stats_frame,
    stub_watchdog,
    uniform_versions,
    wal_hist,
)


def attributed_spans():
    """t0.1 propagates s0 -> s1 -> s2 with full span detail: s0
    commits at 1.00 and forwards at 1.04 (0.01 s of that on the WAL
    barrier); s1 receives 1.06, applies 1.09, relays at 1.10; s2
    receives 1.12, applies 1.15."""
    return [
        {"t": 1.00, "site": 0, "event": "committed", "trace": "t0.1",
         "expected": [1, 2]},
        {"t": 1.04, "site": 0, "event": "forwarded", "trace": "t0.1",
         "peer": 1, "wal": 0.01},
        {"t": 1.06, "site": 1, "event": "received", "trace": "t0.1"},
        {"t": 1.09, "site": 1, "event": "applied", "trace": "t0.1"},
        {"t": 1.10, "site": 1, "event": "forwarded", "trace": "t0.1",
         "peer": 2, "wal": 0.0},
        {"t": 1.12, "site": 2, "event": "received", "trace": "t0.1"},
        {"t": 1.15, "site": 2, "event": "applied", "trace": "t0.1"},
    ]


# ----------------------------------------------------------------------
# Hop attribution
# ----------------------------------------------------------------------

def test_hop_components_partition_the_hop_delay():
    tree = reconstruct(attributed_spans())["t0.1"]
    hops = hop_attributions(tree)
    assert sorted(hops) == [1, 2]

    direct = hops[1]
    assert direct["src"] == 0
    assert direct["anchor"] == 1.00
    assert direct["total"] == pytest.approx(0.09)
    assert direct["components"]["wal"] == pytest.approx(0.01)
    assert direct["components"]["queue"] == pytest.approx(0.03)
    assert direct["components"]["wire"] == pytest.approx(0.02)
    assert direct["components"]["apply"] == pytest.approx(0.03)
    assert direct["unattributed"] == pytest.approx(0.0)

    # The relay hop anchors at its forwarder's apply, so the chain
    # telescopes instead of double-counting the upstream delay.
    relay = hops[2]
    assert relay["src"] == 1
    assert relay["anchor"] == pytest.approx(1.09)
    assert relay["total"] == pytest.approx(0.06)
    assert relay["components"]["queue"] == pytest.approx(0.01)
    assert relay["components"]["wire"] == pytest.approx(0.02)
    assert relay["components"]["apply"] == pytest.approx(0.03)

    for hop in hops.values():
        assert sum(hop["components"].values()) + hop["unattributed"] \
            == pytest.approx(hop["total"])


def test_hop_attribution_degrades_without_forward_span():
    """An obs-off sender emits no ``forwarded`` span: the receiver
    side stays measurable, the rest banks in ``unattributed``."""
    spans = [
        {"t": 1.0, "site": 0, "event": "committed", "trace": "t0.2",
         "expected": [1]},
        {"t": 1.4, "site": 1, "event": "received", "trace": "t0.2"},
        {"t": 1.5, "site": 1, "event": "applied", "trace": "t0.2"},
    ]
    hop = hop_attributions(reconstruct(spans)["t0.2"])[1]
    assert hop["src"] is None
    assert hop["components"]["apply"] == pytest.approx(0.1)
    assert hop["components"]["wire"] == 0.0
    assert hop["unattributed"] == pytest.approx(0.4)


def test_hop_attribution_caught_up_only_is_all_unattributed():
    spans = [
        {"t": 1.0, "site": 0, "event": "committed", "trace": "t0.3",
         "expected": [2]},
        {"t": 3.0, "site": 2, "event": "caught-up",
         "traces": ["t0.3"]},
    ]
    hop = hop_attributions(reconstruct(spans)["t0.3"])[2]
    assert all(value == 0.0 for value in hop["components"].values())
    assert hop["unattributed"] == pytest.approx(2.0)


def test_hop_attribution_without_commit_is_empty():
    spans = [{"t": 1.0, "site": 1, "event": "received",
              "trace": "t9.9"}]
    tree = reconstruct(spans)["t9.9"]
    assert hop_attributions(tree) == {}
    assert attribute_tree(tree) is None


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------

def test_critical_path_telescopes_to_end_to_end_delay():
    tree = reconstruct(attributed_spans())["t0.1"]
    attributed = attribute_tree(tree)
    assert attributed is not None
    assert attributed["complete"]
    assert attributed["target"] == 2
    assert attributed["path"] == [0, 1, 2]
    assert attributed["total"] == pytest.approx(0.15)
    # The acceptance criterion, exact by construction: chain
    # components + unattributed reproduce the end-to-end delay.
    assert sum(attributed["components"].values()) + \
        attributed["unattributed"] == pytest.approx(attributed["total"])
    assert attributed["unattributed"] == pytest.approx(0.0)
    assert attributed["components"]["wire"] == pytest.approx(0.04)

    line = format_attributed_path(attributed)
    assert "t0.1" in line and "s0→s1→s2" in line
    assert "wire" in line and "150.00ms" in line


def test_attribution_summary_coverage_and_format():
    spans = attributed_spans() + [
        # A second tree with an obs-off sender: only apply measured.
        {"t": 5.0, "site": 0, "event": "committed", "trace": "t0.4",
         "expected": [1]},
        {"t": 5.8, "site": 1, "event": "received", "trace": "t0.4"},
        {"t": 6.0, "site": 1, "event": "applied", "trace": "t0.4"},
    ]
    summary = attribution_summary(reconstruct(spans), top=2)
    assert summary["hops"] == 3
    assert summary["attributed_hops"] == 2  # t0.4's hop is 80% dark
    assert summary["total_s"] == pytest.approx(0.09 + 0.06 + 1.0)
    assert summary["unattributed_s"] == pytest.approx(0.8)
    assert 0.0 < summary["coverage"] < 1.0
    assert set(summary["components"]) == set(HOP_COMPONENTS)
    shares = sum(component["share"]
                 for component in summary["components"].values())
    assert shares + summary["unattributed_s"] / summary["total_s"] \
        == pytest.approx(1.0)
    assert [entry["trace"] for entry in summary["top"]] == \
        ["t0.4", "t0.1"]

    text = format_attribution(summary)
    assert "latency attribution: 3 hops" in text
    for name in HOP_COMPONENTS:
        assert name in text
    assert "(other)" in text
    assert "t0.1" in text and "t0.4" in text

    empty = attribution_summary({})
    assert empty["hops"] == 0 and empty["coverage"] == 1.0
    assert "0 hops" in format_attribution(empty)


def test_attribution_survives_torn_files_and_mixed_members(tmp_path):
    """Satellite (c): span files from a crashed writer plus obs-off
    members reconstruct into *partial* attribution, never an error."""
    path = str(tmp_path / "site0.trace")
    sink = TraceSink(site_id=0, path=path, flush_every=1)
    for span in attributed_spans():
        if span["site"] == 0:
            sink.emit(span["event"], trace=span["trace"],
                      expected=span.get("expected"),
                      peer=span.get("peer"), wal=span.get("wal"))
    sink.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t": 9.0, "site": 0, "ev')  # torn tail

    spans = load_trace_file(path)
    # Receiver sites ran --no-obs: only a late catch-up is visible.
    spans.append({"t": time.time() + 5.0, "site": 2,
                  "event": "caught-up", "traces": ["t0.1"]})
    summary = attribution_summary(reconstruct(spans))
    assert summary["hops"] == 1
    assert summary["attributed_hops"] == 0
    assert summary["coverage"] == pytest.approx(0.0)
    assert format_attribution(summary)  # renders without detail


# ----------------------------------------------------------------------
# Chrome/Perfetto export
# ----------------------------------------------------------------------

def test_chrome_trace_is_valid_and_complete():
    spans = attributed_spans()
    document = chrome_trace(spans)
    assert validate_chrome_trace(document) == []
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"

    metadata = [event for event in events if event["ph"] == "M"]
    assert {event["name"] for event in metadata} == \
        {"process_name", "thread_name"}
    assert {event["pid"] for event in metadata} == {0, 1, 2}

    instants = [event for event in events if event["ph"] == "i"]
    assert len(instants) == len(spans)
    assert all(event["tid"] == 1 for event in instants)  # one trace

    segments = [event for event in events if event["ph"] == "X"]
    # 4 positive components on the direct hop + 3 on the relay hop.
    assert len(segments) == 7
    assert {event["name"] for event in segments} <= set(HOP_COMPONENTS)
    assert all(event["dur"] >= 1 for event in segments)
    wire = [event for event in segments
            if event["name"] == "wire" and event["pid"] == 1]
    assert wire[0]["ts"] == 40000 and wire[0]["dur"] == 20000


def test_chrome_trace_skips_unusable_spans_and_lanes_untraced():
    spans = [
        {"site": 0, "event": "no-timestamp"},
        {"t": 1.0, "event": "no-site"},
        {"t": 1.0, "site": 0, "event": "committed"},  # untraced
    ]
    document = chrome_trace(spans)
    assert validate_chrome_trace(document) == []
    instants = [event for event in document["traceEvents"]
                if event["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["tid"] == 0  # the untraced lane


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace([]) == ["document is not an object"]
    assert validate_chrome_trace({}) == ["traceEvents is not a list"]
    bad = {"traceEvents": [
        {"ph": "i", "name": "a", "pid": 0, "tid": 0, "ts": 10},
        {"ph": "i", "name": "b", "pid": 0, "tid": 0, "ts": 5},
        {"ph": "X", "name": "c", "pid": 0, "tid": 0, "ts": 6},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 7},
    ]}
    problems = validate_chrome_trace(bad)
    assert any("decreases" in problem for problem in problems)
    assert any("without int dur" in problem for problem in problems)
    assert any("missing 'name'" in problem for problem in problems)


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------

def test_profiler_collects_collapsed_stacks():
    profiler = SamplingProfiler(interval=0.001)
    assert profiler.interval == 0.001
    profiler.start()
    profiler.start()  # idempotent
    assert profiler.running
    deadline = time.monotonic() + 2.0
    while profiler.samples < 3 and time.monotonic() < deadline:
        sum(range(10000))
    profiler.stop()
    profiler.stop()  # idempotent
    assert not profiler.running
    assert profiler.samples >= 3
    assert 0.0 < profiler.duration_s <= 2.5

    stacks = profiler.top_stacks()
    assert stacks and sum(stacks.values()) == profiler.samples
    for stack in stacks:
        # Root-first module:function frames, profiler's own excluded.
        assert "repro.obs.profiler" not in stack
        assert all(":" in label for label in stack.split(";"))

    collapsed = profiler.collapsed()
    lines = collapsed.strip().splitlines()
    assert len(lines) == len(stacks)
    stack, count = lines[0].rsplit(" ", 1)
    assert stack in stacks and int(count) == max(stacks.values())

    snapshot = profiler.snapshot()
    assert snapshot["running"] is False
    assert snapshot["samples"] == profiler.samples


def test_profiler_interval_floor_and_skip_modules():
    assert SamplingProfiler(interval=0.0).interval == 0.0005
    import sys
    frame = sys._getframe()
    stack = collapse_frame(frame)
    assert stack is not None
    assert stack.endswith(
        "test_obs_attribution:"
        "test_profiler_interval_floor_and_skip_modules")


# ----------------------------------------------------------------------
# TraceSink shutdown (satellite a)
# ----------------------------------------------------------------------

def test_sink_close_flushes_pending_below_flush_every(tmp_path):
    """Regression: spans queued below ``flush_every`` must not be lost
    when the server shuts down, and teardown stragglers emitted after
    ``close()`` write straight through."""
    path = str(tmp_path / "late.trace")
    sink = TraceSink(site_id=0, path=path, flush_every=1000)
    sink.emit("committed", trace="t0.1", expected=[1])
    sink.emit("forwarded", trace="t0.1", peer=1)
    # Deferred serialization: nothing on disk before the close.
    assert not os.path.exists(path)
    sink.close()
    assert [span["event"] for span in load_trace_file(path)] == \
        ["committed", "forwarded"]

    # An in-flight apply task emits after close (teardown stops the
    # transport first): the span lands in the file immediately.
    sink.emit("applied", trace="t0.1")
    assert [span["event"] for span in load_trace_file(path)] == \
        ["committed", "forwarded", "applied"]


# ----------------------------------------------------------------------
# Dashboard stage column (satellite b)
# ----------------------------------------------------------------------

def test_top_stage_picks_dominant_p95_share():
    histograms = {
        "server.apply_s": {"count": 10, "p95": 0.06},
        "server.write_s": {"count": 10, "p95": 0.02},
        # Unrecorded instruments never vote.
        "server.read_wait_s": {"count": 0, "p95": 0.5},
        "wal.barrier_wait_s": {"count": 4, "p95": 0.0},
    }
    stage = top_stage(histograms)
    assert stage == ("apply", pytest.approx(0.75))
    assert top_stage({}) is None
    assert top_stage({"server.drive_s": {"count": 0}}) is None


def test_dashboard_render_shows_stage_breakdown():
    dashboard = Dashboard(make_spec(7760), client=StubClient())

    def row(site, stage):
        return {"site": site, "up": True, "commit_rate": 1.0,
                "abort_rate": 0.0, "queue": 0, "queue_hwm": 0,
                "lag": 0, "drive_p95_s": None, "wal_p95_s": None,
                "top_stage": stage, "spark": ""}

    model = {"t": time.time(), "elapsed": 1.0, "down": [],
             "total_commit_rate": 1.0, "spark": "",
             "propagation": None, "alerts": [],
             "rows": [row(0, ("apply", 0.62)), row(1, None)]}
    text = dashboard.render(model)
    header = next(line for line in text.splitlines()
                  if line.startswith("site"))
    assert "stage" in header
    assert "apply 62%" in text
    # A plain (--no-obs) member renders a dash, not a crash.
    assert any("-" in line for line in text.splitlines()
               if line.startswith("s1"))


# ----------------------------------------------------------------------
# stage-regression watchdog rule (satellite f)
# ----------------------------------------------------------------------

def test_stage_regression_fires_on_profile_shift():
    config = MonitorConfig(stage_regression_factor=2.0,
                           stage_floor_s=0.002, trace_limit=0,
                           convergence_every=0)
    spec, client, watchdog = stub_watchdog(config, base_port=7765)
    client.set("versions", uniform_versions(spec, 5))

    def poll_with(apply_counts, write_counts):
        client.set("stats", {0: stats_frame(0, histograms={
            "server.apply_s": wal_hist(apply_counts),
            "server.write_s": wal_hist(write_counts)})})
        return asyncio.run(watchdog.poll_once())

    # First sight: snapshots recorded, no window yet.
    assert poll_with([0, 0, 0, 10], [10, 0, 0, 0]) == []
    # Baseline window: apply dominates (p95 64 ms), write is ~1.5 %.
    assert poll_with([0, 0, 0, 20], [20, 0, 0, 0]) == []
    # Steady profile: no alert.
    assert poll_with([0, 0, 0, 30], [30, 0, 0, 0]) == []
    # The write stage jumps to half the windowed stage p95 — far past
    # 2x its baseline share — while apply (still dominant in absolute
    # terms, but *shrinking* in share) stays quiet.
    fired = poll_with([0, 0, 0, 40], [30, 0, 0, 10])
    assert [(alert.rule, alert.site, alert.severity)
            for alert in fired] == \
        [("stage-regression:write", 0, "warning")]
    assert fired[0].evidence["stage"] == "write"
    assert fired[0].evidence["share"] == pytest.approx(0.5)
    assert fired[0].evidence["window_p95_s"] == pytest.approx(0.064)
    assert "write" in fired[0].message

    # Persisting condition deduplicates into the same alert.
    assert poll_with([0, 0, 0, 50], [30, 0, 0, 20]) == []
    assert watchdog.alerts[("stage-regression:write", 0)].count == 2


def test_stage_regression_respects_floor():
    """Sub-floor p95s never alert, whatever their share does."""
    config = MonitorConfig(stage_regression_factor=2.0,
                           stage_floor_s=0.1, trace_limit=0,
                           convergence_every=0)
    spec, client, watchdog = stub_watchdog(config, base_port=7770)
    client.set("versions", uniform_versions(spec, 5))

    def poll_with(apply_counts, write_counts):
        client.set("stats", {0: stats_frame(0, histograms={
            "server.apply_s": wal_hist(apply_counts),
            "server.write_s": wal_hist(write_counts)})})
        return asyncio.run(watchdog.poll_once())

    poll_with([0, 0, 0, 10], [10, 0, 0, 0])
    poll_with([0, 0, 0, 20], [20, 0, 0, 0])
    assert poll_with([0, 0, 0, 30], [20, 0, 0, 10]) == []
    assert not watchdog.alerts
