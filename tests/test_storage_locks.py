"""Tests for the strict 2PL lock manager."""

import pytest

from repro.errors import LockTimeout
from repro.sim import Environment
from repro.storage import LockManager, LockMode, StorageEngine
from repro.storage.locks import ABORT_WAITER, KEEP_WAITING
from repro.storage.transaction import Transaction
from repro.types import GlobalTransactionId, SubtransactionKind


def make_txn(site=0, seq=0):
    return Transaction(GlobalTransactionId(site, seq), site,
                       SubtransactionKind.PRIMARY, 0.0)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def manager(env):
    return LockManager(env, timeout=None)


def test_shared_locks_are_compatible(manager):
    t1, t2 = make_txn(0, 1), make_txn(0, 2)
    assert manager.acquire(t1, "a", LockMode.SHARED).triggered
    assert manager.acquire(t2, "a", LockMode.SHARED).triggered
    assert manager.mode_held(t1, "a") is LockMode.SHARED
    assert manager.mode_held(t2, "a") is LockMode.SHARED


def test_exclusive_blocks_shared(manager):
    writer, reader = make_txn(0, 1), make_txn(0, 2)
    assert manager.acquire(writer, "a", LockMode.EXCLUSIVE).triggered
    grant = manager.acquire(reader, "a", LockMode.SHARED)
    assert not grant.triggered
    manager.release_all(writer)
    assert grant.triggered


def test_shared_blocks_exclusive(manager):
    reader, writer = make_txn(0, 1), make_txn(0, 2)
    assert manager.acquire(reader, "a", LockMode.SHARED).triggered
    grant = manager.acquire(writer, "a", LockMode.EXCLUSIVE)
    assert not grant.triggered
    manager.release_all(reader)
    assert grant.triggered
    assert manager.mode_held(writer, "a") is LockMode.EXCLUSIVE


def test_reentrant_acquisition_never_blocks(manager):
    txn = make_txn()
    assert manager.acquire(txn, "a", LockMode.SHARED).triggered
    assert manager.acquire(txn, "a", LockMode.SHARED).triggered
    assert manager.acquire(txn, "a", LockMode.EXCLUSIVE).triggered
    # Downgrade request while holding X is a no-op grant.
    assert manager.acquire(txn, "a", LockMode.SHARED).triggered
    assert manager.mode_held(txn, "a") is LockMode.EXCLUSIVE


def test_upgrade_immediate_when_sole_holder(manager):
    txn = make_txn()
    manager.acquire(txn, "a", LockMode.SHARED)
    grant = manager.acquire(txn, "a", LockMode.EXCLUSIVE)
    assert grant.triggered
    assert manager.mode_held(txn, "a") is LockMode.EXCLUSIVE


def test_upgrade_waits_for_other_readers(manager):
    t1, t2 = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(t1, "a", LockMode.SHARED)
    manager.acquire(t2, "a", LockMode.SHARED)
    upgrade = manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    assert not upgrade.triggered
    manager.release_all(t2)
    assert upgrade.triggered
    assert manager.mode_held(t1, "a") is LockMode.EXCLUSIVE


def test_upgrade_jumps_ahead_of_plain_waiters(manager):
    t1, t2, t3 = make_txn(0, 1), make_txn(0, 2), make_txn(0, 3)
    manager.acquire(t1, "a", LockMode.SHARED)
    manager.acquire(t2, "a", LockMode.SHARED)
    plain_wait = manager.acquire(t3, "a", LockMode.EXCLUSIVE)
    upgrade = manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.release_all(t2)
    assert upgrade.triggered
    assert not plain_wait.triggered
    manager.release_all(t1)
    assert plain_wait.triggered


def test_fifo_no_overtaking_of_queued_exclusive(manager):
    """A late shared request must not starve a queued exclusive one."""
    t1, t2, t3 = make_txn(0, 1), make_txn(0, 2), make_txn(0, 3)
    manager.acquire(t1, "a", LockMode.SHARED)
    x_wait = manager.acquire(t2, "a", LockMode.EXCLUSIVE)
    s_wait = manager.acquire(t3, "a", LockMode.SHARED)
    assert not x_wait.triggered and not s_wait.triggered
    manager.release_all(t1)
    assert x_wait.triggered
    assert not s_wait.triggered
    manager.release_all(t2)
    assert s_wait.triggered


def test_release_all_clears_held_items(manager):
    txn = make_txn()
    manager.acquire(txn, "a", LockMode.SHARED)
    manager.acquire(txn, "b", LockMode.EXCLUSIVE)
    assert manager.items_held(txn) == {"a", "b"}
    manager.release_all(txn)
    assert manager.items_held(txn) == set()
    assert manager.holders("a") == {}


def test_cancel_waits_unblocks_queue(manager):
    t1, t2, t3 = make_txn(0, 1), make_txn(0, 2), make_txn(0, 3)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    w2 = manager.acquire(t2, "a", LockMode.EXCLUSIVE)
    w3 = manager.acquire(t3, "a", LockMode.SHARED)
    manager.cancel_waits(t2)
    manager.release_all(t1)
    assert not w2.triggered
    assert w3.triggered


def test_timeout_fails_request_with_lock_timeout(env):
    manager = LockManager(env, timeout=0.05)
    holder, waiter = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(holder, "a", LockMode.EXCLUSIVE)
    grant = manager.acquire(waiter, "a", LockMode.SHARED)

    failures = []

    def proc(env, grant):
        try:
            yield grant
        except LockTimeout as exc:
            failures.append((env.now, exc.item_id))

    env.process(proc(env, grant))
    env.run(until=1.0)
    assert failures == [(0.05, "a")]
    # The failed request must be gone from the queue.
    assert manager.waiting_requests() == []


def test_timeout_policy_keep_waiting_rearms(env):
    manager = LockManager(env, timeout=0.05)
    verdicts = []

    def policy(mgr, request):
        verdicts.append(env.now)
        return KEEP_WAITING if len(verdicts) < 3 else ABORT_WAITER

    manager.timeout_policy = policy
    holder, waiter = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(holder, "a", LockMode.EXCLUSIVE)
    grant = manager.acquire(waiter, "a", LockMode.SHARED)
    grant.defuse()
    env.run(until=1.0)
    assert verdicts == [pytest.approx(0.05), pytest.approx(0.10),
                        pytest.approx(0.15)]
    assert not grant.ok


def test_timeout_does_not_fire_after_grant(env):
    manager = LockManager(env, timeout=0.05)
    holder, waiter = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(holder, "a", LockMode.EXCLUSIVE)
    grant = manager.acquire(waiter, "a", LockMode.SHARED)
    manager.release_all(holder)
    assert grant.triggered and grant.ok
    env.run(until=1.0)  # Timer fires harmlessly.
    assert manager.stats["timeout_aborts"] == 0


def test_per_request_timeout_override(env):
    manager = LockManager(env, timeout=10.0)
    holder, waiter = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(holder, "a", LockMode.EXCLUSIVE)
    grant = manager.acquire(waiter, "a", LockMode.SHARED, timeout=0.01)
    grant.defuse()
    env.run(until=1.0)
    assert grant.triggered and not grant.ok


def test_waiting_requests_listing(manager):
    t1, t2 = make_txn(0, 1), make_txn(0, 2)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.acquire(t2, "a", LockMode.SHARED)
    requests = manager.waiting_requests()
    assert len(requests) == 1
    assert requests[0].txn is t2
    assert requests[0].mode is LockMode.SHARED
