"""Edge-case tests for the reporting helpers."""

import dataclasses

from repro.harness.reporting import _fmt, format_comparison, format_sweep_table
from repro.harness.runner import ExperimentConfig, ExperimentResult
from repro.harness.sweep import SweepPoint


def make_result(protocol, throughput, abort_rate=0.0):
    return ExperimentResult(
        config=ExperimentConfig(protocol=protocol),
        average_throughput=throughput,
        abort_rate=abort_rate,
        mean_response_time=0.1,
        mean_propagation_delay=0.0,
        committed=10,
        aborted=0,
        duration=1.0,
        messages_by_type={},
        total_messages=0,
        serializable=True,
        committed_per_site={},
    )


def make_points():
    return [
        SweepPoint("b", 0.0, "backedge", make_result("backedge", 20.0)),
        SweepPoint("b", 0.0, "psl", make_result("psl", 10.0)),
        SweepPoint("b", 1.0, "backedge", make_result("backedge", 15.0)),
        SweepPoint("b", 1.0, "psl", make_result("psl", 8.0)),
    ]


def test_sweep_table_layout():
    table = format_sweep_table(make_points())
    lines = table.splitlines()
    assert lines[0] == "Throughput (txn/s/site)"
    assert "backedge" in lines[1] and "psl" in lines[1]
    assert "20.00" in table and "8.00" in table


def test_sweep_table_missing_cell_rendered_as_dash():
    points = make_points()[:3]  # psl missing at b=1
    table = format_sweep_table(points)
    last_row = table.splitlines()[-1]
    assert "-" in last_row.split()[-1]


def test_sweep_table_scale_and_label():
    table = format_sweep_table(make_points(),
                               metric="mean_response_time",
                               metric_label="Response (ms)",
                               scale=1000.0)
    assert "Response (ms)" in table
    assert "100.00" in table


def test_comparison_speedups():
    comparison = format_comparison(make_points(), "psl", "backedge")
    assert "2.00x" in comparison
    assert "1.88x" in comparison  # 15 / 8


def test_comparison_skips_zero_baseline():
    points = [
        SweepPoint("b", 0.0, "backedge", make_result("backedge", 20.0)),
        SweepPoint("b", 0.0, "psl", make_result("psl", 0.0)),
    ]
    comparison = format_comparison(points, "psl", "backedge")
    assert "x" not in comparison.splitlines()[-1] or \
        len(comparison.splitlines()) == 1


def test_fmt_renders_floats_compactly():
    assert _fmt(0.5) == "0.5"
    assert _fmt(1.0) == "1"
    assert _fmt("name") == "name"
    assert _fmt(3) == "3"
