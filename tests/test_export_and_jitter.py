"""Tests for result export (CSV/JSON) and the network-jitter parameter."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.export import (
    result_row,
    sweep_rows,
    to_csv,
    to_json,
    write_rows,
)
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.sweep import sweep
from repro.workload.params import WorkloadParams

TINY = WorkloadParams(n_sites=3, n_items=30, transactions_per_thread=6,
                      threads_per_site=2)


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(protocol="backedge", params=TINY, seed=1))


def test_result_row_contains_all_fields(result):
    row = result_row(result)
    assert row["protocol"] == "backedge"
    assert row["seed"] == 1
    assert row["committed"] + row["aborted"] == \
        TINY.n_sites * TINY.threads_per_site \
        * TINY.transactions_per_thread
    assert row["serializable"] is True


def test_sweep_rows_and_csv_round_trip():
    points = sweep("backedge_probability", [0.0, 1.0], ["backedge"],
                   base_params=TINY, seed=1)
    rows = sweep_rows(points)
    assert len(rows) == 2
    assert rows[0]["parameter"] == "backedge_probability"
    text = to_csv(rows)
    lines = text.strip().splitlines()
    assert lines[0].startswith("parameter,value,protocol")
    assert len(lines) == 3


def test_to_json_parses_back(result):
    payload = to_json([result_row(result)])
    decoded = json.loads(payload)
    assert decoded[0]["protocol"] == "backedge"


def test_to_csv_empty():
    assert to_csv([]) == ""


def test_write_rows_dispatches_on_extension(tmp_path, result):
    rows = [result_row(result)]
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    write_rows(rows, str(csv_path))
    write_rows(rows, str(json_path))
    assert csv_path.read_text().startswith("protocol,")
    assert json.loads(json_path.read_text())[0]["seed"] == 1
    with pytest.raises(ValueError):
        write_rows(rows, str(tmp_path / "out.xml"))


# ----------------------------------------------------------------------
# Network jitter
# ----------------------------------------------------------------------


def test_jitter_validation():
    with pytest.raises(ConfigurationError):
        WorkloadParams(network_jitter=1.5).validate()
    WorkloadParams(network_jitter=0.5).validate()


def test_jitter_runs_remain_serializable_and_deterministic():
    params = TINY.replaced(network_jitter=0.9,
                           replication_probability=0.5)
    first = run_experiment(
        ExperimentConfig(protocol="backedge", params=params, seed=2))
    second = run_experiment(
        ExperimentConfig(protocol="backedge", params=params, seed=2))
    assert first.serializable is True
    assert first.duration == second.duration  # Seeded jitter.
    assert first.total_messages == second.total_messages


def test_jitter_changes_timing_vs_constant_latency():
    # PSL's remote reads sit on the critical path, so jittered latency
    # must shift the run's timing.
    base = TINY.replaced(replication_probability=0.5,
                         network_latency=0.005)
    constant = run_experiment(
        ExperimentConfig(protocol="psl", params=base, seed=2))
    jittered = run_experiment(
        ExperimentConfig(protocol="psl",
                         params=base.replaced(network_jitter=0.9),
                         seed=2))
    assert constant.duration != jittered.duration
