"""Durable WAL and inbound-message journal: files survive a "crash"
(dropping every in-memory object) and rebuild identical state."""

from repro.cluster.codec import encode_message
from repro.cluster.wal import FileWal, MessageJournal
from repro.network.message import Message, MessageType
from repro.sim import Environment
from repro.storage import StorageEngine
from repro.storage.log import LogRecordKind, recover
from repro.types import GlobalTransactionId, SubtransactionKind


def gid(seq):
    return GlobalTransactionId(0, seq)


def build_engine(wal):
    env = Environment()
    engine = StorageEngine(env, site_id=0, lock_timeout=None, wal=wal)
    engine.create_item(1, value=10)
    engine.create_item(2, value=20)
    return env, engine


def run_workload(env, engine):
    def workload():
        txn1 = engine.begin(gid(1))
        yield from engine.write(txn1, 1, 111)
        engine.commit(txn1)
        txn2 = engine.begin(gid(2), SubtransactionKind.SECONDARY)
        yield from engine.write(txn2, 2, 222)
        engine.commit(txn2)
        txn3 = engine.begin(gid(3))
        yield from engine.write(txn3, 1, 333)
        engine.abort(txn3)

    env.process(workload())
    env.run()


def test_file_wal_round_trips_records(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path)
    env, engine = build_engine(wal)
    run_workload(env, engine)
    wal.close()

    reloaded = FileWal(path)
    assert reloaded.recovered_records == len(wal)
    for original, loaded in zip(wal, reloaded):
        assert loaded.kind is original.kind
        assert loaded.gid == original.gid
        assert loaded.txn_kind is original.txn_kind
        assert loaded.item == original.item
        assert loaded.value == original.value


def test_recover_from_file_wal_restores_committed_state(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path)
    env, engine = build_engine(wal)
    run_workload(env, engine)
    wal.close()
    del env, engine  # the crash: all volatile state gone

    env2 = Environment()
    recovered = recover(env2, 0, FileWal(path), lock_timeout=None)
    assert recovered.item(1).value == 111   # committed
    assert recovered.item(2).value == 222   # committed secondary
    assert recovered.item(1).committed_version == 1  # abort undone
    assert recovered.item(1).writers == [gid(1)]
    assert recovered.item(2).writers == [gid(2)]
    # Recovery is idempotent across restarts: the recovered engine can
    # keep appending to the same file.
    assert FileWal(path).recovered_records == len(wal)


def test_file_wal_append_after_reload(tmp_path):
    path = tmp_path / "site0.wal"
    wal = FileWal(path)
    wal.append(LogRecordKind.CREATE, item=7, value=0, time=0.0)
    wal.close()

    wal2 = FileWal(path)
    wal2.append(LogRecordKind.BEGIN, gid=gid(9),
                txn_kind=SubtransactionKind.PRIMARY, time=1.0)
    wal2.close()
    reloaded = FileWal(path)
    assert [record.kind for record in reloaded] == \
        [LogRecordKind.CREATE, LogRecordKind.BEGIN]
    assert list(reloaded)[1].gid == gid(9)


def _secondary(seq):
    return Message(MessageType.SECONDARY, src=1, dst=0,
                   payload={"gid": GlobalTransactionId(1, seq),
                            "writes": {3: seq}})


def test_message_journal_survives_reload(tmp_path):
    path = tmp_path / "site0.wal.inbox"
    journal = MessageJournal(path)
    for seq in range(1, 4):
        journal.append(1, "inc-a", seq,
                       encode_message(_secondary(seq)))
    journal.close()

    reloaded = MessageJournal(path)
    assert len(reloaded) == 3
    assert [entry["seq"] for entry in reloaded.entries] == [1, 2, 3]
    assert all(entry["src"] == 1 and entry["inc"] == "inc-a"
               for entry in reloaded.entries)
    # Appending after reload extends, not truncates.
    reloaded.append(1, "inc-a", 4, encode_message(_secondary(4)))
    reloaded.close()
    assert len(MessageJournal(path)) == 4
