"""Tests for DSG edge explanations and WAL internals."""

from repro.harness.serializability import (
    build_serialization_graph,
    explain_cycle,
    explain_edges,
    find_dsg_cycle,
)
from repro.sim import Environment
from repro.storage.history import SiteHistory
from repro.storage.log import LogRecordKind, WriteAheadLog
from repro.types import GlobalTransactionId, SubtransactionKind


def gid(site, seq):
    return GlobalTransactionId(site, seq)


def example_41_histories():
    t1, t2 = gid(0, 1), gid(1, 1)
    s0 = SiteHistory(0)
    s0.record(t1, SubtransactionKind.PRIMARY, 1.0, {"b": 0}, {"a": 1})
    s0.record(t2, SubtransactionKind.SECONDARY, 2.0, {}, {"b": 1})
    s1 = SiteHistory(1)
    s1.record(t2, SubtransactionKind.PRIMARY, 1.0, {"a": 0}, {"b": 1})
    s1.record(t1, SubtransactionKind.SECONDARY, 2.0, {}, {"a": 1})
    return [s0, s1], t1, t2


def test_explain_edges_names_each_conflict():
    histories, t1, t2 = example_41_histories()
    forward = explain_edges(histories, t1, t2)
    backward = explain_edges(histories, t2, t1)
    assert any("rw at s0" in reason for reason in forward)
    assert any("rw at s1" in reason for reason in backward)


def test_explain_edges_empty_when_no_conflict():
    histories, t1, _t2 = example_41_histories()
    assert explain_edges(histories, t1, gid(5, 5)) == []


def test_explain_cycle_renders_full_story():
    histories, t1, t2 = example_41_histories()
    graph = build_serialization_graph(histories)
    cycle = find_dsg_cycle(graph)
    assert cycle is not None
    text = explain_cycle(histories, cycle)
    assert "non-serializable cycle" in text
    assert "rw at s0" in text and "rw at s1" in text
    assert str(t1) in text and str(t2) in text


def test_wr_and_ww_explanations():
    t1, t2 = gid(0, 1), gid(0, 2)
    history = SiteHistory(0)
    history.record(t1, SubtransactionKind.PRIMARY, 1.0, {}, {"x": 1})
    history.record(t2, SubtransactionKind.PRIMARY, 2.0, {"x": 1},
                   {"x": 2})
    reasons = explain_edges([history], t1, t2)
    kinds = {reason.split(" ")[0] for reason in reasons}
    assert kinds == {"ww", "wr"}


# ----------------------------------------------------------------------
# WAL internals
# ----------------------------------------------------------------------


def test_wal_lsns_are_dense_and_ordered():
    wal = WriteAheadLog()
    for index in range(5):
        record = wal.append(LogRecordKind.BEGIN, gid=gid(0, index),
                            time=float(index))
        assert record.lsn == index
    assert wal.last_lsn == 4
    assert len(wal) == 5
    assert [record.lsn for record in wal] == list(range(5))


def test_wal_records_of_filters_by_gid():
    wal = WriteAheadLog()
    wal.append(LogRecordKind.BEGIN, gid=gid(0, 1))
    wal.append(LogRecordKind.WRITE, gid=gid(0, 1), item="x", value=1)
    wal.append(LogRecordKind.BEGIN, gid=gid(0, 2))
    assert len(wal.records_of(gid(0, 1))) == 2
    assert len(wal.records_of(gid(0, 2))) == 1
    assert wal.records_of(gid(9, 9)) == []


def test_empty_wal():
    wal = WriteAheadLog()
    assert len(wal) == 0
    assert wal.last_lsn == -1
    from repro.storage.log import recover
    engine = recover(Environment(), 0, wal)
    assert engine.item_ids() == set()


def test_runner_attaches_violation_explanation():
    from repro.harness.runner import ExperimentConfig, run_experiment
    from repro.workload.params import WorkloadParams

    params = WorkloadParams(
        n_sites=5, n_items=30, threads_per_site=3,
        transactions_per_thread=25, replication_probability=0.6,
        site_probability=0.8, backedge_probability=0.4,
        read_op_probability=0.5, read_txn_probability=0.2,
        deadlock_timeout=0.02)
    for seed in range(6):
        result = run_experiment(ExperimentConfig(
            protocol="indiscriminate", params=params, seed=seed,
            strict_serializability=False, drain_time=2.0))
        if not result.serializable:
            assert result.violation_explanation is not None
            assert "non-serializable cycle" in \
                result.violation_explanation
            assert str(result.violation_cycle[0]) in \
                result.violation_explanation
            return
    raise AssertionError("no violation observed across seeds")
