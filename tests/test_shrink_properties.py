"""Property tests for the ddmin shrinker.

``ddmin`` is the engine behind both the explorer's schedule shrinking
and the chaos harness's fault-script shrinking, so its contract gets
checked directly: the result is 1-minimal, the search is deterministic
for a fixed failing predicate, and the empty candidate — the cheapest
probe and the easiest to accidentally re-test on every granularity
round — is tried at most once.
"""

from __future__ import annotations

import hypothesis
import hypothesis.strategies as st

from repro.explorer.shrink import ddmin


class CountingTest:
    """Wrap a predicate, recording every candidate it is asked about."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.calls = []

    def __call__(self, candidate):
        self.calls.append(tuple(candidate))
        return self.predicate(candidate)


def required_subset_test(required):
    """The canonical shrink target: fails iff all of ``required``
    survive in the candidate."""
    required = set(required)
    return lambda candidate: required.issubset(set(candidate))


@hypothesis.given(
    n=st.integers(min_value=1, max_value=24),
    data=st.data(),
)
@hypothesis.settings(deadline=None, max_examples=80)
def test_ddmin_finds_exactly_the_required_subset(n, data):
    items = list(range(n))
    required = data.draw(st.sets(st.sampled_from(items), min_size=1))
    result = ddmin(items, required_subset_test(required))
    assert set(result) == required
    # ddmin preserves the original relative order of survivors.
    assert result == [item for item in items if item in required]


@hypothesis.given(
    n=st.integers(min_value=1, max_value=24),
    data=st.data(),
)
@hypothesis.settings(deadline=None, max_examples=80)
def test_ddmin_result_is_1_minimal(n, data):
    items = list(range(n))
    required = data.draw(st.sets(st.sampled_from(items), min_size=1))
    test = required_subset_test(required)
    result = ddmin(items, test)
    assert test(result)
    for index in range(len(result)):
        smaller = result[:index] + result[index + 1:]
        assert not test(smaller), \
            "dropping {} still fails: not 1-minimal".format(
                result[index])


@hypothesis.given(
    n=st.integers(min_value=0, max_value=30),
    data=st.data(),
)
@hypothesis.settings(deadline=None, max_examples=80)
def test_ddmin_is_deterministic(n, data):
    items = list(range(n))
    required = data.draw(st.sets(st.sampled_from(items))
                         if items else st.just(set()))
    first = ddmin(items, required_subset_test(required))
    second = ddmin(items, required_subset_test(required))
    assert first == second


@hypothesis.given(
    n=st.integers(min_value=0, max_value=30),
    data=st.data(),
)
@hypothesis.settings(deadline=None, max_examples=80)
def test_ddmin_probes_the_empty_candidate_at_most_once(n, data):
    items = list(range(n))
    required = data.draw(st.sets(st.sampled_from(items))
                         if items else st.just(set()))
    counting = CountingTest(required_subset_test(required))
    ddmin(items, counting)
    assert counting.calls.count(()) <= 1


def test_ddmin_probe_count_stays_reasonable():
    # Worst case of complement ddmin is O(n^2) probes; a required
    # singleton in 64 items must stay well below that bound and, more
    # importantly, must never loop forever.
    counting = CountingTest(required_subset_test({17}))
    result = ddmin(list(range(64)), counting)
    assert result == [17]
    assert len(counting.calls) < 64 * 64
