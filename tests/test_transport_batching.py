"""Frame batching on the live channel: the invariants that make it
invisible above the wire.

Batching is a syscall amortization, never a protocol change.  Whatever
``max_batch`` is, the receiver must observe:

- the same gap-free per-channel sequence ``1..n`` it would see from
  individual ``msg`` frames, in the same order, entries carrying their
  original sequence numbers;
- one cumulative ack retiring a whole batch, with resend of the unacked
  tail (same seqs, still gap-free) after a connection loss;
- the sender's ``sync_hook`` fired before each frame's bytes leave the
  process — the durability barrier that orders "commit record on
  stable storage" before "update visible to a peer".

The fake receiver below records raw frames exactly as
``tests/test_transport_seam.py`` does, so these tests see the wire
itself, not a convenient abstraction of it.
"""

import asyncio

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster.codec import (
    decode_batch_frame,
    decode_message,
    read_frame,
    write_frame,
)
from repro.cluster.transport import LiveTransport
from repro.network.message import MessageType
from repro.types import GlobalTransactionId


class FakeReceiver:
    """Accepts peer connections, records every frame, acks on demand."""

    def __init__(self):
        self.connections = []
        self.server = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._on_connect, "127.0.0.1", 0)
        return self.server.sockets[0].getsockname()[1]

    async def _on_connect(self, reader, writer):
        record = {"frames": [], "writer": writer}
        self.connections.append(record)
        hello = await read_frame(reader)
        assert hello["kind"] == "hello" and hello["role"] == "peer"
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            record["frames"].append(frame)

    async def close(self):
        self.server.close()
        await self.server.wait_closed()


def flatten(frames):
    """Every (seq, message) a frame stream carries, in wire order."""
    entries = []
    for frame in frames:
        if frame["kind"] == "msg":
            entries.append((frame["seq"],
                            decode_message(frame["msg"])))
        elif frame["kind"] == "batch":
            entries.extend(decode_batch_frame(frame)[1])
    return entries


async def wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        assert asyncio.get_event_loop().time() < deadline, \
            "condition not reached within {}s".format(timeout)
        await asyncio.sleep(0.01)


def send_n(transport, dst, count, start=1):
    for seq in range(start, start + count):
        transport.send(MessageType.SECONDARY, transport.site_id, dst,
                       gid=GlobalTransactionId(transport.site_id, seq),
                       writes={0: seq})


def test_backlog_travels_in_capped_batches_with_gap_free_seqs():
    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=8)
        send_n(transport, 1, 30)

        await wait_until(lambda: receiver.connections and len(flatten(
            receiver.connections[0]["frames"])) == 30)
        frames = receiver.connections[0]["frames"]
        entries = flatten(frames)
        # The exact sequence individual msg frames would have carried.
        assert [seq for seq, _ in entries] == list(range(1, 31))
        assert [message.payload["writes"][0]
                for _, message in entries] == list(range(1, 31))
        # Never more than max_batch per frame; fewer frames than
        # messages (the amortization is real).
        for frame in frames:
            if frame["kind"] == "batch":
                assert 2 <= len(frame["msgs"]) <= 8
                assert frame["inc"] == transport.incarnation
        assert len(frames) < 30
        assert transport.frames_sent == len(frames)
        assert transport.batched_messages == 30

        # One cumulative ack retires everything written so far.
        assert transport.pending_out == 30
        await write_frame(receiver.connections[0]["writer"],
                          {"kind": "ack", "seq": 30})
        await wait_until(lambda: transport.pending_out == 0)

        await transport.close()
        await receiver.close()

    asyncio.run(scenario())


def test_single_message_uses_plain_msg_frame():
    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=64)
        send_n(transport, 1, 1)
        await wait_until(lambda: receiver.connections and
                         receiver.connections[0]["frames"])
        frame = receiver.connections[0]["frames"][0]
        # A singleton is the unbatched wire format: batched senders
        # interoperate with pre-batching receivers out of the box.
        assert frame["kind"] == "msg"
        assert frame["seq"] == 1
        await transport.close()
        await receiver.close()

    asyncio.run(scenario())


def test_max_batch_one_never_emits_batch_frames():
    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=1)
        send_n(transport, 1, 12)
        await wait_until(lambda: receiver.connections and len(
            receiver.connections[0]["frames"]) == 12)
        frames = receiver.connections[0]["frames"]
        assert all(frame["kind"] == "msg" for frame in frames)
        assert [frame["seq"] for frame in frames] == \
            list(range(1, 13))
        await transport.close()
        await receiver.close()

    asyncio.run(scenario())


def test_batched_unacked_tail_resends_with_same_seqs():
    """Cut the connection after a partial cumulative ack: the resent
    tail must start exactly after the ack, in order, original seqs —
    whether it travels batched or not is the receiver's dedup problem,
    the sequence contract is identical."""

    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=5)
        send_n(transport, 1, 17)
        await wait_until(lambda: receiver.connections and len(flatten(
            receiver.connections[0]["frames"])) == 17)

        # Ack through seq 6 (mid-batch is legal: acks are cumulative
        # per entry, not per frame), then break the connection.
        await write_frame(receiver.connections[0]["writer"],
                          {"kind": "ack", "seq": 6})
        await wait_until(lambda: transport.pending_out == 11)
        receiver.connections[0]["writer"].transport.abort()

        await wait_until(lambda: len(receiver.connections) == 2 and
                         len(flatten(
                             receiver.connections[1]["frames"])) >= 11)
        resent = flatten(receiver.connections[1]["frames"])
        assert [seq for seq, _ in resent[:11]] == list(range(7, 18))

        # New traffic continues the same gap-free numbering.
        send_n(transport, 1, 3, start=18)
        await write_frame(receiver.connections[1]["writer"],
                          {"kind": "ack", "seq": 17})
        await wait_until(lambda: len(flatten(
            receiver.connections[1]["frames"])) == 14)
        assert [seq for seq, _ in flatten(
            receiver.connections[1]["frames"])] == \
            list(range(7, 21))

        await transport.close()
        await receiver.close()

    asyncio.run(scenario())


def test_sync_hook_fires_before_every_frame():
    """The durability barrier: no frame's bytes may leave before the
    hook (the server's WAL group-commit sync) has run for it."""

    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        events = []
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=4,
                                  sync_hook=lambda:
                                  events.append("sync"))
        send_n(transport, 1, 10)
        await wait_until(lambda: receiver.connections and len(flatten(
            receiver.connections[0]["frames"])) == 10)
        frames = len(receiver.connections[0]["frames"])
        # Exactly one barrier per frame, armed before the write: the
        # hook ran `frames` times and every frame was preceded by one.
        assert events == ["sync"] * frames
        assert frames == transport.frames_sent
        await transport.close()
        await receiver.close()

    asyncio.run(scenario())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    max_batch=st.integers(1, 9),
    total=st.integers(1, 25),
    # Each disruption: (fraction of written entries to ack, whether to
    # then cut the connection) — randomized batch boundaries emerge
    # from the racing sender; randomized ack/reconnect points from
    # here.
    disruptions=st.lists(
        st.tuples(st.floats(0.0, 1.0), st.booleans()),
        max_size=3),
)
def test_random_acks_and_reconnects_keep_the_stream_gap_free(
        max_batch, total, disruptions):
    """The property the protocol stands on, under randomized batching:
    however frames coalesce and whenever the connection dies, the
    receiver's dedup-filtered view is exactly ``1..total`` in order,
    and every connection's stream is gap-free from its first entry."""

    async def scenario():
        receiver = FakeReceiver()
        port = await receiver.start()
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=max_batch)
        send_n(transport, 1, total)
        acked = 0
        for fraction, cut in disruptions:
            await wait_until(lambda: receiver.connections and len(
                flatten(receiver.connections[-1]["frames"])) >=
                total - acked)
            written = flatten(receiver.connections[-1]["frames"])
            target = written[int(fraction * (len(written) - 1))][0]
            if target > acked:
                await write_frame(receiver.connections[-1]["writer"],
                                  {"kind": "ack", "seq": target})
                acked = target
                await wait_until(lambda: transport.pending_out ==
                                 total - acked)
            if cut and acked < total:
                before = len(receiver.connections)
                receiver.connections[-1]["writer"].transport.abort()
                # The channel must reconnect and resend before the
                # next disruption (or the final drain) acks anything.
                await wait_until(lambda: len(receiver.connections) >
                                 before)
        await wait_until(lambda: receiver.connections and len(flatten(
            receiver.connections[-1]["frames"])) >= total - acked)
        await write_frame(receiver.connections[-1]["writer"],
                          {"kind": "ack", "seq": total})
        await wait_until(lambda: transport.pending_out == 0)

        streams = [flatten(record["frames"])
                   for record in receiver.connections]
        await transport.close()
        await receiver.close()
        return streams

    streams = asyncio.run(scenario())
    seen = set()
    first_occurrence = []
    for stream in streams:
        seqs = [seq for seq, _ in stream]
        # Gap-free within every connection, wherever it resumed.
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        for seq, message in stream:
            assert message.payload["writes"][0] == seq  # right body
            if seq not in seen:
                seen.add(seq)
                first_occurrence.append(seq)
    # Dedup-filtered view: exactly the original FIFO stream.
    assert first_occurrence == list(range(1, total + 1))


def test_empty_and_malformed_batch_frames_at_the_codec_seam():
    from repro.cluster.codec import CodecError, encode_batch_frame

    incarnation, entries = decode_batch_frame(
        encode_batch_frame("inc-a", []))
    assert incarnation == "inc-a" and entries == []
    with pytest.raises(CodecError):
        decode_batch_frame({"kind": "msg", "inc": "x", "msgs": []})
    with pytest.raises(CodecError):
        decode_batch_frame({"kind": "batch", "inc": "x"})
    with pytest.raises(CodecError):
        decode_batch_frame({"kind": "batch", "inc": "x",
                            "msgs": [{"seq": 1}]})
