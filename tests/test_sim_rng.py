"""Tests for reproducible named random streams."""

from repro.sim import RngRegistry


def test_same_seed_same_stream_is_reproducible():
    draws_a = [RngRegistry(7).stream("workload").random() for _ in range(1)]
    draws_b = [RngRegistry(7).stream("workload").random() for _ in range(1)]
    assert draws_a == draws_b


def test_streams_are_cached_per_name():
    registry = RngRegistry(1)
    assert registry.stream("x") is registry.stream("x")


def test_different_names_give_different_streams():
    registry = RngRegistry(1)
    seq_a = [registry.stream("a").random() for _ in range(5)]
    seq_b = [registry.stream("b").random() for _ in range(5)]
    assert seq_a != seq_b


def test_different_seeds_differ():
    seq_a = [RngRegistry(1).stream("w").random() for _ in range(5)]
    seq_b = [RngRegistry(2).stream("w").random() for _ in range(5)]
    assert seq_a != seq_b


def test_consuming_one_stream_does_not_perturb_another():
    registry_a = RngRegistry(9)
    registry_b = RngRegistry(9)
    # Consume heavily from an unrelated stream in one registry only.
    for _ in range(100):
        registry_a.stream("noise").random()
    assert (registry_a.stream("signal").random()
            == registry_b.stream("signal").random())


def test_spawn_derives_deterministic_child():
    child_a = RngRegistry(3).spawn("trial-1")
    child_b = RngRegistry(3).spawn("trial-1")
    assert child_a.seed == child_b.seed
    assert child_a.seed != RngRegistry(3).seed
