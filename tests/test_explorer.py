"""The schedule explorer: decisions, generation, running, shrinking,
traces, and the end-to-end indiscriminate reproduction."""

from __future__ import annotations

import json

import pytest

from repro.explorer import (
    ExplorationConfig,
    PerturbationPlan,
    ScenarioSpec,
    build_scenario,
    ddmin,
    explore,
    generate_scenario,
    load_trace,
    replay_trace,
    run_schedule,
    save_trace,
    shrink_failure,
)
from repro.explorer.decisions import stable_u64
from repro.explorer.trace import reproduces, trace_dict


# ---------------------------------------------------------------------
# Addressable decisions
# ---------------------------------------------------------------------

def test_stable_u64_is_deterministic_and_key_sensitive():
    assert stable_u64(1, "net:0:1:0") == stable_u64(1, "net:0:1:0")
    assert stable_u64(1, "net:0:1:0") != stable_u64(2, "net:0:1:0")
    assert stable_u64(1, "net:0:1:0") != stable_u64(1, "net:0:1:1")


def test_plan_roundtrip_preserves_every_decision():
    plan = PerturbationPlan(seed=7, latency_scale=50.0,
                            schedule_noise=True,
                            disabled={"net:0:1:2", "sched:3"})
    clone = PerturbationPlan.from_dict(plan.to_dict())
    assert clone.seed == plan.seed
    assert clone.latency_scale == plan.latency_scale
    assert clone.schedule_noise == plan.schedule_noise
    assert clone.disabled == plan.disabled


def test_disabled_decisions_revert_to_defaults():
    plan = PerturbationPlan(seed=3, latency_scale=100.0)
    perturb = plan.latency_perturb(0.001)
    extra = perturb(0, 1, 0)
    assert extra > 0
    disabled = plan.replaced(disabled={"net:0:1:0"})
    assert disabled.latency_perturb(0.001)(0, 1, 0) == 0.0

    policy = plan.schedule_policy()
    key = policy.tie_break(0.0, 1, 5)
    assert key == stable_u64(3, "sched:5", 5) & 0xFFFF
    quiet = plan.replaced(disabled={"sched:5"}).schedule_policy()
    assert quiet.tie_break(0.0, 1, 5) == 0


def test_plan_records_queried_decision_keys():
    plan = PerturbationPlan(seed=1, latency_scale=10.0)
    plan.latency_perturb(0.001)(0, 2, 1)
    plan.schedule_policy().tie_break(0.0, 1, 4)
    assert "net:0:2:1" in plan.queried
    assert "sched:4" in plan.queried


# ---------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------

def test_generated_scenarios_are_valid_and_deterministic():
    for seed in range(10):
        spec = generate_scenario(seed, "dag_wt", min_sites=2,
                                 max_sites=6)
        assert spec == generate_scenario(seed, "dag_wt", min_sites=2,
                                         max_sites=6)
        assert 2 <= spec.n_sites <= 6
        assert spec.items and spec.transactions
        for _item, primary, replicas in spec.items:
            # Replicas strictly downstream: the copy graph stays a DAG.
            assert all(replica > primary for replica in replicas)
        # Every generated scenario must actually run under a protocol
        # that requires a DAG copy graph.
        build_scenario(spec).build()


def test_scenario_spec_roundtrip_and_subset():
    spec = generate_scenario(3, "eager")
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    reduced = spec.subset([0])
    assert reduced.transactions == spec.transactions[:1]
    assert reduced.items == spec.items
    assert spec.with_protocol("dag_t").protocol == "dag_t"


# ---------------------------------------------------------------------
# Deterministic execution
# ---------------------------------------------------------------------

def test_run_schedule_is_deterministic():
    spec = generate_scenario(5, "dag_wt")
    plan = PerturbationPlan(seed=11, latency_scale=200.0)
    first = run_schedule(spec, plan)
    second = run_schedule(spec, PerturbationPlan.from_dict(
        plan.to_dict()))
    assert first.outcomes == second.outcomes
    assert first.events_processed == second.events_processed
    assert [f.to_dict() for f in first.failures] == \
        [f.to_dict() for f in second.failures]


def test_perturbation_changes_delivery_times():
    spec = generate_scenario(5, "dag_wt")

    def deliveries(plan):
        builder = build_scenario(
            spec, schedule_policy=plan.schedule_policy())
        _env, system, _protocol = builder.build()
        system.network.set_perturbation(
            plan.latency_perturb(spec.latency))
        system.network.record_deliveries = True
        builder.run(until=spec.until, drain=spec.drain)
        return [(message.src, message.dst, message.deliver_time)
                for message in system.network.delivery_log]

    calm = deliveries(PerturbationPlan(
        seed=0, latency_scale=0.0, schedule_noise=False))
    stormy = deliveries(PerturbationPlan(seed=99, latency_scale=500.0))
    # The perturbation genuinely moves deliveries ...
    assert calm != stormy
    # ... while correctness is untouched (both runs stay clean).
    assert not run_schedule(spec, PerturbationPlan(
        seed=99, latency_scale=500.0)).failed


# ---------------------------------------------------------------------
# ddmin
# ---------------------------------------------------------------------

def test_ddmin_finds_the_minimal_subset():
    target = {3, 7}
    probes = []

    def test_fn(subset):
        probes.append(list(subset))
        return target <= set(subset)

    result = ddmin(list(range(10)), test_fn)
    assert set(result) == target
    assert len(probes) < 60


def test_ddmin_keeps_singleton():
    assert ddmin([4], lambda subset: 4 in subset) == [4]


# ---------------------------------------------------------------------
# End-to-end: the indiscriminate baseline must be caught and shrunk
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def indiscriminate_report():
    return explore(ExplorationConfig(protocol="indiscriminate",
                                     budget=200, seed=0))


def test_explorer_flags_indiscriminate(indiscriminate_report):
    report = indiscriminate_report
    assert report.failures_found >= 1
    assert report.failure is not None
    assert any(failure.oracle == "acyclicity"
               for failure in report.failure.failures)


def test_shrunk_reproducer_is_minimal(indiscriminate_report):
    failure = indiscriminate_report.failure
    # The acceptance bound: a handful of transactions, not the full
    # generated workload.
    assert len(failure.spec.transactions) <= 4
    # Every remaining transaction is necessary: removing any one makes
    # the failure disappear.
    for index in range(len(failure.spec.transactions)):
        keep = [i for i in range(len(failure.spec.transactions))
                if i != index]
        probe = run_schedule(failure.spec.subset(keep), failure.plan)
        assert not any(f.oracle == "acyclicity" for f in probe.failures)


def test_serializable_protocols_survive_the_same_schedules():
    # The exact scenario that breaks indiscriminate must be handled by
    # the serializable protocols (differential oracle check).
    report = explore(ExplorationConfig(protocol="indiscriminate",
                                       budget=200, seed=0))
    spec, plan = report.failure.spec, report.failure.plan
    for protocol in ("dag_wt", "backedge", "eager"):
        outcome = run_schedule(spec.with_protocol(protocol), plan)
        assert not outcome.failed, protocol


def test_explore_is_clean_for_dag_wt():
    report = explore(ExplorationConfig(protocol="dag_wt", budget=30,
                                       seed=1))
    assert report.clean
    assert report.schedules_run == 30
    assert report.committed_total > 0


# ---------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------

def test_trace_roundtrip_and_replay(tmp_path, indiscriminate_report):
    report = indiscriminate_report
    failure = report.failure
    path = str(tmp_path / "trace.json")
    document = save_trace(path, failure.spec, failure.plan, failure,
                          meta={"protocol": "indiscriminate"})
    assert document == json.loads(
        json.dumps(report.trace | {"meta": document["meta"]}))

    spec, plan, loaded = load_trace(path)
    assert spec == failure.spec
    assert plan.to_dict() == failure.plan.to_dict()

    outcome, original = replay_trace(path)
    assert reproduces(outcome, original)
    # The replayed cycle is identical node for node.
    assert outcome.cycle() == failure.cycle()


def test_reproduces_rejects_a_diverged_outcome(indiscriminate_report):
    failure = indiscriminate_report.failure
    document = trace_dict(failure.spec, failure.plan, failure)
    clean = run_schedule(failure.spec.with_protocol("dag_wt"),
                         failure.plan)
    assert not reproduces(clean, document)


def test_load_trace_rejects_unknown_version():
    with pytest.raises(ValueError):
        load_trace({"version": 999})


# ---------------------------------------------------------------------
# Shrinking edge cases
# ---------------------------------------------------------------------

def test_shrink_failure_requires_a_failing_input():
    spec = generate_scenario(5, "dag_wt")
    with pytest.raises(ValueError):
        shrink_failure(spec, PerturbationPlan(seed=0))


def test_shrink_respects_its_run_budget(indiscriminate_report):
    failure = indiscriminate_report.failure
    stats: dict = {}
    shrink_failure(failure.spec, failure.plan, max_runs=5, stats=stats)
    assert stats["runs"] <= 5
