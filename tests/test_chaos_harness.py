"""End-to-end tests for the chaos harness against live clusters.

Each test boots a real cluster (asyncio servers on localhost TCP),
runs a seeded fault script through :func:`repro.chaos.run_chaos` and
checks the verdict machinery: healthy perturbations stay green, the
injection log replays bit-for-bit, injected regressions are caught and
shrink to a tiny script, log corruption is never silent, and a killed
mid-tree site is localised to its copy-graph hop.

Port plan: this file owns 7600-7799 (stride 10 per test) so it never
collides with the other live-cluster suites or the CI fixture.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.controller import ChaosScenario, run_chaos
from repro.chaos.plan import FaultPlan, KillFault, LinkFault, \
    profile_plan
from repro.chaos.shrinker import shrink_scenario
from repro.cluster.spec import ClusterSpec
from repro.obs.monitor import MonitorConfig
from repro.workload.params import WorkloadParams


def make_spec(base_port, protocol="dag_wt", seed=3, **overrides):
    params = dict(n_sites=3, n_items=12,
                  replication_probability=0.8,
                  threads_per_site=2, transactions_per_thread=6,
                  read_txn_probability=0.3, deadlock_timeout=0.05)
    params.update(overrides)
    return ClusterSpec(params=WorkloadParams(**params),
                       protocol=protocol, seed=seed,
                       base_port=base_port)


def assert_green(report):
    assert report.ok, report.violations
    assert report.committed > 0
    assert report.convergent and report.serializable
    assert report.alerts_post.get("critical", 0) == 0


def test_healthy_jitter_run_is_green_on_dag_wt(tmp_path):
    scenario = ChaosScenario(
        spec=make_spec(7600), plan=profile_plan("jitter", seed=1,
                                                n_sites=3),
        name="jitter/dag_wt")
    report = run_chaos(scenario, str(tmp_path / "wal"))
    assert_green(report)
    assert report.alerts_during.get("critical", 0) == 0
    assert report.injections  # jitter really was on the wire


def test_healthy_jitter_run_is_green_on_backedge(tmp_path):
    scenario = ChaosScenario(
        spec=make_spec(7610, protocol="backedge", seed=5),
        plan=profile_plan("jitter", seed=1, n_sites=3),
        name="jitter/backedge")
    report = run_chaos(scenario, str(tmp_path / "wal"))
    assert_green(report)
    assert report.alerts_during.get("critical", 0) == 0


def test_injection_log_is_exactly_replayable(tmp_path):
    """Same scenario, two fresh clusters: the recorded injection logs
    must be identical decision-for-decision — the artifact a failing
    run saves really is a replay script."""
    spec = make_spec(7620, n_sites=2, n_items=6,
                     replication_probability=1.0,
                     threads_per_site=1, transactions_per_thread=8,
                     read_txn_probability=0.0)
    plan = FaultPlan(seed=21, events=(
        LinkFault(delay=0.001, jitter=0.004),))
    scenario = ChaosScenario(spec=spec, plan=plan,
                             anti_entropy_interval=0.0,
                             name="replay-equality")
    first = run_chaos(scenario, str(tmp_path / "wal1"), monitor=False)
    second = run_chaos(scenario, str(tmp_path / "wal2"), monitor=False)
    assert first.ok, first.violations
    assert second.ok, second.violations
    assert first.injections == second.injections
    assert first.injections  # non-trivial comparison
    assert first.committed == second.committed


def test_regression_is_caught_and_shrinks_to_tiny_script(tmp_path):
    """The known-bad fixture (forward-before-WAL with a kill under
    jitter noise) must fail its oracles, and ddmin must strip the
    noise down to at most 3 events."""
    scenario = ChaosScenario.load("tests/data/chaos_known_bad.json")
    scenario = scenario.replaced(spec=dataclasses.replace(
        scenario.spec, base_port=7630))
    probes = []
    minimal, report = shrink_scenario(
        scenario, str(tmp_path / "shrink"),
        log=lambda line: probes.append(line))
    assert not report.ok
    assert any("convergence" in v or "serializability" in v or
               "post-monitor" in v for v in report.violations), \
        report.violations
    assert len(minimal.plan.events) <= 3
    # The kill is the load-bearing event: without it the neutered
    # durability barrier never becomes observable divergence.
    assert minimal.plan.kill_events()
    # The shrunk scenario is a self-contained replayable artifact.
    path = tmp_path / "minimal.json"
    minimal.save(str(path))
    assert ChaosScenario.load(str(path)).plan == minimal.plan


def test_torn_journal_profile_repairs_silently(tmp_path):
    scenario = ChaosScenario(
        spec=make_spec(7650),
        plan=profile_plan("torn-journal", seed=4, n_sites=3),
        name="torn-journal")
    report = run_chaos(scenario, str(tmp_path / "wal"))
    assert_green(report)
    assert report.corruption, "the torn tail was never applied"
    assert all(record["via"] == "torn-repair"
               for record in report.corruption), report.corruption
    assert not any("torn" in v for v in report.violations)


def test_bitflip_profile_is_detected_never_silent(tmp_path):
    scenario = ChaosScenario(
        spec=make_spec(7660),
        plan=profile_plan("bitflip-wal", seed=4, n_sites=3),
        name="bitflip-wal")
    report = run_chaos(scenario, str(tmp_path / "wal"))
    assert_green(report)
    assert report.corruption, "the bit flip was never applied"
    # Every flip must be caught by the record checksums ("error") or
    # land in a region the torn-tail repair legitimately discards
    # ("torn-repair") — never load as clean data.
    assert all(record["via"] in ("error", "torn-repair")
               for record in report.corruption), report.corruption
    assert not any("silent-corruption" in v
                   for v in report.violations)


def test_killed_mid_tree_site_is_localised_to_its_hop(tmp_path):
    """DAG(WT) on seed 3 is the chain 0 -> 1 -> 2.  Chaos-killing
    site 1 mid-workload must raise a stuck-propagation alert whose
    evidence names the copy-graph hop into the dead site."""
    spec = make_spec(7670, transactions_per_thread=20)
    scenario = ChaosScenario(
        spec=spec,
        plan=FaultPlan(seed=0, events=(
            KillFault(site=1, at=0.3, down_for=2.0),)),
        name="kill-mid-tree")
    report = run_chaos(
        scenario, str(tmp_path / "wal"),
        monitor_config=MonitorConfig(
            interval=0.15, convergence_every=0, trace_limit=256,
            stuck_deadline=0.6, down_polls=2))
    # Kills are out-of-model noise for the during-run monitor, so the
    # run itself must still settle green after the restart.
    assert report.ok, report.violations
    assert report.kills and report.kills[0]["site"] == 1
    stuck = [alert for alert
             in report.alerts_during.get("alerts", [])
             if alert["rule"] == "stuck-propagation"]
    assert stuck, report.alerts_during.get("by_rule")
    hops = [tuple(hop) for alert in stuck
            for hop in alert["evidence"]["hops"]]
    assert hops and all(dst == 1 for _origin, dst in hops), hops
