"""Integration tests for the BackEdge protocol (paper Sec. 4), including
the Example 4.1 global-deadlock scenario."""

import pytest

from repro.errors import GraphError
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def example_41_placement():
    """Paper Example 4.1: s0 holds primary a + replica of b; s1 holds
    primary b + replica of a.  The copy graph is the 2-cycle."""
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    return placement


@pytest.mark.parametrize("strict", [False, True])
def test_example_41_global_deadlock_resolved(strict):
    """T1 at s0 reads b, writes a; T2 at s1 reads a, writes b —
    concurrently.  Lazy propagation alone could never serialize both
    (Example 4.1); BackEdge must abort at least one and stay
    serializable."""
    env, system, proto = make_system(
        example_41_placement(), "backedge", lock_timeout=0.02,
        protocol_options={"strict_fifo_commit": strict})
    outcomes = []
    run_client(env, proto, spec(0, 1, ("r", "b"), ("w", "a")), 0.0,
               outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.0,
               outcomes)
    env.run(until=3.0)
    statuses = [status for _gid, status, _t in outcomes]
    assert len(statuses) == 2
    assert "committed" in statuses          # At least one wins.
    assert statuses != ["committed", "committed"]  # Not both.
    check_serializable(histories(system))
    assert no_locks_leaked(system)


def test_cyclic_graph_sequential_transactions_propagate_both_ways():
    """Without concurrency, updates flow across backedges eagerly and
    across DAG edges lazily — both replicas converge."""
    env, system, proto = make_system(example_41_placement(), "backedge")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b")), 0.2, outcomes)
    env.run(until=2.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    check_convergence(system)
    check_serializable(histories(system))
    # T2's update to b crossed a backedge: BACKEDGE + SPECIAL + 2PC.
    sent = system.network.sent_by_type
    assert sent[MessageType.BACKEDGE] == 1
    assert sent[MessageType.SPECIAL] >= 1
    assert sent[MessageType.PREPARE] == 1
    assert sent[MessageType.DECISION] == 1
    # T1's update to a went down the chain lazily.
    assert sent[MessageType.SECONDARY] == 1


def test_reduces_to_dag_wt_on_acyclic_graphs():
    """Sec. 4.1: with no backedges the protocol is DAG(WT) — same
    messages, no 2PC traffic."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "backedge")
    assert proto.backedges == set()
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    sent = system.network.sent_by_type
    assert sent[MessageType.BACKEDGE] == 0
    assert sent[MessageType.PREPARE] == 0
    assert sent[MessageType.SECONDARY] >= 1
    check_convergence(system)


def test_backedge_updates_apply_at_all_target_sites():
    """A transaction whose item is replicated both before and after its
    origin: ancestors get the eager path, descendants the lazy one."""
    placement = DataPlacement(3)
    placement.add_item("mid", primary=1, replicas=[0, 2])
    placement.add_item("x", primary=0, replicas=[1])  # s0 -> s1 edge.
    env, system, proto = make_system(placement, "backedge")
    outcomes = []
    run_client(env, proto, spec(1, 1, ("w", "mid")), 0.0, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] == "committed"
    for site_id in (0, 1, 2):
        assert system.site_of(site_id).engine.item("mid") \
            .committed_version == 1
    check_convergence(system)
    check_serializable(histories(system))


def test_farthest_ancestor_receives_backedge_directly():
    """With two backedge targets, S1 goes to the farthest ancestor; the
    nearer target is reached by the special on its way back."""
    placement = DataPlacement(3)
    placement.add_item("c", primary=2, replicas=[0, 1])
    placement.add_item("x", primary=0, replicas=[1])
    placement.add_item("y", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "backedge")
    outcomes = []
    run_client(env, proto, spec(2, 1, ("w", "c")), 0.0, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] == "committed"
    sent = system.network.sent_by_type
    assert sent[MessageType.BACKEDGE] == 1       # direct to s0 only
    assert sent[MessageType.PREPARE] == 2        # both targets in 2PC
    for site_id in (0, 1):
        assert system.site_of(site_id).engine.item("c") \
            .committed_version == 1
    check_convergence(system)


def test_tree_variant_works_on_cyclic_graph():
    placement = example_41_placement()
    env, system, proto = make_system(
        placement, "backedge", protocol_options={"variant": "tree"})
    assert len(proto.backedges) == 1
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b")), 0.3, outcomes)
    env.run(until=2.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    check_convergence(system)
    check_serializable(histories(system))


def test_unknown_variant_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        make_system(example_41_placement(), "backedge",
                    protocol_options={"variant": "bogus"})


def test_aborted_origin_tears_down_participants():
    """If the origin is wounded while awaiting its special, the backedge
    subtransactions must be rolled back and all locks freed."""
    placement = example_41_placement()
    env, system, proto = make_system(placement, "backedge",
                                     lock_timeout=0.02)
    outcomes = []
    # Two writers at s1 race a conflicting writer at s0: one global
    # deadlock is guaranteed through a/b conflicts.
    run_client(env, proto, spec(0, 1, ("r", "b"), ("w", "a")), 0.0,
               outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.0,
               outcomes)
    run_client(env, proto, spec(1, 2, ("w", "b")), 0.005, outcomes)
    env.run(until=3.0)
    assert len(outcomes) == 3
    check_serializable(histories(system))
    assert no_locks_leaked(system)
    for site in system.sites:
        assert not site.engine.active_transactions


def test_backedge_site_order_must_cover_graph():
    """A replica site neither ancestor nor descendant in the tree is a
    configuration error (cannot happen with chain trees)."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    env, system, proto = make_system(placement, "backedge")
    # Chain trees make everything comparable; force a bad tree manually.
    from repro.graph.tree import PropagationTree
    proto.tree = PropagationTree({0: None, 1: 0, 2: 0})
    with pytest.raises(GraphError):
        proto._backedge_targets(1, {"a": 1})
