"""Integration tests for the BackEdge-over-DAG(T) extension (the TR
extension referenced in Sec. 4)."""

import pytest

from repro.errors import GraphError
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from repro.workload.params import WorkloadParams
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def cyclic_placement():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    return placement


def test_reduces_to_dag_t_on_acyclic_graphs():
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "backedge_t")
    assert proto.backedges == set()
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    sent = system.network.sent_by_type
    assert sent[MessageType.BACKEDGE] == 0
    assert sent[MessageType.SECONDARY] == 2  # direct, one hop each
    check_convergence(system)


def test_backedge_update_propagates_eagerly_and_converges():
    env, system, proto = make_system(cyclic_placement(), "backedge_t")
    assert len(proto.backedges) == 1
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b")), 0.3, outcomes)
    env.run(until=3.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    sent = system.network.sent_by_type
    assert sent[MessageType.BACKEDGE] == 1
    assert sent[MessageType.DECISION] == 1
    check_convergence(system)
    check_serializable(histories(system))
    assert no_locks_leaked(system)


@pytest.mark.parametrize("seed", range(4))
def test_example_41_resolved(seed):
    env, system, proto = make_system(cyclic_placement(), "backedge_t",
                                     lock_timeout=0.02)
    outcomes = []
    run_client(env, proto, spec(0, 1, ("r", "b"), ("w", "a")),
               0.0005 * seed, outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a"), ("w", "b")), 0.0,
               outcomes)
    env.run(until=3.0)
    statuses = [status for _g, status, _t in outcomes]
    assert len(statuses) == 2
    assert statuses != ["committed", "committed"]
    check_serializable(histories(system))
    assert no_locks_leaked(system)


@pytest.mark.parametrize("seed", range(6))
def test_contended_workload_serializable(seed):
    params = WorkloadParams(
        n_sites=4, n_items=24, threads_per_site=3,
        transactions_per_thread=15, replication_probability=0.6,
        site_probability=0.7, backedge_probability=0.5,
        read_op_probability=0.5, read_txn_probability=0.3,
        deadlock_timeout=0.02)
    config = ExperimentConfig(protocol="backedge_t", params=params,
                              seed=seed, drain_time=2.0)
    result = run_experiment(config)
    assert result.serializable is True
    assert result.committed > 0


def test_minimal_backedges_guarantee_ancestor_paths():
    """The constructor repairs the order-based backedge set to a minimal
    one, so each target has a DAG path back to the origin."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[0, 2])
    placement.add_item("c", primary=2, replicas=[0, 1])
    env, system, proto = make_system(placement, "backedge_t")
    dag = proto.graph
    for src, dst in proto.backedges:
        assert dst in dag.ancestors(src)


def test_rejects_unreachable_replica_site():
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    env, system, proto = make_system(placement, "backedge_t")
    # Remove the direct edge behind the protocol's back and ask for
    # targets: the invariant check must fire.
    proto.graph = proto.graph.without_edges([(0, 2)])
    with pytest.raises(GraphError):
        proto._backedge_targets(0, {"a": 1})
