"""Tests for the DSG builder and cycle detection — including planted
anomalies the checker must catch."""

import pytest

from repro.errors import SerializabilityViolation
from repro.harness.serializability import (
    build_serialization_graph,
    check_serializable,
    find_dsg_cycle,
)
from repro.storage.history import SiteHistory
from repro.types import GlobalTransactionId, SubtransactionKind


def gid(site, seq):
    return GlobalTransactionId(site, seq)


def entry(history, g, reads=None, writes=None):
    history.record(g, SubtransactionKind.PRIMARY, 0.0, reads or {},
                   writes or {})


def test_empty_history_is_serializable():
    assert check_serializable([SiteHistory(0)]) == {}


def test_wr_edge():
    history = SiteHistory(0)
    entry(history, gid(0, 1), writes={"a": 1})
    entry(history, gid(0, 2), reads={"a": 1})
    graph = build_serialization_graph([history])
    assert gid(0, 2) in graph[gid(0, 1)]


def test_ww_edge():
    history = SiteHistory(0)
    entry(history, gid(0, 1), writes={"a": 1})
    entry(history, gid(0, 2), writes={"a": 2})
    graph = build_serialization_graph([history])
    assert gid(0, 2) in graph[gid(0, 1)]


def test_rw_edge():
    history = SiteHistory(0)
    entry(history, gid(0, 1), reads={"a": 0})
    entry(history, gid(0, 2), writes={"a": 1})
    graph = build_serialization_graph([history])
    assert gid(0, 2) in graph[gid(0, 1)]


def test_no_self_edges():
    history = SiteHistory(0)
    entry(history, gid(0, 1), reads={"a": 0}, writes={"a": 1})
    graph = build_serialization_graph([history])
    assert graph[gid(0, 1)] == set()


def test_version_zero_reads_have_no_writer_edge():
    history = SiteHistory(0)
    entry(history, gid(0, 1), reads={"a": 0})
    graph = build_serialization_graph([history])
    assert graph == {gid(0, 1): set()}


def test_example_11_anomaly_is_detected():
    """The non-serializable execution of paper Example 1.1: T1 before T2
    at s1 (via b... actually via a), T2 before T1 at s2."""
    t1, t2, t3 = gid(0, 1), gid(1, 1), gid(2, 1)
    s1 = SiteHistory(1)
    entry(s1, t1, writes={"a": 1})       # T1's update applied first
    entry(s1, t2, reads={"a": 1}, writes={"b": 1})
    s2 = SiteHistory(2)
    entry(s2, t2, writes={"b": 1})       # T2's update arrives first
    entry(s2, t3, reads={"a": 0, "b": 1})
    entry(s2, t1, writes={"a": 1})       # T1's update arrives late
    with pytest.raises(SerializabilityViolation) as excinfo:
        check_serializable([s1, s2])
    cycle = excinfo.value.cycle
    assert t1 in cycle and t3 in cycle


def test_example_41_anomaly_is_detected():
    """Example 4.1's unavoidable anomaly if both commit: T1 < T2 at s0
    and T2 < T1 at s1."""
    t1, t2 = gid(0, 1), gid(1, 1)
    s0 = SiteHistory(0)
    entry(s0, t1, reads={"b": 0}, writes={"a": 1})
    entry(s0, t2, writes={"b": 1})       # T2's replica update
    s1 = SiteHistory(1)
    entry(s1, t2, reads={"a": 0}, writes={"b": 1})
    entry(s1, t1, writes={"a": 1})       # T1's replica update
    with pytest.raises(SerializabilityViolation):
        check_serializable([s0, s1])


def test_cross_site_merge_by_gid():
    """Edges found at different sites merge on the global ids."""
    t1, t2, t3 = gid(0, 1), gid(1, 1), gid(2, 1)
    s0 = SiteHistory(0)
    entry(s0, t1, writes={"a": 1})
    entry(s0, t2, reads={"a": 1})
    s1 = SiteHistory(1)
    entry(s1, t2, writes={"b": 1})
    entry(s1, t3, reads={"b": 1})
    graph = build_serialization_graph([s0, s1])
    assert t2 in graph[t1]
    assert t3 in graph[t2]
    assert find_dsg_cycle(graph) is None


def test_long_chain_no_recursion_issues():
    history = SiteHistory(0)
    for version in range(1, 5001):
        entry(history, gid(0, version), writes={"a": version})
    graph = build_serialization_graph([history])
    assert find_dsg_cycle(graph) is None


def test_long_cycle_found():
    history = SiteHistory(0)
    n = 2000
    for i in range(1, n + 1):
        entry(history, gid(0, i),
              reads={"x{}".format(i % n): 0},
              writes={"x{}".format((i % n) + 1): 1})
    # Build an explicit cycle directly on the graph level instead.
    graph = {gid(0, i): {gid(0, (i % n) + 1)} for i in range(1, n + 1)}
    cycle = find_dsg_cycle(graph)
    assert cycle is not None
    assert cycle[0] == cycle[-1]
