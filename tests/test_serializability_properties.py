"""Seeded-random property tests for the serializability harness.

Two generators drive the properties:

- *Serial* histories replay one global serial order at every site, so
  the merged DSG must be acyclic and ``serialization_order`` must
  return a witness consistent with every edge.
- *Adversarial* histories let each site apply the same transactions in
  its own random order (the indiscriminate-protocol failure shape), so
  cycles appear; whenever ``find_dsg_cycle`` reports one, every edge of
  it must be a genuine DSG edge justified by ``explain_edges``.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SerializabilityViolation
from repro.harness.serializability import (
    build_serialization_graph,
    explain_cycle,
    explain_edges,
    find_dsg_cycle,
    serialization_order,
)
from repro.storage.history import SiteHistory
from repro.types import GlobalTransactionId, SubtransactionKind


def _random_transactions(rng: random.Random):
    """Random gids with random read/write sets over a few items."""
    n_items = rng.randint(2, 3)
    n_txns = rng.randint(3, 7)
    transactions = []
    for index in range(n_txns):
        gid = GlobalTransactionId(rng.randrange(3), index + 1)
        items = rng.sample(range(n_items),
                           rng.randint(1, min(2, n_items)))
        ops = [(item, rng.random() < 0.5) for item in items]
        if not any(is_write for _item, is_write in ops):
            ops[0] = (ops[0][0], True)  # at least one write
        transactions.append((gid, ops))
    return n_items, transactions


def _apply(history: SiteHistory, versions, gid, ops, time):
    """Apply one transaction to one site's version counters."""
    reads, writes = {}, {}
    for item, is_write in ops:
        if is_write:
            versions[item] += 1
            writes[item] = versions[item]
        else:
            reads[item] = versions[item]
    history.record(gid, SubtransactionKind.PRIMARY, time, reads, writes)


def _serial_histories(rng: random.Random):
    """Every site replays the same global serial order (a subset each)."""
    n_items, transactions = _random_transactions(rng)
    n_sites = rng.randint(1, 3)
    histories = [SiteHistory(site) for site in range(n_sites)]
    versions = [{item: 0 for item in range(n_items)}
                for _ in range(n_sites)]
    order = list(transactions)
    rng.shuffle(order)
    for time, (gid, ops) in enumerate(order):
        # Each transaction lands on a random non-empty subset of sites,
        # always in the same global order.
        sites = rng.sample(range(n_sites),
                           rng.randint(1, n_sites))
        for site in sites:
            _apply(histories[site], versions[site], gid, ops,
                   float(time))
    return histories


def _adversarial_histories(rng: random.Random):
    """Each site applies all transactions in its own random order."""
    n_items, transactions = _random_transactions(rng)
    n_sites = rng.randint(2, 3)
    histories = [SiteHistory(site) for site in range(n_sites)]
    for site in range(n_sites):
        versions = {item: 0 for item in range(n_items)}
        order = list(transactions)
        rng.shuffle(order)
        for time, (gid, ops) in enumerate(order):
            _apply(histories[site], versions, gid, ops, float(time))
    return histories


@pytest.mark.parametrize("seed", range(30))
def test_serial_histories_yield_a_consistent_witness(seed):
    histories = _serial_histories(random.Random(seed))
    graph = build_serialization_graph(histories)
    assert find_dsg_cycle(graph) is None
    order = serialization_order(graph)
    assert sorted(order) == sorted(graph)
    position = {gid: index for index, gid in enumerate(order)}
    # The witness respects *every* DSG edge.
    for src, successors in graph.items():
        for dst in successors:
            assert position[src] < position[dst], (src, dst)


@pytest.mark.parametrize("seed", range(30))
def test_reported_cycles_are_genuine_and_explained(seed):
    histories = _adversarial_histories(random.Random(seed))
    graph = build_serialization_graph(histories)
    cycle = find_dsg_cycle(graph)
    if cycle is None:
        # Acyclic: the witness must exist and cover every node.
        assert len(serialization_order(graph)) == len(graph)
        return
    assert len(cycle) >= 3
    assert cycle[0] == cycle[-1]
    for src, dst in zip(cycle, cycle[1:]):
        assert dst in graph[src]
        # Every edge is justified by an actual per-site conflict.
        assert explain_edges(histories, src, dst), (src, dst)
    rendered = explain_cycle(histories, cycle)
    assert "->" in rendered
    with pytest.raises(SerializabilityViolation):
        serialization_order(graph)


def test_adversarial_generator_does_find_cycles():
    # Guard against the property above silently testing nothing: over
    # the seed range, at least one adversarial history must be cyclic.
    cycles = 0
    for seed in range(30):
        histories = _adversarial_histories(random.Random(seed))
        if find_dsg_cycle(build_serialization_graph(histories)):
            cycles += 1
    assert cycles > 0


def test_serialization_order_breaks_ties_deterministically():
    a, b, c = (GlobalTransactionId(0, 1), GlobalTransactionId(1, 1),
               GlobalTransactionId(2, 1))
    graph = {a: {c}, b: {c}, c: set()}
    assert serialization_order(graph) == [a, b, c]
    assert serialization_order(graph) == serialization_order(graph)
