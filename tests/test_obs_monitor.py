"""Online invariant watchdog: rule units over a stub wire, live
alerting on a real degraded cluster.

The rule tests drive :class:`~repro.obs.monitor.Watchdog` through a
stub client returning fabricated ``versions``/``stats``/``trace``/
``status`` responses, so each alert rule (lag SLO, saturation, WAL
regression, divergence, site-down, dedup/escalation) is checked
deterministically.  The live tests boot a real 3-site cluster, verify
a healthy run stays alert-free, then kill one site and assert the
watchdog both notices the death and **localises the stuck propagation
to the dead replica** via the trace trees — the acceptance criterion
of the monitoring plane.
"""

import asyncio
import json
import time

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.codec import encode_value
from repro.cluster.loadgen import generate_load
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.obs.monitor import Alert, AlertSink, MonitorConfig, Watchdog
from repro.types import GlobalTransactionId, Operation, OpType, \
    TransactionSpec
from repro.workload.params import WorkloadParams

PARAMS = WorkloadParams(n_sites=3, n_items=12,
                        replication_probability=0.8,
                        threads_per_site=2, transactions_per_thread=6,
                        read_txn_probability=0.3,
                        deadlock_timeout=0.05)


def make_spec(base_port):
    return ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                       base_port=base_port)


class StubClient:
    """Canned ``try_each`` responses, keyed by op; every call is
    recorded as ``(op, fields)`` so tests can assert fan-outs."""

    def __init__(self):
        self.responses = {}
        self.unreachable = {}
        self.calls = []

    def set(self, op, by_site, unreachable=()):
        self.responses[op] = dict(by_site)
        self.unreachable[op] = list(unreachable)

    async def try_each(self, op, **fields):
        self.calls.append((op, dict(fields)))
        return (dict(self.responses.get(op, {})),
                list(self.unreachable.get(op, [])))


def stub_watchdog(config=None, base_port=7735):
    spec = make_spec(base_port)
    client = StubClient()
    watchdog = Watchdog(spec, client, config=config)
    return spec, client, watchdog


def versions_frame(site, versions):
    return {"ok": True, "site": site,
            "versions": encode_value(versions)}


def uniform_versions(spec, version):
    """Every site reports ``version`` for every item it holds."""
    placement = spec.build_placement()
    frames = {}
    for site in range(spec.params.n_sites):
        held = {item: version for item in placement.items
                if site in placement.sites_of(item)}
        frames[site] = versions_frame(site, held)
    return frames


def lagged_pair(spec, lag):
    """Versions where one replica trails its primary by ``lag``."""
    placement = spec.build_placement()
    item = next(it for it in placement.items
                if placement.replica_sites(it))
    primary = placement.primary_site(item)
    replica = min(placement.replica_sites(item))
    frames = uniform_versions(spec, 10 + lag)
    held = {it: 10 + lag for it in placement.items
            if replica in placement.sites_of(it)}
    held[item] = 10
    frames[replica] = versions_frame(replica, held)
    return frames, primary, replica, item


# ----------------------------------------------------------------------
# Rule units over the stub wire
# ----------------------------------------------------------------------

def test_healthy_poll_fires_nothing():
    spec, client, watchdog = stub_watchdog(MonitorConfig(
        trace_limit=0, convergence_every=0))
    client.set("versions", uniform_versions(spec, 5))
    client.set("stats", {})
    fired = asyncio.run(watchdog.poll_once())
    assert fired == []
    assert watchdog.critical_count == 0


def test_lag_slo_warns_then_escalates():
    config = MonitorConfig(lag_warn=4, lag_critical=16,
                           trace_limit=0, convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    frames, primary, replica, item = lagged_pair(spec, lag=6)
    client.set("versions", frames)
    client.set("stats", {})
    fired = asyncio.run(watchdog.poll_once())
    assert [alert.rule for alert in fired] == ["lag-slo"]
    alert = fired[0]
    assert alert.severity == "warning"
    assert alert.site == replica
    assert alert.evidence["max_lag"] == 6
    assert any(pair["item"] == item and pair["primary"] == primary
               for pair in alert.evidence["pairs"])

    # Same condition again: deduplicated, not re-fired.
    assert asyncio.run(watchdog.poll_once()) == []
    assert len(watchdog.alerts) == 1
    assert watchdog.alerts[("lag-slo", replica)].count == 2

    # Past the SLO: the SAME alert escalates to critical (and is
    # re-surfaced once).
    frames, _, _, _ = lagged_pair(spec, lag=20)
    client.set("versions", frames)
    fired = asyncio.run(watchdog.poll_once())
    assert [alert.severity for alert in fired] == ["critical"]
    assert len(watchdog.alerts) == 1
    assert watchdog.critical_count == 1


def test_lag_judged_from_last_known_versions_of_dead_replica():
    """A replica that stops answering is still judged — from the last
    versions it reported — and the alert says so."""
    config = MonitorConfig(lag_warn=4, lag_critical=16, down_polls=99,
                           trace_limit=0, convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    frames, _primary, replica, _item = lagged_pair(spec, lag=0)
    client.set("versions", frames)
    client.set("stats", {})
    assert asyncio.run(watchdog.poll_once()) == []

    # The replica dies; primaries advance 20 versions past its last
    # known state.
    advanced = uniform_versions(spec, 30)
    del advanced[replica]
    client.set("versions", advanced, unreachable=[replica])
    fired = asyncio.run(watchdog.poll_once())
    lag_alerts = [a for a in fired if a.rule == "lag-slo"
                  and a.site == replica]
    assert lag_alerts and lag_alerts[0].severity == "critical"
    assert lag_alerts[0].evidence["unreachable"] is True


def test_site_down_needs_consecutive_misses():
    config = MonitorConfig(down_polls=2, trace_limit=0,
                           convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    healthy = uniform_versions(spec, 5)
    degraded = {site: frame for site, frame in healthy.items()
                if site != 2}
    client.set("stats", {})
    client.set("versions", degraded, unreachable=[2])
    assert asyncio.run(watchdog.poll_once()) == []  # one miss: not yet
    fired = asyncio.run(watchdog.poll_once())
    assert [(alert.rule, alert.site) for alert in fired] == \
        [("site-down", 2)]
    assert fired[0].severity == "critical"

    # Recovery resets the streak: no re-fire after a single new miss.
    client.set("versions", healthy)
    asyncio.run(watchdog.poll_once())
    client.set("versions", degraded, unreachable=[2])
    before = watchdog.alerts[("site-down", 2)].count
    asyncio.run(watchdog.poll_once())
    assert watchdog.alerts[("site-down", 2)].count == before


def stats_frame(site, gauges=None, histograms=None):
    return {"ok": True, "site": site,
            "stats": {"enabled": True, "counters": {},
                      "gauges": gauges or {},
                      "histograms": histograms or {}}}


def test_apply_queue_saturation_needs_a_streak():
    config = MonitorConfig(queue_saturation=8, queue_polls=3,
                           trace_limit=0, convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    client.set("versions", uniform_versions(spec, 5))
    saturated = {0: stats_frame(0, gauges={
        "server.apply_queue": {"value": 9, "high_water": 12}})}
    client.set("stats", saturated)
    assert asyncio.run(watchdog.poll_once()) == []
    assert asyncio.run(watchdog.poll_once()) == []
    fired = asyncio.run(watchdog.poll_once())
    assert [(alert.rule, alert.site, alert.severity)
            for alert in fired] == \
        [("apply-queue-saturation", 0, "warning")]
    assert fired[0].evidence["streak"] == 3


def wal_hist(counts, edges=(0.001, 0.004, 0.064)):
    total = sum(counts)
    return {"buckets": list(edges), "counts": list(counts),
            "count": total, "sum": 0.0, "min": 0.0,
            "max": edges[-1]}


def test_wal_sync_regression_compares_windows():
    config = MonitorConfig(wal_regression_factor=4.0,
                           wal_floor_s=0.002, trace_limit=0,
                           convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    client.set("versions", uniform_versions(spec, 5))

    def poll_with(counts):
        client.set("stats", {0: stats_frame(0, histograms={
            "wal.sync_s": wal_hist(counts)})})
        return asyncio.run(watchdog.poll_once())

    # Baseline window: all syncs under 1 ms (p95 = 0.001).
    assert poll_with([10, 0, 0, 0]) == []          # first sight
    assert poll_with([30, 0, 0, 0]) == []          # baseline window
    # Fast windows keep passing.
    assert poll_with([60, 0, 0, 0]) == []
    # A window whose p95 lands in the 64 ms bucket: 64x the baseline.
    fired = poll_with([60, 0, 0, 20])
    assert [(alert.rule, alert.site) for alert in fired] == \
        [("wal-sync-regression", 0)]
    assert fired[0].severity == "warning"
    assert fired[0].evidence["window_p95_s"] == pytest.approx(0.064)


def status_frame(site, items):
    return {"ok": True, "site": site, "items": encode_value(items)}


def test_divergence_same_version_different_value_is_critical():
    config = MonitorConfig(trace_limit=0, convergence_every=1)
    spec, client, watchdog = stub_watchdog(config)
    placement = spec.build_placement()
    item = next(it for it in placement.items
                if placement.replica_sites(it))
    primary = placement.primary_site(item)
    replica = min(placement.replica_sites(item))
    client.set("versions", uniform_versions(spec, 5))
    client.set("stats", {})
    statuses = {}
    for site in range(spec.params.n_sites):
        held = {it: {"version": 5, "value": "v5"}
                for it in placement.items
                if site in placement.sites_of(it)}
        if site == replica:
            held[item] = {"version": 5, "value": "DIVERGED"}
        statuses[site] = status_frame(site, held)
    client.set("status", statuses)
    fired = asyncio.run(watchdog.poll_once())
    divergence = [alert for alert in fired
                  if alert.rule == "divergence"]
    assert len(divergence) == 1
    assert divergence[0].severity == "critical"
    assert divergence[0].site == replica
    assert divergence[0].evidence["items"][0]["item"] == item
    assert divergence[0].evidence["items"][0]["primary"] == primary


def test_alert_sink_writes_first_fire_and_escalation_only(tmp_path):
    sink_path = tmp_path / "alerts.jsonl"
    config = MonitorConfig(lag_warn=4, lag_critical=16,
                           trace_limit=0, convergence_every=0)
    spec = make_spec(7735)
    client = StubClient()
    watchdog = Watchdog(spec, client, config=config,
                        sink_path=str(sink_path))
    frames, _primary, replica, _item = lagged_pair(spec, lag=6)
    client.set("versions", frames)
    client.set("stats", {})
    asyncio.run(watchdog.poll_once())   # fires (warning)
    asyncio.run(watchdog.poll_once())   # dedup: no record
    frames, _, _, _ = lagged_pair(spec, lag=20)
    client.set("versions", frames)
    asyncio.run(watchdog.poll_once())   # escalation: record
    asyncio.run(watchdog.poll_once())   # dedup again
    watchdog.close()
    records = [json.loads(line)
               for line in sink_path.read_text().splitlines()]
    assert [record["severity"] for record in records] == \
        ["warning", "critical"]
    assert all(record["rule"] == "lag-slo" and
               record["site"] == replica for record in records)
    assert all("t" in record and "evidence" in record
               for record in records)


def make_alert(index, severity="warning"):
    return Alert(rule="lag-slo", severity=severity, site=index % 3,
                 message="replica trails by {} versions".format(index),
                 evidence={"i": index, "pad": "x" * 40},
                 first_seen=float(index), last_seen=float(index))


def test_alert_sink_rotates_at_size_cap(tmp_path):
    """A size-capped sink keeps the newest generations under
    ``max_bytes * (backups + 1)`` bytes instead of growing without
    bound — the unbounded-`repro monitor` regression."""
    path = tmp_path / "alerts.jsonl"
    sink = AlertSink(str(path), max_bytes=2048, backups=2)
    for index in range(200):
        sink.emit(make_alert(index))
    sink.close()
    assert path.stat().st_size <= 2048
    assert (tmp_path / "alerts.jsonl.1").exists()
    assert (tmp_path / "alerts.jsonl.2").exists()
    assert not (tmp_path / "alerts.jsonl.3").exists()
    # Every surviving line is parseable, and the newest record is in
    # the live file while rotated generations hold strictly older ones.
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert records and records[-1]["evidence"]["i"] == 199
    rotated = [json.loads(line) for line in
               (tmp_path / "alerts.jsonl.1").read_text().splitlines()]
    assert rotated
    assert rotated[-1]["evidence"]["i"] < records[0]["evidence"]["i"]


def test_alert_sink_resumes_size_accounting_on_reopen(tmp_path):
    """A fresh sink over an existing file counts its bytes, so a
    restarted monitor still rotates at the cap."""
    path = tmp_path / "alerts.jsonl"
    first = AlertSink(str(path), max_bytes=600, backups=1)
    first.emit(make_alert(0))
    first.close()
    existing = path.stat().st_size
    second = AlertSink(str(path), max_bytes=600, backups=1)
    index = 1
    while not (tmp_path / "alerts.jsonl.1").exists() and index < 50:
        second.emit(make_alert(index))
        index += 1
    second.close()
    assert existing > 0
    assert (tmp_path / "alerts.jsonl.1").exists()
    # The pre-existing bytes counted toward the cap: the rotated
    # generation still opens with the record of the first sink.
    rotated = [json.loads(line) for line in
               (tmp_path / "alerts.jsonl.1").read_text().splitlines()]
    assert rotated[0]["evidence"]["i"] == 0
    assert path.stat().st_size <= 600


def test_alert_sink_uncapped_keeps_appending(tmp_path):
    path = tmp_path / "alerts.jsonl"
    sink = AlertSink(str(path))
    for index in range(50):
        sink.emit(make_alert(index))
    sink.close()
    assert len(path.read_text().splitlines()) == 50
    assert not (tmp_path / "alerts.jsonl.1").exists()


def test_alert_json_round_trip():
    alert = Alert(rule="lag-slo", severity="critical", site=1,
                  message="m", evidence={"max_lag": 20},
                  first_seen=1.0, last_seen=2.0, count=3)
    encoded = json.loads(json.dumps(alert.to_json()))
    assert encoded["rule"] == "lag-slo"
    assert encoded["count"] == 3
    assert alert.format().startswith("[CRITICAL] lag-slo s1:")
    assert AlertSink(None).emit(alert) is None  # no-op without a path


# ----------------------------------------------------------------------
# Epoch transitions: dedup keys and membership must survive the
# placement swap of _rebuild_pairs mid-stream
# ----------------------------------------------------------------------

def placement_frame(site, epoch, placement):
    return {"ok": True, "site": site, "epoch": epoch,
            "placement": placement.to_json()}


def test_alert_dedup_and_escalation_survive_epoch_change():
    """An epoch bump swaps the judged pairs via ``_rebuild_pairs``; a
    condition persisting across the swap must keep deduplicating on the
    same ``(rule, site)`` key — no double-fire — and still escalate."""
    config = MonitorConfig(lag_warn=4, lag_critical=16,
                           trace_limit=0, convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    frames, _primary, replica, _item = lagged_pair(spec, lag=6)
    client.set("versions", frames)
    client.set("stats", {})
    fired = asyncio.run(watchdog.poll_once())
    assert [(a.rule, a.site, a.severity) for a in fired] == \
        [("lag-slo", replica, "warning")]

    # Epoch 1 commits mid-stream (same placement, new epoch).  The
    # watchdog refreshes from the cluster; the unchanged lag must
    # dedup into the existing alert, not fire a second one.
    placement = spec.build_placement()
    client.set("versions", {site: dict(frame, epoch=1)
                            for site, frame in frames.items()})
    client.set("placement",
               {site: placement_frame(site, 1, placement)
                for site in range(spec.params.n_sites)})
    assert asyncio.run(watchdog.poll_once()) == []
    assert [op for op, _fields in client.calls].count("placement") == 1
    assert watchdog.summary()["epoch"] == 1
    assert len(watchdog.alerts) == 1
    assert watchdog.alerts[("lag-slo", replica)].count == 2

    # Escalation across the epoch boundary still lands on the same key.
    worse, _, _, _ = lagged_pair(spec, lag=20)
    client.set("versions", {site: dict(frame, epoch=1)
                            for site, frame in worse.items()})
    fired = asyncio.run(watchdog.poll_once())
    assert [(a.rule, a.severity) for a in fired] == \
        [("lag-slo", "critical")]
    assert len(watchdog.alerts) == 1
    assert watchdog.critical_count == 1


def test_epoch_change_retires_dropped_pairs_and_members():
    """A placement that drains a site mid-stream must stop judging its
    pairs (no spurious lag re-fires) and stop paging site-down for the
    now-removed member."""
    from repro.graph.placement import DataPlacement

    config = MonitorConfig(lag_warn=4, lag_critical=16, down_polls=2,
                           trace_limit=0, convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    frames, _primary, replica, _item = lagged_pair(spec, lag=6)
    client.set("versions", frames)
    client.set("stats", {})
    fired = asyncio.run(watchdog.poll_once())
    assert [(a.rule, a.site) for a in fired] == [("lag-slo", replica)]
    count_before = watchdog.alerts[("lag-slo", replica)].count

    # Epoch 1: every copy moves off the lagging replica — it is no
    # longer part of the replication plane, and then stops answering.
    survivors = [site for site in range(spec.params.n_sites)
                 if site != replica]
    drained = DataPlacement(spec.params.n_sites)
    old = spec.build_placement()
    for item in old.items:
        drained.add_item(item, survivors[0], [survivors[1]])
    versions = {}
    for site in survivors:
        held = {item: 30 for item in old.items}
        versions[site] = dict(versions_frame(site, held), epoch=1)
    client.set("versions", versions, unreachable=[replica])
    client.set("placement",
               {site: placement_frame(site, 1, drained)
                for site in survivors})
    assert asyncio.run(watchdog.poll_once()) == []  # miss 1, suppressed
    assert asyncio.run(watchdog.poll_once()) == []  # miss 2, suppressed
    assert watchdog.summary()["epoch"] == 1
    assert ("site-down", replica) not in watchdog.alerts
    # The stale lag alert neither re-fired nor escalated once its pair
    # left the placement.
    assert watchdog.alerts[("lag-slo", replica)].count == count_before
    assert watchdog.critical_count == 0


# ----------------------------------------------------------------------
# Watchdog dump-on-critical fan-out
# ----------------------------------------------------------------------

def dump_frames(sites, directory):
    return {site: {"ok": True, "site": site,
                   "path": "{}/flight-s{}-001.jsonl".format(directory,
                                                            site),
                   "records": 7}
            for site in sites}


def test_new_critical_fans_one_dump_per_key(tmp_path):
    """The first time a ``(rule, site)`` goes critical the watchdog
    fans exactly one ``dump`` to the cluster; the persisting critical
    never re-dumps, a *new* critical key does."""
    config = MonitorConfig(down_polls=2, trace_limit=0,
                           convergence_every=0)
    spec = make_spec(7735)
    client = StubClient()
    watchdog = Watchdog(spec, client, config=config,
                        dump_dir=str(tmp_path))
    healthy = uniform_versions(spec, 5)
    client.set("stats", {})
    client.set("versions", {site: frame for site, frame
                            in healthy.items() if site != 2},
               unreachable=[2])
    client.set("dump", dump_frames([0, 1], str(tmp_path)),
               unreachable=[2])

    def dump_calls():
        return [fields for op, fields in client.calls if op == "dump"]

    asyncio.run(watchdog.poll_once())          # miss 1: nothing yet
    assert dump_calls() == []
    asyncio.run(watchdog.poll_once())          # miss 2: site-down fires
    assert len(dump_calls()) == 1
    assert dump_calls()[0]["trigger"] == "watchdog:site-down"
    assert dump_calls()[0]["dir"] == str(tmp_path)
    assert watchdog.bundles == [
        "{}/flight-s0-001.jsonl".format(tmp_path),
        "{}/flight-s1-001.jsonl".format(tmp_path)]
    asyncio.run(watchdog.poll_once())          # persisting: no re-dump
    assert len(dump_calls()) == 1

    # A second member dies: a new (rule, site) key, a second fan-out.
    client.set("versions", {0: healthy[0]}, unreachable=[1, 2])
    client.set("dump", dump_frames([0], str(tmp_path)),
               unreachable=[1, 2])
    asyncio.run(watchdog.poll_once())
    asyncio.run(watchdog.poll_once())
    assert len(dump_calls()) == 2
    assert watchdog.summary()["bundles"] == watchdog.bundles
    assert len(watchdog.bundles) == 3


def test_without_dump_dir_no_dump_fanout():
    config = MonitorConfig(down_polls=1, trace_limit=0,
                           convergence_every=0)
    spec, client, watchdog = stub_watchdog(config)
    healthy = uniform_versions(spec, 5)
    client.set("stats", {})
    client.set("versions", {site: frame for site, frame
                            in healthy.items() if site != 2},
               unreachable=[2])
    fired = asyncio.run(watchdog.poll_once())
    assert [(a.rule, a.site) for a in fired] == [("site-down", 2)]
    assert [op for op, _fields in client.calls if op == "dump"] == []
    assert watchdog.bundles == []


# ----------------------------------------------------------------------
# Live cluster: healthy run clean, killed site localised
# ----------------------------------------------------------------------

async def start_cluster(spec):
    servers = {}
    for site in range(spec.params.n_sites):
        servers[site] = SiteServer(spec, site)
        await servers[site].start()
    client = ClusterClient(spec, timeout=2.0, retries=1)
    await client.wait_ready()
    return servers, client


def test_live_healthy_run_is_alert_free():
    spec = make_spec(7740)

    async def scenario():
        servers, client = await start_cluster(spec)
        watchdog = Watchdog(spec, client, config=MonitorConfig(
            interval=0.1, stuck_deadline=3.0))
        try:
            task = asyncio.get_running_loop().create_task(
                watchdog.run())
            report = await generate_load(spec, client, verify=True)
            await asyncio.sleep(0.3)
            watchdog.request_stop()
            await task
            return report, watchdog.summary()
        finally:
            watchdog.close()
            await client.close()
            for server in servers.values():
                await server.stop()

    report, summary = asyncio.run(scenario())
    assert report.convergent and report.serializable
    assert summary["polls"] > 0
    assert summary["critical"] == 0, summary["by_rule"]


def test_live_killed_site_localised_by_stuck_propagation():
    """The acceptance scenario: one member dies, new updates commit at
    the survivors, and the watchdog names the dead replica — both as
    unreachable and as the missing hop of the stuck trace trees."""
    spec = make_spec(7745)
    placement = spec.build_placement()
    victim = 2
    item = next(it for it in placement.items
                if placement.primary_site(it) == 0
                and victim in placement.replica_sites(it))

    async def scenario():
        servers, client = await start_cluster(spec)
        try:
            servers[victim].kill()
            watchdog = Watchdog(spec, client, config=MonitorConfig(
                interval=0.1, stuck_deadline=0.8, down_polls=2))
            # Commit a replicated write at a survivor AFTER the kill:
            # its propagation to the victim can never complete.
            outcome = await client.run_transaction(TransactionSpec(
                gid=GlobalTransactionId(0, 9001), origin=0,
                operations=(Operation(OpType.WRITE, item),)))
            assert outcome["status"] == "committed"
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                await watchdog.poll_once()
                if ("stuck-propagation", victim) in watchdog.alerts:
                    break
                await asyncio.sleep(0.1)
            return watchdog
        finally:
            await client.close()
            for site, server in servers.items():
                if site != victim:
                    await server.stop()

    watchdog = asyncio.run(scenario())
    assert ("site-down", victim) in watchdog.alerts
    stuck = watchdog.alerts.get(("stuck-propagation", victim))
    assert stuck is not None, watchdog.summary()["by_rule"]
    assert stuck.severity == "critical"
    assert "s{}".format(victim) in stuck.message
    assert [0, victim] in stuck.evidence["hops"]
    assert stuck.evidence["traces"]
    assert stuck.evidence["oldest_age_s"] > 0.8
    assert watchdog.critical_count >= 2
