"""Property tests for the 2PL lock manager's core invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Environment
from repro.storage import LockManager, LockMode
from repro.storage.transaction import Transaction
from repro.types import GlobalTransactionId, SubtransactionKind

N_TXNS = 4
N_ITEMS = 3

step_strategy = st.tuples(
    st.integers(0, N_TXNS - 1),
    st.sampled_from(["acquire_s", "acquire_x", "release", "cancel"]),
    st.integers(0, N_ITEMS - 1),
)


def make_txns():
    return [Transaction(GlobalTransactionId(0, seq), 0,
                        SubtransactionKind.PRIMARY, 0.0)
            for seq in range(N_TXNS)]


def holders_compatible(manager, item) -> bool:
    holders = manager.holders(item)
    modes = list(holders.values())
    if modes.count(LockMode.EXCLUSIVE) > 1:
        return False
    if LockMode.EXCLUSIVE in modes and len(modes) > 1:
        return False
    return True


@settings(max_examples=200, deadline=None)
@given(steps=st.lists(step_strategy, max_size=40))
def test_property_holder_compatibility_invariant(steps):
    """At every point: at most one X holder per item, and an X holder
    excludes all others."""
    manager = LockManager(Environment(), timeout=None)
    txns = make_txns()
    for slot, action, item in steps:
        txn = txns[slot]
        if action == "acquire_s":
            manager.acquire(txn, item, LockMode.SHARED)
        elif action == "acquire_x":
            manager.acquire(txn, item, LockMode.EXCLUSIVE)
        elif action == "release":
            manager.release_all(txn)
        elif action == "cancel":
            manager.cancel_waits(txn)
        for check_item in range(N_ITEMS):
            assert holders_compatible(manager, check_item)


@settings(max_examples=200, deadline=None)
@given(steps=st.lists(step_strategy, max_size=40))
def test_property_full_release_drains_everything(steps):
    """After every transaction releases and cancels, the lock table is
    empty and every grant event was triggered exactly once or
    withdrawn."""
    manager = LockManager(Environment(), timeout=None)
    txns = make_txns()
    events = []
    for slot, action, item in steps:
        txn = txns[slot]
        if action == "acquire_s":
            events.append(manager.acquire(txn, item, LockMode.SHARED))
        elif action == "acquire_x":
            events.append(manager.acquire(txn, item,
                                          LockMode.EXCLUSIVE))
        elif action == "release":
            manager.release_all(txn)
        elif action == "cancel":
            manager.cancel_waits(txn)
    for txn in txns:
        manager.cancel_waits(txn)
        manager.release_all(txn)
    assert manager.waiting_requests() == []
    for item in range(N_ITEMS):
        assert manager.holders(item) == {}
    # Internal table fully garbage-collected.
    assert manager._table == {}  # noqa: SLF001 - invariant check


@settings(max_examples=150, deadline=None)
@given(steps=st.lists(step_strategy, max_size=30))
def test_property_granted_requests_recorded_in_held_sets(steps):
    """items_held agrees with the holder table at all times."""
    manager = LockManager(Environment(), timeout=None)
    txns = make_txns()
    for slot, action, item in steps:
        txn = txns[slot]
        if action == "acquire_s":
            manager.acquire(txn, item, LockMode.SHARED)
        elif action == "acquire_x":
            manager.acquire(txn, item, LockMode.EXCLUSIVE)
        elif action == "release":
            manager.release_all(txn)
        elif action == "cancel":
            manager.cancel_waits(txn)
        for txn_check in txns:
            held = manager.items_held(txn_check)
            for item_check in held:
                assert txn_check in manager.holders(item_check)
        for item_check in range(N_ITEMS):
            for holder in manager.holders(item_check):
                assert item_check in manager.items_held(holder)
