"""Tests for the replica-convergence checker."""

import pytest

from repro.core.base import ReplicatedSystem, SystemConfig
from repro.graph.placement import DataPlacement
from repro.harness.convergence import (
    ConvergenceViolation,
    check_convergence,
    divergent_replicas,
)
from repro.sim.environment import Environment


def build_system():
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env = Environment()
    return ReplicatedSystem(env, placement, SystemConfig())


def test_fresh_system_is_convergent():
    system = build_system()
    assert divergent_replicas(system) == []
    check_convergence(system)  # No raise.


def test_divergence_detected_and_reported():
    system = build_system()
    system.site_of(0).engine.item("a").value = "fresh"
    problems = divergent_replicas(system)
    assert len(problems) == 2  # Both replicas of a disagree.
    items = {problem[0] for problem in problems}
    assert items == {"a"}
    with pytest.raises(ConvergenceViolation) as excinfo:
        check_convergence(system)
    assert "divergent" in str(excinfo.value)


def test_divergence_report_contains_sites_and_versions():
    system = build_system()
    record = system.site_of(2).engine.item("b")
    record.value = "stale"
    record.committed_version = 0
    (item, primary, replica, primary_v, replica_v), = \
        divergent_replicas(system)
    assert (item, primary, replica) == ("b", 1, 2)
    assert (primary_v, replica_v) == (0, 0)


def test_matching_values_with_different_versions_still_converge():
    """Convergence is value-based (PSL-style refresh semantics would
    never bump replica versions)."""
    system = build_system()
    replica = system.site_of(2).engine.item("a")
    replica.committed_version = 5  # Versions differ, values match.
    assert divergent_replicas(system) == []
