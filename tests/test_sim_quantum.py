"""Tests for round-robin CPU slicing (``Resource.use`` with a quantum) —
the mechanism keeping lock-hold windows short under load."""

import pytest

from repro.sim import Environment, Interrupt, Resource


def test_sliced_use_totals_are_exact():
    env = Environment()
    cpu = Resource(env, capacity=1)
    done = []

    def worker(name, duration):
        yield from cpu.use(duration, quantum=1.0)
        done.append((name, env.now))

    env.process(worker("a", 3.5))
    env.run()
    assert done == [("a", 3.5)]


def test_short_job_not_stuck_behind_long_one():
    """With a quantum, a short job finishes far earlier than the long
    job that arrived first."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    done = {}

    def worker(name, duration, start, quantum):
        yield env.timeout(start)
        yield from cpu.use(duration, quantum=quantum)
        done[name] = env.now

    env.process(worker("long", 100.0, 0.0, 1.0))
    env.process(worker("short", 1.0, 0.5, 1.0))
    env.run()
    # Interleaved: the short job needs ~2 quanta of wall time, not 100.
    assert done["short"] < 5.0
    assert done["long"] == pytest.approx(101.0)


def test_without_quantum_fifo_blocks():
    env = Environment()
    cpu = Resource(env, capacity=1)
    done = {}

    def worker(name, duration, start):
        yield env.timeout(start)
        yield from cpu.use(duration)
        done[name] = env.now

    env.process(worker("long", 100.0, 0.0))
    env.process(worker("short", 1.0, 0.5))
    env.run()
    assert done["short"] == pytest.approx(101.0)


def test_fair_sharing_between_equal_jobs():
    """Two equal sliced jobs finish at (almost) the same time, roughly
    at the sum of their demands."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    done = {}

    def worker(name):
        yield from cpu.use(10.0, quantum=1.0)
        done[name] = env.now

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done["a"] == pytest.approx(19.0, abs=1.5)
    assert done["b"] == pytest.approx(20.0, abs=1.5)


def test_zero_duration_use_completes():
    env = Environment()
    cpu = Resource(env, capacity=1)

    def worker():
        yield from cpu.use(0.0, quantum=1.0)
        return env.now

    process = env.process(worker())
    env.run()
    assert process.value == 0.0
    assert cpu.count == 0


def test_interrupt_mid_slice_releases_cpu():
    env = Environment()
    cpu = Resource(env, capacity=1)

    def victim():
        try:
            yield from cpu.use(100.0, quantum=1.0)
        except Interrupt:
            return "stopped"

    def other():
        yield from cpu.use(2.0, quantum=1.0)
        return env.now

    victim_proc = env.process(victim())
    other_proc = env.process(other())

    def killer():
        yield env.timeout(4.5)
        victim_proc.interrupt()

    env.process(killer())
    env.run()
    assert victim_proc.value == "stopped"
    assert other_proc.value < 10.0
    assert cpu.count == 0 and cpu.queue_length == 0


def test_quantum_larger_than_duration_is_single_slice():
    env = Environment()
    cpu = Resource(env, capacity=1)
    timeline = []

    def worker(name, duration):
        yield from cpu.use(duration, quantum=50.0)
        timeline.append((name, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 3.0))
    env.run()
    assert timeline == [("a", 2.0), ("b", 5.0)]
