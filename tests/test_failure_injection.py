"""Failure/perturbation injection: jittered latency, latency spikes,
tiny deadlock timeouts, heartbeat starvation — serializability and
liveness must survive all of them."""

import random

import pytest

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.serializability import check_serializable
from repro.workload.params import WorkloadParams
from tests.helpers import histories, make_system, run_client, spec

SMALL = WorkloadParams(n_sites=4, n_items=24, threads_per_site=2,
                       transactions_per_thread=12,
                       replication_probability=0.6,
                       backedge_probability=0.4,
                       deadlock_timeout=0.02)

FAST_COSTS = dict(cpu_txn_setup=0.002, cpu_per_op=0.0003,
                  cpu_commit=0.0003, cpu_message=0.0002,
                  cpu_apply_write=0.0003, cpu_remote_read=0.0003)


@pytest.mark.parametrize("protocol", ["backedge", "psl", "backedge_t"])
def test_jittered_latency_preserves_serializability(protocol):
    """Random per-message latency (the FIFO clamp keeps channel order)
    must not break any protocol."""
    for seed in range(3):
        env, system, proto = _build_with_jitter(protocol, seed)
        outcomes = _drive(env, system, proto, seed)
        check_serializable(histories(system))
        assert any(status == "committed" for _g, status, _t in outcomes)


def _build_with_jitter(protocol, seed):
    from repro.harness.runner import build_system
    config = ExperimentConfig(protocol=protocol, params=SMALL, seed=seed,
                              cost_overrides=dict(FAST_COSTS))
    env, system, proto, _generator = build_system(config)
    rng = random.Random(seed)
    system.network.latency = lambda: rng.uniform(0.0001, 0.01)
    # Channels created lazily pick the new latency sampler.
    return env, system, proto


def _drive(env, system, proto, seed):
    from repro.errors import TransactionAborted
    from repro.workload.distribution import generate_placement
    from repro.workload.generator import TransactionGenerator

    rng = random.Random(seed + 1000)
    generator = TransactionGenerator(SMALL, system.placement, rng)
    outcomes = []
    processes = []

    def client(site_id, thread):
        ref = []

        def body():
            for transaction in generator.thread_stream(site_id, thread):
                try:
                    yield from proto.run_transaction(
                        site_id, transaction, ref[0])
                    outcomes.append((transaction.gid, "committed",
                                     env.now))
                except TransactionAborted as exc:
                    outcomes.append((transaction.gid, exc.reason,
                                     env.now))

        ref.append(env.process(body()))
        processes.append(ref[0])

    for site_id in range(SMALL.n_sites):
        for thread in range(SMALL.threads_per_site):
            client(site_id, thread)
    from repro.sim.events import AllOf
    env.run(until=AllOf(env, processes))
    env.run(until=env.now + 3.0)
    return outcomes


@pytest.mark.parametrize("protocol", ["backedge", "psl"])
def test_extreme_latency_spike_only_slows_things_down(protocol):
    """100 ms one-way latency (the top of Table 1's range): still
    serializable, still live."""
    params = SMALL.replaced(network_latency=0.1,
                            transactions_per_thread=6,
                            deadlock_timeout=0.5)
    config = ExperimentConfig(protocol=protocol, params=params, seed=2,
                              cost_overrides=dict(FAST_COSTS),
                              drain_time=5.0)
    result = run_experiment(config)
    assert result.serializable is True
    assert result.committed > 0


def test_tiny_deadlock_timeout_causes_aborts_not_corruption():
    """A 2 ms timeout aborts aggressively but never corrupts state."""
    params = SMALL.replaced(deadlock_timeout=0.002)
    config = ExperimentConfig(protocol="backedge", params=params, seed=3,
                              cost_overrides=dict(FAST_COSTS),
                              drain_time=3.0)
    result = run_experiment(config)
    assert result.serializable is True
    assert result.committed + result.aborted == \
        SMALL.n_sites * SMALL.threads_per_site * \
        SMALL.transactions_per_thread


def test_dag_t_survives_slow_heartbeats():
    """Heartbeats 10x slower than default: propagation crawls but
    everything still converges."""
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[2])
    placement.add_item("b", primary=1, replicas=[2])
    env, system, proto = make_system(placement, "dag_t")
    proto.config.heartbeat_interval = 0.5
    proto.config.epoch_interval = 1.0
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b")), 0.1, outcomes)
    env.run(until=10.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    check_convergence(system)


def test_burst_arrivals_do_not_reorder_fifo_channels():
    """Hammer one channel with a burst under jittered latency; FIFO
    delivery order must hold."""
    from repro.network import MessageType, Network
    from repro.sim import Environment

    env = Environment()
    rng = random.Random(9)
    network = Network(env, n_sites=2,
                      latency=lambda: rng.uniform(0.0, 0.05))
    received = []
    network.set_handler(1, lambda msg: received.append(
        msg.payload["seq"]))
    for seq in range(200):
        network.send(MessageType.SECONDARY, 0, 1, seq=seq)
    env.run()
    assert received == list(range(200))
