"""Environment edge cases around the schedule-policy tie-break hook."""

from __future__ import annotations

import pytest

from repro.sim.environment import (
    EmptySchedule,
    Environment,
    SchedulePolicy,
)
from repro.sim.events import NORMAL, URGENT


def test_peek_on_empty_schedule_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_events_processed_counts_every_step():
    env = Environment()
    for _ in range(5):
        env.timeout(1.0)
    assert env.events_processed == 0
    env.run()
    assert env.events_processed == 5


def _trace_order(policy=None, n=6):
    """Schedule ``n`` same-time same-priority events; return fire order."""
    env = Environment(schedule_policy=policy)
    fired = []
    for index in range(n):
        timer = env.timeout(1.0)
        timer.callbacks.append(
            lambda _event, index=index: fired.append(index))
    env.run()
    return fired


def test_default_policy_keeps_insertion_order():
    assert _trace_order() == list(range(6))
    assert _trace_order(SchedulePolicy()) == list(range(6))


def test_policy_hook_reorders_same_time_events():
    class Reverse(SchedulePolicy):
        def tie_break(self, time, priority, eid):
            return -eid

    assert _trace_order(Reverse()) == list(reversed(range(6)))


def test_equal_keys_fall_back_to_insertion_order():
    class Constant(SchedulePolicy):
        def tie_break(self, time, priority, eid):
            return 42

    assert _trace_order(Constant()) == list(range(6))


def test_priority_dominates_any_tie_break_key():
    # A policy key can never push an urgent event behind a normal one —
    # wound messages must stay ahead of same-time normal events.
    class Hostile(SchedulePolicy):
        def tie_break(self, time, priority, eid):
            return -1 if priority == NORMAL else 10 ** 9

    env = Environment(schedule_policy=Hostile())
    fired = []
    normal = env.event()
    urgent = env.event()
    for event in (normal, urgent):
        event._ok = True
        event._value = None
    normal.callbacks.append(lambda _e: fired.append("normal"))
    urgent.callbacks.append(lambda _e: fired.append("urgent"))
    env.schedule(normal, priority=NORMAL, delay=1.0)
    env.schedule(urgent, priority=URGENT, delay=1.0)
    env.run()
    assert fired == ["urgent", "normal"]


def test_time_dominates_the_policy_key():
    class Hostile(SchedulePolicy):
        def tie_break(self, time, priority, eid):
            return -eid

    env = Environment(schedule_policy=Hostile())
    fired = []
    early = env.timeout(1.0)
    late = env.timeout(2.0)
    late.callbacks.append(lambda _e: fired.append("late"))
    early.callbacks.append(lambda _e: fired.append("early"))
    env.run()
    assert fired == ["early", "late"]


def test_policy_is_consulted_with_absolute_time_and_eid():
    seen = []

    class Spy(SchedulePolicy):
        def tie_break(self, time, priority, eid):
            seen.append((time, priority, eid))
            return 0

    env = Environment(initial_time=10.0, schedule_policy=Spy())
    env.timeout(2.5)
    assert seen == [(12.5, NORMAL, 1)]
