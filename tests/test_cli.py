"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

SMALL = ["--sites", "3", "--items", "30", "--txns", "8",
         "--threads", "2"]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_no_command_prints_help():
    code, output = run_cli()
    assert code == 2
    assert "usage" in output


def test_protocols_lists_all():
    code, output = run_cli("protocols")
    assert code == 0
    for name in ("backedge", "backedge_t", "dag_wt", "dag_t", "psl",
                 "eager", "indiscriminate"):
        assert name in output


def test_run_default_protocol():
    code, output = run_cli("run", *SMALL)
    assert code == 0
    assert "backedge" in output
    assert "serializable=True" in output


def test_run_verbose_includes_message_counts():
    code, output = run_cli("run", "--verbose", *SMALL)
    assert code == 0
    assert "messages by type" in output
    assert "committed per site" in output


def test_run_unknown_protocol_raises():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        run_cli("run", "--protocol", "bogus", *SMALL)


def test_run_indiscriminate_reports_violation_nonzero_exit():
    code, output = run_cli(
        "run", "--protocol", "indiscriminate", "--sites", "5",
        "--items", "40", "--txns", "30", "--replication", "0.6",
        "--threads", "3")
    assert "serializable=False" in output
    assert "DSG cycle" in output
    assert code == 1


def test_sweep_prints_table_and_speedup():
    code, output = run_cli(
        "sweep", "--parameter", "backedge_probability",
        "--values", "0,1", "--protocols", "backedge,psl", *SMALL)
    assert code == 0
    assert "backedge_probability" in output
    assert "speedup" in output
    assert "Abort rate" in output


def test_sweep_value_parsing_handles_ints_and_floats():
    code, output = run_cli(
        "sweep", "--parameter", "threads_per_site", "--values", "1,2",
        "--protocols", "backedge", "--sites", "3", "--items", "30",
        "--txns", "8")
    assert code == 0
    assert "threads_per_site" in output


def test_figure_table1():
    code, output = run_cli("figure", "table1")
    assert code == 0
    assert "Deadlock Timeout Interval" in output


def test_figure_fig2a_reduced():
    code, output = run_cli("figure", "fig2a", *SMALL)
    assert code == 0
    assert "backedge_probability" in output
    assert "speedup" in output


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig9z"])


def test_parameter_flags_reach_workload():
    code, output = run_cli("run", "--latency", "0.01", "--timeout",
                           "0.1", *SMALL)
    assert code == 0


def test_explore_clean_protocol(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "dag_wt",
                           "--budget", "20", "--out", trace)
    assert code == 0
    assert "0 oracle failure(s)" in output


def test_explore_expect_clean_fails_on_indiscriminate(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "indiscriminate",
                           "--budget", "200", "--out", trace,
                           "--expect-clean")
    assert code == 1
    assert "minimal reproducer" in output


def test_explore_then_replay_roundtrip(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "indiscriminate",
                           "--budget", "200", "--out", trace)
    assert code == 0  # finding a violation is the expected outcome
    assert "wrote trace" in output

    code, output = run_cli("replay", trace)
    assert code == 0
    assert "reproduced exactly" in output
    assert "acyclicity" in output


def test_explore_rejects_bad_sites_range(tmp_path):
    code, output = run_cli("explore", "--sites", "nope")
    assert code == 2
    assert "invalid --sites" in output


def test_serve_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--site", "1", "--protocol", "backedge", "--seed",
         "7", "--host", "0.0.0.0", "--base-port", "9000", "--wal",
         "/tmp/s1.wal", "--anti-entropy", "0.5", "--sites", "3"])
    assert args.command == "serve"
    assert args.site == 1
    assert args.protocol == "backedge"
    assert args.seed == 7
    assert args.host == "0.0.0.0"
    assert args.base_port == 9000
    assert args.wal == "/tmp/s1.wal"
    assert args.anti_entropy == 0.5
    assert args.n_sites == 3


def test_loadgen_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["loadgen", "--spawn", "--seed", "3", "--base-port", "7700",
         "--sites", "3", "--txns", "5", "--threads", "2",
         "--no-verify", "--json", "report.json", "--txn-timeout",
         "9.5", "--max-in-flight", "16", "--wal-dir", "/tmp/wals"])
    assert args.command == "loadgen"
    assert args.spawn
    assert args.no_verify
    assert args.json == "report.json"
    assert args.txn_timeout == 9.5
    assert args.max_in_flight == 16
    assert args.wal_dir == "/tmp/wals"
    assert args.transactions_per_thread == 5
    assert args.threads_per_site == 2


def test_loadgen_defaults_target_local_cluster():
    args = build_parser().parse_args(["loadgen"])
    assert args.protocol == "dag_wt"
    assert args.host == "127.0.0.1"
    assert args.base_port == 7450
    assert not args.spawn


def test_serve_requires_site():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve"])


def test_loadgen_spawned_cluster_end_to_end(tmp_path):
    """`repro loadgen --spawn` — the acceptance path: spins a real
    3-site cluster, drives the matched workload, prints throughput and
    latency percentiles, and exits 0 only if the oracles pass."""
    code, output = run_cli(
        "loadgen", "--spawn", "--seed", "3", "--base-port", "7560",
        "--sites", "3", "--items", "12", "--replication", "0.8",
        "--threads", "2", "--txns", "4",
        "--wal-dir", str(tmp_path),
        "--json", str(tmp_path / "report.json"))
    assert code == 0, output
    assert "throughput" in output and "committed txns/s" in output
    assert "p50" in output and "p95" in output and "p99" in output
    assert "convergent: yes" in output
    assert "serializable: yes" in output
    import json
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["convergent"] and report["serializable"]
    assert report["committed"] > 0


def test_stats_and_trace_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["stats", "--site", "1", "--check", "--json", "stats.json",
         "--base-port", "7710", "--sites", "3", "--no-obs"])
    assert args.command == "stats"
    assert args.site == 1
    assert args.check
    assert args.json == "stats.json"
    assert args.no_obs

    args = parser.parse_args(
        ["trace", "--id", "t0.3", "--files", "a.trace", "b.trace",
         "--limit", "50", "--show", "2", "--require-complete", "3",
         "--json", "trees.json"])
    assert args.command == "trace"
    assert args.id == "t0.3"
    assert args.files == ["a.trace", "b.trace"]
    assert args.limit == 50
    assert args.show == 2
    assert args.require_complete == 3

    args = parser.parse_args(["loadgen", "--no-obs"])
    assert args.no_obs


def test_loadgen_then_offline_trace_reconstruction(tmp_path):
    """The observability CLI loop: a spawned instrumented run reports
    propagation + replica-lag lines and leaves per-site span files that
    `repro trace --files` reconstructs offline (CI's smoke path)."""
    code, output = run_cli(
        "loadgen", "--spawn", "--seed", "3", "--base-port", "7565",
        "--sites", "3", "--items", "12", "--replication", "0.8",
        "--threads", "2", "--txns", "4", "--wal-dir", str(tmp_path))
    assert code == 0, output
    assert "propagation:" in output
    assert "replica lag:" in output

    trace_files = sorted(str(path)
                         for path in tmp_path.glob("*.wal.trace"))
    assert len(trace_files) == 3
    code, output = run_cli("trace", "--files", *trace_files,
                           "--require-complete", "1", "--show", "2",
                           "--json", str(tmp_path / "trees.json"))
    assert code == 0, output
    assert "complete" in output
    assert "propagation delay" in output

    # Pick one reconstructed trace id and render it alone.
    import re
    tid = re.search(r"\n(t\d+\.\d+)\s+origin", output).group(1)
    code, output = run_cli("trace", "--files", *trace_files,
                           "--id", tid)
    assert code == 0
    assert tid in output and "origin" in output

    import json
    trees = json.loads((tmp_path / "trees.json").read_text())
    assert trees["summary"]["complete"] >= 1
    assert tid in trees["delays_ms"]

    # An impossible completeness bar fails the run (CI contract).
    code, output = run_cli("trace", "--files", *trace_files,
                           "--require-complete", "999999")
    assert code == 1
    assert "FAIL" in output


def test_serve_flushes_trace_sink_on_sigterm(tmp_path):
    """`kill <pid>` is how scripted runs stop a backgrounded `repro
    serve`; the server must tear down gracefully so the deferred span
    queue reaches the `.wal.trace` file (offline reconstruction relies
    on it)."""
    import json
    import os
    import signal
    import subprocess
    import sys
    import time

    wal = tmp_path / "site0.wal"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--site", "0",
         "--sites", "1", "--items", "6", "--replication", "0.8",
         "--seed", "3", "--base-port", "7575", "--wal", str(wal)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 10
        code = None
        while time.time() < deadline:
            code, _ = run_cli(
                "loadgen", "--seed", "3", "--base-port", "7575",
                "--sites", "1", "--items", "6", "--replication", "0.8",
                "--threads", "1", "--txns", "3")
            if code == 0:
                break
            time.sleep(0.25)
        assert code == 0
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait()

    trace_path = tmp_path / "site0.wal.trace"
    assert trace_path.exists()
    spans = [json.loads(line)
             for line in trace_path.read_text().splitlines()]
    assert any(span["event"] == "committed" for span in spans)


def test_metrics_monitor_top_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["metrics", "--site", "1", "--check", "--out", "m.prom",
         "--base-port", "7750", "--metrics-base-port", "9750"])
    assert args.command == "metrics"
    assert args.site == 1
    assert args.check
    assert args.out == "m.prom"
    assert args.metrics_base_port == 9750

    args = parser.parse_args(
        ["monitor", "--interval", "0.2", "--duration", "3",
         "--alerts", "alerts.jsonl", "--check", "--lag-warn", "2",
         "--lag-slo", "8", "--stuck-deadline", "1.5",
         "--trace-limit", "500", "--no-convergence",
         "--json", "summary.json"])
    assert args.command == "monitor"
    assert args.interval == 0.2
    assert args.duration == 3.0
    assert args.alerts == "alerts.jsonl"
    assert args.check
    assert args.lag_warn == 2
    assert args.lag_slo == 8
    assert args.stuck_deadline == 1.5
    assert args.trace_limit == 500
    assert args.no_convergence
    assert args.json == "summary.json"

    args = parser.parse_args(["top", "--once", "--interval", "0.4",
                              "--iterations", "2"])
    assert args.command == "top"
    assert args.once
    assert args.interval == 0.4
    assert args.iterations == 2

    args = parser.parse_args(["loadgen", "--monitor"])
    assert args.monitor


def test_monitoring_commands_against_live_cluster(tmp_path):
    """The monitoring plane end to end over real server processes:
    `metrics --check` validates every exposition, `monitor --check`
    exits 0 while the cluster is healthy, `top --once` renders a
    non-TTY snapshot — then one member is killed and `monitor --check`
    flips to a non-zero exit with a critical alert naming the dead
    site (the acceptance scenario)."""
    import json
    import os
    import signal
    import subprocess
    import sys
    import time

    cluster = ["--seed", "3", "--base-port", "7750", "--sites", "3",
               "--items", "12", "--replication", "0.8"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    procs = []
    try:
        for site in range(3):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--site", str(site),
                 "--wal", str(tmp_path / "s{}.wal".format(site))]
                + cluster, env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL))
        deadline = time.time() + 10
        code = None
        while time.time() < deadline:
            code, _ = run_cli("loadgen", "--threads", "1", "--txns",
                              "2", *cluster)
            if code == 0:
                break
            time.sleep(0.25)
        assert code == 0

        code, output = run_cli("metrics", "--check", *cluster)
        assert code == 0, output
        assert "all 3 exposition(s) format-valid" in output
        assert "repro_obs_enabled" in output

        alerts = tmp_path / "alerts.jsonl"
        code, output = run_cli(
            "monitor", "--duration", "1.5", "--interval", "0.3",
            "--check", "--alerts", str(alerts), *cluster)
        assert code == 0, output
        assert "0 critical" in output

        code, output = run_cli("top", "--once", *cluster)
        assert code == 0, output
        assert "commit/s" in output
        assert "s0" in output and "up" in output

        # Single-shot machine-readable snapshot.
        code, output = run_cli("top", "--json", *cluster)
        assert code == 0, output
        model = json.loads(output)
        assert len(model["rows"]) == 3
        assert all(row["up"] for row in model["rows"])
        assert {"site", "lag", "committed", "queue"} <= \
            set(model["rows"][0])

        # Kill one member abruptly; the watchdog must name it.
        procs[2].send_signal(signal.SIGKILL)
        procs[2].wait(timeout=10)
        code, output = run_cli(
            "monitor", "--duration", "2.5", "--interval", "0.3",
            "--check", "--alerts", str(alerts), *cluster)
        assert code == 1, output
        assert "FAIL" in output
        assert "[CRITICAL]" in output and "s2" in output

        records = [json.loads(line)
                   for line in alerts.read_text().splitlines()]
        assert any(record["severity"] == "critical" and
                   record["site"] == 2 for record in records)

        code, output = run_cli("top", "--once", *cluster)
        assert code == 0, output
        assert "DOWN" in output
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def test_loadgen_no_obs_disables_telemetry(tmp_path):
    code, output = run_cli(
        "loadgen", "--spawn", "--no-obs", "--seed", "3",
        "--base-port", "7570", "--sites", "3", "--items", "12",
        "--replication", "0.8", "--threads", "2", "--txns", "4",
        "--wal-dir", str(tmp_path))
    assert code == 0, output
    assert "propagation:" not in output
    assert "replica lag:" not in output
    assert list(tmp_path.glob("*.trace")) == []


def test_dump_and_postmortem_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["dump", "--site", "1", "--dir", "/tmp/bundles",
         "--trigger", "drill", "--base-port", "7450", "--sites", "3"])
    assert args.command == "dump"
    assert args.site == 1
    assert args.dir == "/tmp/bundles"
    assert args.trigger == "drill"

    args = parser.parse_args(["dump"])
    assert args.site is None
    assert args.dir is None
    assert args.trigger == "manual"

    args = parser.parse_args(
        ["postmortem", "bundles/", "extra.jsonl", "--check",
         "--injections", "inj.json", "--json", "analysis.json",
         "--export-chrome", "incident.trace.json",
         "--timeline-limit", "25"])
    assert args.command == "postmortem"
    assert args.bundles == ["bundles/", "extra.jsonl"]
    assert args.check
    assert args.injections == "inj.json"
    assert args.json == "analysis.json"
    assert args.export_chrome == "incident.trace.json"
    assert args.timeline_limit == 25

    args = parser.parse_args(
        ["monitor", "--dump-dir", "/tmp/bundles",
         "--alerts-max-bytes", "65536", "--alerts-backups", "2"])
    assert args.dump_dir == "/tmp/bundles"
    assert args.alerts_max_bytes == 65536
    assert args.alerts_backups == 2

    args = parser.parse_args(
        ["serve", "--site", "0", "--dump-dir", "/tmp/bundles"])
    assert args.dump_dir == "/tmp/bundles"

    args = parser.parse_args(["top", "--json"])
    assert args.json

    args = parser.parse_args(["chaos", "--bundle-dir", "/tmp/b"])
    assert args.bundle_dir == "/tmp/b"


def test_postmortem_cli_offline_roundtrip(tmp_path):
    """`repro postmortem` over crafted bundles: report + schema check
    + JSON + Chrome export, all offline (no cluster)."""
    import json

    from repro.obs.flight import FlightRecorder

    recorder = FlightRecorder(0, cluster={"n_sites": 2})
    recorder.record_event("alert", rule="site-down",
                          severity="critical", alert_site=1,
                          message="site s1 unreachable")
    recorder.dump("drill", out_dir=str(tmp_path))

    analysis_path = tmp_path / "analysis.json"
    chrome_path = tmp_path / "incident.trace.json"
    code, output = run_cli(
        "postmortem", str(tmp_path), "--check",
        "--json", str(analysis_path),
        "--export-chrome", str(chrome_path))
    assert code == 0, output
    assert "all 1 bundle(s) schema-valid" in output
    assert "postmortem: 1 bundle(s) from s0 (missing: s1)" in output
    assert "fault localization:" in output
    assert "s1 dark" in output

    analysis = json.loads(analysis_path.read_text())
    assert analysis["missing_sites"] == [1]
    assert analysis["findings"][0]["kind"] == "site-down"
    assert not any(key.startswith("_") for key in analysis)
    document = json.loads(chrome_path.read_text())
    assert any(event.get("ph") == "i"
               for event in document["traceEvents"])

    # A damaged bundle fails --check with a non-zero exit.
    (tmp_path / "flight-s1-001.jsonl").write_text("not json\n")
    code, output = run_cli("postmortem", str(tmp_path), "--check")
    assert code == 1
    assert "WARN:" in output


def test_postmortem_cli_no_bundles_is_an_error(tmp_path):
    code, output = run_cli("postmortem", str(tmp_path / "empty"))
    assert code == 1
    assert "no loadable bundles" in output


def test_chaos_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["chaos", "--protocol", "dag_wt", "--seed", "3",
         "--base-port", "7700", "--fault-profile", "crash",
         "--fault-seed", "9", "--regression", "forward-before-wal",
         "--regression-site", "1", "--anti-entropy", "0.2",
         "--quiesce-timeout", "12", "--shrink",
         "--max-shrunk-events", "3", "--expect-fail",
         "--out", "report.json", "--save-script", "script.json",
         "--injection-log", "inj.json", "--sites", "3"])
    assert args.command == "chaos"
    assert args.fault_profile == "crash"
    assert args.fault_seed == 9
    assert args.regression == "forward-before-wal"
    assert args.regression_site == 1
    assert args.anti_entropy == 0.2
    assert args.quiesce_timeout == 12.0
    assert args.shrink and args.expect_fail
    assert args.max_shrunk_events == 3
    assert args.out == "report.json"
    assert args.save_script == "script.json"
    assert args.injection_log == "inj.json"

    args = parser.parse_args(
        ["chaos", "--scenario", "bad.json", "--no-monitor",
         "--no-catchup"])
    assert args.scenario == "bad.json"
    assert args.no_monitor and args.no_catchup

    # A profile and a scenario file are mutually exclusive sources.
    # (argparse only flags the conflict for non-default values.)
    with pytest.raises(SystemExit):
        parser.parse_args(["chaos", "--fault-profile", "crash",
                           "--scenario", "bad.json"])


def test_chaos_sweep_args_round_trip():
    parser = build_parser()
    args = parser.parse_args(
        ["chaos-sweep", "--protocols", "dag_wt,backedge",
         "--seeds", "3,5", "--profiles", "calm,jitter",
         "--parallel", "4", "--base-port", "7900",
         "--port-stride", "8", "--fault-seed", "2",
         "--cell-timeout", "90", "--out", "sweep.json"])
    assert args.command == "chaos-sweep"
    assert args.protocols == "dag_wt,backedge"
    assert args.seeds == "3,5"
    assert args.profiles == "calm,jitter"
    assert args.parallel == 4
    assert args.port_stride == 8
    assert args.fault_seed == 2
    assert args.cell_timeout == 90.0
    assert args.out == "sweep.json"


def test_chaos_cli_jitter_run_green(tmp_path):
    """A healthy seeded jitter run through the CLI: exit 0, green
    report artifact, replayable script, canonical injection log."""
    import json

    report_path = tmp_path / "report.json"
    script_path = tmp_path / "script.json"
    log_path = tmp_path / "injections.json"
    code, output = run_cli(
        "chaos", "--protocol", "dag_wt", "--seed", "3",
        "--base-port", "7700", "--fault-profile", "jitter",
        "--wal-dir", str(tmp_path / "wal"),
        "--sites", "3", "--items", "12", "--replication", "0.8",
        "--threads", "2", "--txns", "6", "--read-txn", "0.3",
        "--out", str(report_path), "--save-script", str(script_path),
        "--injection-log", str(log_path))
    assert code == 0, output
    assert "OK" in output or "ok" in output
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["committed"] > 0
    assert json.loads(log_path.read_text())  # jitter hit the wire

    from repro.chaos.controller import ChaosScenario
    saved = ChaosScenario.load(str(script_path))
    assert saved.spec.protocol == "dag_wt"
    assert saved.plan.link_events()


def test_chaos_cli_known_bad_fixture_expect_fail(tmp_path):
    """The committed known-bad fixture must trip the oracles, which
    with --expect-fail is the *passing* outcome (exit 0)."""
    code, output = run_cli(
        "chaos", "--scenario", "tests/data/chaos_known_bad.json",
        "--wal-dir", str(tmp_path / "wal"),
        "--out", str(tmp_path / "report.json"))
    assert code == 1, output  # straight run: the regression is caught

    code, output = run_cli(
        "chaos", "--scenario", "tests/data/chaos_known_bad.json",
        "--wal-dir", str(tmp_path / "wal2"), "--expect-fail")
    assert code == 0, output
