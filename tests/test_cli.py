"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

SMALL = ["--sites", "3", "--items", "30", "--txns", "8",
         "--threads", "2"]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_no_command_prints_help():
    code, output = run_cli()
    assert code == 2
    assert "usage" in output


def test_protocols_lists_all():
    code, output = run_cli("protocols")
    assert code == 0
    for name in ("backedge", "backedge_t", "dag_wt", "dag_t", "psl",
                 "eager", "indiscriminate"):
        assert name in output


def test_run_default_protocol():
    code, output = run_cli("run", *SMALL)
    assert code == 0
    assert "backedge" in output
    assert "serializable=True" in output


def test_run_verbose_includes_message_counts():
    code, output = run_cli("run", "--verbose", *SMALL)
    assert code == 0
    assert "messages by type" in output
    assert "committed per site" in output


def test_run_unknown_protocol_raises():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        run_cli("run", "--protocol", "bogus", *SMALL)


def test_run_indiscriminate_reports_violation_nonzero_exit():
    code, output = run_cli(
        "run", "--protocol", "indiscriminate", "--sites", "5",
        "--items", "40", "--txns", "30", "--replication", "0.6",
        "--threads", "3")
    assert "serializable=False" in output
    assert "DSG cycle" in output
    assert code == 1


def test_sweep_prints_table_and_speedup():
    code, output = run_cli(
        "sweep", "--parameter", "backedge_probability",
        "--values", "0,1", "--protocols", "backedge,psl", *SMALL)
    assert code == 0
    assert "backedge_probability" in output
    assert "speedup" in output
    assert "Abort rate" in output


def test_sweep_value_parsing_handles_ints_and_floats():
    code, output = run_cli(
        "sweep", "--parameter", "threads_per_site", "--values", "1,2",
        "--protocols", "backedge", "--sites", "3", "--items", "30",
        "--txns", "8")
    assert code == 0
    assert "threads_per_site" in output


def test_figure_table1():
    code, output = run_cli("figure", "table1")
    assert code == 0
    assert "Deadlock Timeout Interval" in output


def test_figure_fig2a_reduced():
    code, output = run_cli("figure", "fig2a", *SMALL)
    assert code == 0
    assert "backedge_probability" in output
    assert "speedup" in output


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig9z"])


def test_parameter_flags_reach_workload():
    code, output = run_cli("run", "--latency", "0.01", "--timeout",
                           "0.1", *SMALL)
    assert code == 0


def test_explore_clean_protocol(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "dag_wt",
                           "--budget", "20", "--out", trace)
    assert code == 0
    assert "0 oracle failure(s)" in output


def test_explore_expect_clean_fails_on_indiscriminate(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "indiscriminate",
                           "--budget", "200", "--out", trace,
                           "--expect-clean")
    assert code == 1
    assert "minimal reproducer" in output


def test_explore_then_replay_roundtrip(tmp_path):
    trace = str(tmp_path / "trace.json")
    code, output = run_cli("explore", "--protocol", "indiscriminate",
                           "--budget", "200", "--out", trace)
    assert code == 0  # finding a violation is the expected outcome
    assert "wrote trace" in output

    code, output = run_cli("replay", trace)
    assert code == 0
    assert "reproduced exactly" in output
    assert "acyclicity" in output


def test_explore_rejects_bad_sites_range(tmp_path):
    code, output = run_cli("explore", "--sites", "nope")
    assert code == 2
    assert "invalid --sites" in output
