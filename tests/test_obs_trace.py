"""Unit tests for trace-id derivation, span sinks, and propagation-tree
reconstruction (:mod:`repro.obs.trace` / :mod:`repro.obs.reconstruct`).

All synthetic — no sockets.  The live end-to-end invariants (stamps on
real wire frames, surviving restart and catch-up) are covered in
``test_live_cluster.py``.
"""

import json

from repro.network.message import Message, MessageType
from repro.obs.reconstruct import (
    format_tree,
    propagation_summary,
    reconstruct,
)
from repro.obs.trace import (
    TraceSink,
    gid_of_trace,
    load_trace_file,
    message_trace_ids,
    stamp_message_obj,
    trace_id,
    traces_of_obj,
)
from repro.types import GlobalTransactionId


def gid(site, seq):
    return GlobalTransactionId(site, seq)


# ----------------------------------------------------------------------
# Trace ids
# ----------------------------------------------------------------------

def test_trace_id_roundtrip_and_determinism():
    assert trace_id(gid(2, 7)) == "t2.7"
    assert gid_of_trace("t2.7") == gid(2, 7)
    # Same gid -> same id, always; no state involved.
    assert trace_id(gid(2, 7)) == trace_id(gid(2, 7))


def test_gid_of_trace_rejects_malformed():
    for bad in ("x2.7", "t2", "t.7", "ta.b", "", None, 3):
        assert gid_of_trace(bad) is None


def test_message_trace_ids_gid_payloads():
    secondary = Message(MessageType.SECONDARY, src=0, dst=1,
                        payload={"gid": gid(0, 3), "writes": {}})
    assert message_trace_ids(secondary) == ["t0.3"]


def test_message_trace_ids_catchup_reply_writers_lineage():
    reply = Message(MessageType.CATCHUP_REPLY, src=0, dst=1, payload={
        "items": {
            5: {"version": 2, "writers": [gid(0, 1), gid(0, 4)]},
            9: {"version": 1, "writers": [gid(0, 4)]},  # deduped
        }})
    assert message_trace_ids(reply) == ["t0.1", "t0.4"]


def test_message_trace_ids_control_traffic_is_untraced():
    request = Message(MessageType.CATCHUP_REQUEST, src=1, dst=0,
                      payload={"versions": {}})
    assert message_trace_ids(request) == []


def test_stamp_and_read_back_wire_object():
    secondary = Message(MessageType.SECONDARY, src=0, dst=1,
                        payload={"gid": gid(0, 3), "writes": {}})
    obj = {"type": "secondary", "payload": {}}
    stamp_message_obj(obj, secondary)
    assert obj["trace"] == "t0.3"
    assert "traces" not in obj
    assert traces_of_obj(obj) == ["t0.3"]

    reply = Message(MessageType.CATCHUP_REPLY, src=0, dst=1, payload={
        "items": {5: {"version": 1, "writers": [gid(0, 1), gid(1, 2)]}}})
    obj = stamp_message_obj({}, reply)
    assert obj["trace"] == "t0.1"
    assert obj["traces"] == ["t0.1", "t1.2"]
    assert traces_of_obj(obj) == ["t0.1", "t1.2"]

    untraced = Message(MessageType.CATCHUP_REQUEST, src=1, dst=0,
                       payload={})
    assert stamp_message_obj({}, untraced) == {}
    assert traces_of_obj({}) == []


# ----------------------------------------------------------------------
# TraceSink
# ----------------------------------------------------------------------

def test_sink_records_and_filters_spans():
    sink = TraceSink(site_id=1)
    sink.emit("received", gid=gid(0, 3), peer=0, type="secondary")
    sink.emit("applied", gid=gid(0, 3))
    sink.emit("received", trace="t2.9", peer=2)
    sink.emit("journaled", traces=["t0.3", "t2.9"])

    assert len(sink) == 4
    spans = sink.spans(trace="t0.3")
    assert [span["event"] for span in spans] == \
        ["received", "applied", "journaled"]
    assert spans[0]["gid"] == [0, 3]
    assert spans[0]["site"] == 1
    assert all("t" in span for span in spans)
    assert len(sink.spans(trace="t2.9")) == 2
    assert sink.spans(limit=2)[-1]["event"] == "journaled"


def test_sink_ring_keeps_tail_and_counts_dropped():
    sink = TraceSink(site_id=0, capacity=3)
    for seq in range(5):
        sink.emit("submitted", gid=gid(0, seq))
    assert len(sink) == 3
    assert sink.dropped == 2
    assert [span["gid"][1] for span in sink.spans()] == [2, 3, 4]


def test_sink_jsonl_file_and_torn_tail(tmp_path):
    path = str(tmp_path / "site0.trace")
    sink = TraceSink(site_id=0, path=path)
    sink.emit("submitted", gid=gid(0, 1))
    sink.emit("committed", gid=gid(0, 1), expected=[1, 2])
    sink.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t": 1.0, "site": 0, "ev')  # crashed writer

    spans = load_trace_file(path)
    assert [span["event"] for span in spans] == ["submitted",
                                                 "committed"]
    assert spans[1]["expected"] == [1, 2]
    # every line that did load is valid JSON from the sink
    with open(path, "r", encoding="utf-8") as handle:
        assert json.loads(handle.readline())["trace"] == "t0.1"


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------

def synthetic_spans():
    """t0.1 fully propagates to s1+s2 (s2 via catch-up); t0.2 never
    reaches s2; t1.1 is read-only (no expected replicas)."""
    return [
        {"t": 1.00, "site": 0, "event": "submitted", "trace": "t0.1"},
        {"t": 1.01, "site": 0, "event": "committed", "trace": "t0.1",
         "expected": [1, 2]},
        {"t": 1.02, "site": 0, "event": "forwarded", "trace": "t0.1"},
        {"t": 1.03, "site": 1, "event": "received", "trace": "t0.1"},
        {"t": 1.04, "site": 1, "event": "journaled", "trace": "t0.1"},
        {"t": 1.05, "site": 1, "event": "applied", "trace": "t0.1"},
        # s2 missed the forward; a catch-up reply carried the tail.
        {"t": 1.50, "site": 2, "event": "caught-up",
         "traces": ["t0.1"]},
        {"t": 2.00, "site": 0, "event": "committed", "trace": "t0.2",
         "expected": [1, 2]},
        {"t": 2.02, "site": 1, "event": "received", "trace": "t0.2"},
        {"t": 2.03, "site": 1, "event": "applied", "trace": "t0.2"},
        {"t": 3.00, "site": 1, "event": "committed", "trace": "t1.1",
         "expected": []},
    ]


def test_reconstruct_builds_complete_and_incomplete_trees():
    trees = reconstruct(synthetic_spans())
    assert sorted(trees) == ["t0.1", "t0.2", "t1.1"]

    done = trees["t0.1"]
    assert done.origin == 0
    assert done.expected == [1, 2]
    assert done.applied_sites == [1, 2]  # caught-up counts as applied
    assert done.complete
    assert done.delay == 1.50 - 1.01  # last expected apply wins
    assert done.hop_delay(1) == 1.05 - 1.01
    assert done.hops[1]["received"] == 1.03

    partial = trees["t0.2"]
    assert not partial.complete
    assert partial.delay is None
    assert partial.applied_sites == [1]

    readonly = trees["t1.1"]
    assert readonly.expected == []
    assert not readonly.complete


def test_reconstruct_keeps_first_commit_and_earliest_hop():
    """A re-forward after a crash can duplicate received/applied spans
    and never re-emits the commit; the tree keeps the first commit and
    the earliest per-site hop mark."""
    spans = [
        {"t": 1.0, "site": 0, "event": "committed", "trace": "t0.9",
         "expected": [1]},
        {"t": 1.2, "site": 1, "event": "received", "trace": "t0.9"},
        {"t": 1.3, "site": 1, "event": "applied", "trace": "t0.9"},
        # duplicate delivery after a sender restart
        {"t": 5.0, "site": 1, "event": "received", "trace": "t0.9"},
        {"t": 6.0, "site": 0, "event": "committed", "trace": "t0.9",
         "expected": [1, 2]},
    ]
    tree = reconstruct(spans)["t0.9"]
    assert tree.committed_t == 1.0
    assert tree.expected == [1]
    assert tree.hops[1]["received"] == 1.2
    assert tree.delay == 1.3 - 1.0


def test_propagation_summary_counts_and_percentiles():
    summary = propagation_summary(reconstruct(synthetic_spans()))
    assert summary["count"] == 3
    assert summary["propagating"] == 2  # t1.1 has no fan-out
    assert summary["complete"] == 1
    assert summary["p50"] == summary["max"] == 1.50 - 1.01
    empty = propagation_summary({})
    assert empty["count"] == 0 and empty["p95"] == 0.0


def test_format_tree_renders_hops_and_verdict():
    trees = reconstruct(synthetic_spans())
    text = format_tree(trees["t0.1"])
    assert "t0.1" in text and "origin s0" in text
    assert "expects s1,s2" in text
    assert "s1: received" in text and "applied" in text
    assert "caught-up" in text
    assert "complete, propagation delay" in text

    text = format_tree(trees["t0.2"])
    assert "incomplete (missing s2)" in text

    headless = reconstruct([{"t": 1.0, "site": 1, "event": "received",
                             "trace": "t9.9"}])["t9.9"]
    assert "origin commit not captured" in format_tree(headless)
