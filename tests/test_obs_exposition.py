"""Prometheus exposition: golden format, grammar, and the wire/HTTP
serving paths.

The golden test pins the exact rendered text for a representative
snapshot (counters with per-peer folding, gauge + high-water, an
``le``-bucket histogram with overflow) — any byte-level drift in the
exposition format is a contract change for scrapers and must show up
as a diff against ``tests/data/exposition_golden.txt``.

The live tests cover both serving paths of the same renderer: the
``metrics`` wire request (including the empty-but-valid exposition of
a ``--no-obs`` member) and the optional plain-HTTP scrape endpoint.
"""

import asyncio
import pathlib

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.obs.exposition import (
    CONTENT_TYPE,
    render_exposition,
    validate_exposition,
)
from repro.obs.registry import MetricsRegistry
from repro.workload.params import WorkloadParams

GOLDEN = pathlib.Path(__file__).parent / "data" / \
    "exposition_golden.txt"

#: Hand-built snapshot exercising every rendering rule: counter
#: ``_total`` naming, per-peer name folding, gauge + high-water pair,
#: histogram ``_bucket``/``_sum``/``_count`` with ``+Inf``, and a
#: non-trivial bucket order (16 < 1024 numerically but not
#: lexicographically).
SNAPSHOT = {
    "enabled": True,
    "counters": {
        "net.resent.s1": 3,
        "net.resent.s2": 5,
        "txn.committed": 42,
    },
    "gauges": {
        "server.apply_queue": {"value": 2, "high_water": 7},
    },
    "histograms": {
        "net.batch_size": {
            "buckets": [1.0, 16.0, 1024.0],
            "counts": [5, 2, 1, 1],
            "count": 9,
            "sum": 1300.0,
            "min": 1.0,
            "max": 2000.0,
            "p50": 1.0,
            "p95": 2000.0,
            "p99": 2000.0,
        },
    },
}


def test_exposition_matches_golden_file():
    text = render_exposition(SNAPSHOT, labels={"site": "0"})
    assert text == GOLDEN.read_text(encoding="utf-8")
    validate_exposition(text)


def test_exposition_is_deterministic():
    first = render_exposition(SNAPSHOT, labels={"site": "0"})
    second = render_exposition(SNAPSHOT, labels={"site": "0"})
    assert first == second


def test_histogram_buckets_stay_in_edge_order():
    text = render_exposition(SNAPSHOT)
    lines = text.splitlines()
    bucket_lines = [line for line in lines
                    if line.startswith("repro_net_batch_size_bucket")]
    les = [line.split('le="')[1].split('"')[0]
           for line in bucket_lines]
    assert les == ["1", "16", "1024", "+Inf"]
    # Cumulative counts are monotone and +Inf equals _count.
    values = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert values == sorted(values)
    assert values[-1] == 9


def test_counters_gain_total_and_peer_labels_fold():
    text = render_exposition(SNAPSHOT, labels={"site": "0"})
    assert '# TYPE repro_txn_committed_total counter' in text
    assert 'repro_txn_committed_total{site="0"} 42' in text
    # net.resent.s1 / .s2 fold into ONE family with a peer label.
    assert "repro_net_resent_s1" not in text
    assert 'repro_net_resent_total{peer="1",site="0"} 3' in text
    assert 'repro_net_resent_total{peer="2",site="0"} 5' in text


def test_gauges_render_value_and_high_water_families():
    text = render_exposition(SNAPSHOT)
    assert "# TYPE repro_server_apply_queue gauge" in text
    assert "repro_server_apply_queue 2" in text
    assert "# TYPE repro_server_apply_queue_high_water gauge" in text
    assert "repro_server_apply_queue_high_water 7" in text


def test_disabled_registry_renders_empty_but_valid():
    snapshot = MetricsRegistry(enabled=False).snapshot()
    text = render_exposition(snapshot, labels={"site": "2"})
    validate_exposition(text)
    assert 'repro_obs_enabled{site="2"} 0' in text
    # Nothing but the canary family.
    samples = [line for line in text.splitlines()
               if not line.startswith("#")]
    assert samples == ['repro_obs_enabled{site="2"} 0']


def test_label_values_are_escaped():
    text = render_exposition(
        {"enabled": True, "counters": {"c": 1}},
        labels={"tag": 'a"b\\c\nd'})
    assert 'tag="a\\"b\\\\c\\nd"' in text
    validate_exposition(text)


def test_live_registry_snapshot_round_trips():
    registry = MetricsRegistry()
    registry.counter("txn.committed").inc(7)
    registry.gauge("server.apply_queue").set(3)
    hist = registry.histogram("wal.sync_s")
    for value in (0.0001, 0.002, 0.05):
        hist.observe(value)
    text = render_exposition(registry.snapshot(),
                             labels={"site": "1"})
    validate_exposition(text)
    assert 'repro_txn_committed_total{site="1"} 7' in text
    assert 'repro_wal_sync_s_count{site="1"} 3' in text


def test_validate_rejects_malformed_expositions():
    with pytest.raises(ValueError, match="newline"):
        validate_exposition("repro_x 1")
    with pytest.raises(ValueError, match="TYPE"):
        validate_exposition("repro_x 1\n")
    with pytest.raises(ValueError, match="malformed sample"):
        validate_exposition("# TYPE repro_x gauge\n"
                            "repro_x{bad-label=\"1\"} 1\n")
    with pytest.raises(ValueError, match="non-numeric"):
        validate_exposition("# TYPE repro_x gauge\nrepro_x one\n")
    with pytest.raises(ValueError, match="blank"):
        validate_exposition("# TYPE repro_x gauge\n\nrepro_x 1\n")
    with pytest.raises(ValueError, match="\\+Inf"):
        validate_exposition(
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 4\n")


# ----------------------------------------------------------------------
# Serving paths: metrics wire request + HTTP scrape endpoint
# ----------------------------------------------------------------------

PARAMS = WorkloadParams(n_sites=2, n_items=6,
                        replication_probability=0.8,
                        threads_per_site=1, transactions_per_thread=2,
                        deadlock_timeout=0.05)


def test_metrics_wire_request_and_no_obs_member():
    """An instrumented member serves a full exposition over the wire;
    a ``--no-obs`` member serves the empty-but-valid one."""
    obs_spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                           base_port=7720, obs=True)
    plain_spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                             base_port=7720, obs=False)

    async def scenario():
        # Mixed cluster: obs on site 0, off on site 1 (per-process
        # knob; fingerprints agree).
        servers = [SiteServer(obs_spec, 0), SiteServer(plain_spec, 1)]
        for server in servers:
            await server.start()
        client = ClusterClient(obs_spec, timeout=5.0)
        try:
            await client.wait_ready()
            return (await client.metrics(0), await client.metrics(1))
        finally:
            await client.close()
            for server in servers:
                await server.stop()

    instrumented, plain = asyncio.run(scenario())
    for response in (instrumented, plain):
        assert response["ok"]
        assert response["content_type"] == CONTENT_TYPE
        validate_exposition(response["exposition"])
    assert instrumented["obs"] is True
    assert 'repro_obs_enabled{site="0"} 1' in \
        instrumented["exposition"]
    assert "repro_server_frames_decoded_total" in \
        instrumented["exposition"]
    assert plain["obs"] is False
    assert 'repro_obs_enabled{site="1"} 0' in plain["exposition"]
    assert "repro_server_frames_decoded_total" not in \
        plain["exposition"]


def test_http_scrape_endpoint():
    spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                       base_port=7725, metrics_base_port=9725)

    async def http_get(port, target, method="GET"):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       port)
        writer.write("{} {} HTTP/1.0\r\nHost: x\r\n\r\n".format(
            method, target).encode("ascii"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 5.0)
        writer.close()
        head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
        status = int(head.splitlines()[0].split(" ")[1])
        headers = {line.split(":", 1)[0].lower():
                   line.split(":", 1)[1].strip()
                   for line in head.splitlines()[1:] if ":" in line}
        return status, headers, body

    async def scenario():
        servers = [SiteServer(spec, site)
                   for site in range(PARAMS.n_sites)]
        for server in servers:
            await server.start()
        try:
            results = {}
            results["metrics"] = await http_get(9725, "/metrics")
            results["root"] = await http_get(9726, "/")
            results["missing"] = await http_get(9725, "/nope")
            results["post"] = await http_get(9725, "/metrics",
                                             method="POST")
            return results
        finally:
            for server in servers:
                await server.stop()

    results = asyncio.run(scenario())
    status, headers, body = results["metrics"]
    assert status == 200
    assert headers["content-type"] == CONTENT_TYPE
    validate_exposition(body)
    assert 'repro_obs_enabled{site="0"} 1' in body
    status, _, body = results["root"]
    assert status == 200
    assert 'repro_obs_enabled{site="1"} 1' in body
    assert results["missing"][0] == 404
    assert results["post"][0] == 405


def test_no_scrape_listener_without_metrics_base_port():
    spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                       base_port=7730)
    assert spec.metrics_address(0) is None

    async def scenario():
        server = SiteServer(spec, 0)
        await server.start()
        try:
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", 7730 + 2000)
        finally:
            await server.stop()

    asyncio.run(scenario())
