"""Serializability battery for the conflict-aware parallel apply
scheduler (``DagWtProtocol.apply_workers > 1``).

The scheduler promises exactly two things beyond the serial queue
processor it replaces:

* updates whose write sets intersect commit — and forward — in FIFO
  arrival order (so per-item write sequences are identical to the
  serial processor's), and
* updates whose write sets are disjoint may commit in either order,
  which is harmless because they commute.

Together those imply the parallel runs must produce byte-identical
final states to a one-worker run of the same schedule, stay replica-
convergent, and keep the merged DSG acyclic.  This file checks all
three, over crafted conflict patterns and 200 seeded random schedules
(including the BackEdge subclass, whose SPECIAL control messages take
the scheduler's exclusive-barrier path).
"""

import random

import pytest

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence, system_state
from repro.harness.serializability import check_serializable
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def fanout_placement(n_sites=4, n_items=6, rng=None):
    """All primaries at s0, random replica subsets of the other sites —
    the copy graph's edges all leave s0, so it is always a DAG."""
    rng = rng or random.Random(0)
    placement = DataPlacement(n_sites)
    others = list(range(1, n_sites))
    for i in range(n_items):
        count = rng.randrange(1, n_sites)
        placement.add_item("i{}".format(i), primary=0,
                           replicas=sorted(rng.sample(others, count)))
    return placement


def layered_placement(n_sites=4, n_items=6, rng=None):
    """Primaries spread over the lower half, replicas strictly at
    higher-numbered sites: every copy-graph edge goes low -> high, so
    the graph is a DAG but the propagation tree has interior sites
    (forwarding through a site exercises commit-then-forward order)."""
    rng = rng or random.Random(0)
    placement = DataPlacement(n_sites)
    for i in range(n_items):
        primary = rng.randrange(0, max(1, n_sites - 2))
        above = list(range(primary + 1, n_sites))
        count = rng.randrange(1, len(above) + 1)
        placement.add_item("i{}".format(i), primary=primary,
                           replicas=sorted(rng.sample(above, count)))
    return placement


def run_schedule(placement, specs, workers, protocol="dag_wt",
                 gap=0.03, until=5.0):
    """Run ``specs`` (one client each, staggered ``gap`` apart, in
    order) and return (system, outcomes) after quiescence."""
    env, system, proto = make_system(placement, protocol)
    proto.apply_workers = workers
    outcomes = []
    for n, txn_spec in enumerate(specs):
        run_client(env, proto, txn_spec, n * gap, outcomes)
    env.run(until=until)
    return system, outcomes


def assert_oracles(system, outcomes, n_expected):
    assert len(outcomes) == n_expected
    assert all(status == "committed" for _g, status, _t in outcomes)
    check_serializable(histories(system))
    check_convergence(system)
    assert no_locks_leaked(system)


# ----------------------------------------------------------------------
# Crafted conflict patterns
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [2, 4, 8])
def test_fully_conflicting_updates_stay_fifo(workers):
    """Every update writes the same item: the scheduler must degrade to
    pure FIFO, and the final state must match the serial processor's
    exactly (same last writer, same version count at every replica)."""
    placement = fanout_placement(rng=random.Random(1))
    specs = [spec(0, seq, ("w", "i0"), ("w", "i1"))
             for seq in range(1, 9)]
    serial, _ = run_schedule(placement, specs, workers=1)
    system, outcomes = run_schedule(placement, specs, workers=workers)
    assert_oracles(system, outcomes, len(specs))
    assert system_state(system) == system_state(serial)


@pytest.mark.parametrize("workers", [2, 4])
def test_disjoint_updates_commute(workers):
    """Each update writes its own item: all may run concurrently, and
    the final state must still equal the serial run's (commutativity is
    only real if the states agree)."""
    placement = fanout_placement(n_items=8, rng=random.Random(2))
    specs = [spec(0, seq, ("w", "i{}".format(seq - 1)))
             for seq in range(1, 9)]
    serial, _ = run_schedule(placement, specs, workers=1)
    system, outcomes = run_schedule(placement, specs, workers=workers)
    assert_oracles(system, outcomes, len(specs))
    assert system_state(system) == system_state(serial)


def test_overlap_chains_preserve_per_item_order():
    """Write sets overlap pairwise in a chain (T1:{a,b} T2:{b,c}
    T3:{c,d} ...): each adjacent pair conflicts, so the whole chain is
    forced into arrival order even though distant members are
    disjoint."""
    placement = fanout_placement(n_items=9, rng=random.Random(3))
    specs = [spec(0, seq, ("w", "i{}".format(seq - 1)),
                  ("w", "i{}".format(seq)))
             for seq in range(1, 9)]
    serial, _ = run_schedule(placement, specs, workers=1)
    system, outcomes = run_schedule(placement, specs, workers=4)
    assert_oracles(system, outcomes, len(specs))
    assert system_state(system) == system_state(serial)


def test_interior_site_forwards_in_commit_order():
    """Conflicting updates routed through an interior tree site must
    reach the leaves in the same order a serial processor would send
    them (commit and forward are atomic per update)."""
    placement = DataPlacement(4)
    placement.add_item("x", primary=0, replicas=[1, 2, 3])
    placement.add_item("y", primary=1, replicas=[2, 3])
    specs = [spec(0, seq, ("w", "x")) for seq in range(1, 7)]
    serial, _ = run_schedule(placement, specs, workers=1)
    system, outcomes = run_schedule(placement, specs, workers=4)
    assert_oracles(system, outcomes, len(specs))
    assert system_state(system) == system_state(serial)


@pytest.mark.parametrize("workers", [2, 4])
def test_backedge_control_messages_are_barriers(workers):
    """The BackEdge protocol's SPECIAL messages ride the same queues;
    they must act as exclusive barriers under the parallel scheduler.
    A placement with a back edge forces that traffic."""
    placement = DataPlacement(4)
    placement.add_item("a", primary=0, replicas=[1, 2, 3])
    placement.add_item("b", primary=1, replicas=[2, 3])
    placement.add_item("c", primary=2, replicas=[3])
    rng = random.Random(4)
    specs = []
    for seq in range(1, 9):
        site = rng.choice([0, 1, 2])
        item = {0: "a", 1: "b", 2: "c"}[site]
        specs.append(spec(site, seq, ("w", item)))
    system, outcomes = run_schedule(placement, specs, workers=workers,
                                    protocol="backedge")
    assert_oracles(system, outcomes, len(specs))


# ----------------------------------------------------------------------
# 200 seeded random schedules: DSG stays acyclic
# ----------------------------------------------------------------------

def _random_schedule(seed):
    """A random (placement, specs, workers, protocol) draw with mixed
    write-set overlap: a small item pool makes conflicts common, and
    reads at replica sites add wr/rw DSG edges worth checking."""
    rng = random.Random(seed)
    protocol = "backedge" if seed % 5 == 4 else "dag_wt"
    placement = (fanout_placement(rng=rng) if seed % 2 == 0
                 else layered_placement(rng=rng))
    by_primary = {}
    for item in placement.items:
        by_primary.setdefault(placement.primary_site(item), []).append(
            item)
    seqs = {}
    specs = []
    for _ in range(rng.randrange(5, 9)):
        primary = rng.choice(sorted(by_primary))
        seqs[primary] = seqs.get(primary, 0) + 1
        ops = [("w", item) for item in rng.sample(
            by_primary[primary],
            rng.randrange(1, min(3, len(by_primary[primary])) + 1))]
        local = sorted(item for item in placement.items
                       if primary == placement.primary_site(item)
                       or primary in placement.replica_sites(item))
        if local and rng.random() < 0.4:
            ops.append(("r", rng.choice(local)))
        rng.shuffle(ops)
        specs.append(spec(primary, seqs[primary], *ops))
    return placement, specs, rng.choice([2, 3, 4]), protocol


@pytest.mark.parametrize("seed", range(200))
def test_random_schedule_serializable_and_convergent(seed):
    placement, specs, workers, protocol = _random_schedule(seed)
    system, outcomes = run_schedule(placement, specs, workers=workers,
                                    protocol=protocol, gap=0.012)
    assert_oracles(system, outcomes, len(specs))
