"""Model-based property tests for the storage engine.

Hypothesis drives random single-threaded transaction schedules against
the engine and an oracle (plain dicts).  Checked invariants:

- committed values/versions match the oracle exactly,
- aborted transactions leave no trace (values, versions, history),
- the history's version numbering is dense and per-item monotone.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Environment
from repro.storage import StorageEngine
from repro.types import GlobalTransactionId, SubtransactionKind

N_ITEMS = 4

# One step: (txn slot 0..2, action, item, value)
step_strategy = st.tuples(
    st.integers(0, 2),
    st.sampled_from(["begin", "read", "write", "commit", "abort"]),
    st.integers(0, N_ITEMS - 1),
    st.integers(0, 99),
)


class Oracle:
    """Reference implementation: committed state + per-txn buffers."""

    def __init__(self):
        self.committed = {item: 0 for item in range(N_ITEMS)}
        self.versions = {item: 0 for item in range(N_ITEMS)}
        self.buffers = {}

    def begin(self, slot):
        self.buffers[slot] = {}

    def read(self, slot, item):
        if item in self.buffers[slot]:
            return self.buffers[slot][item]
        return self.committed[item]

    def write(self, slot, item, value):
        self.buffers[slot][item] = value

    def commit(self, slot):
        for item, value in sorted(self.buffers.pop(slot).items()):
            self.committed[item] = value
            self.versions[item] += 1

    def abort(self, slot):
        self.buffers.pop(slot, None)


@settings(max_examples=120, deadline=None)
@given(steps=st.lists(step_strategy, max_size=40))
def test_engine_matches_oracle_single_threaded(steps):
    env = Environment()
    engine = StorageEngine(env, site_id=0, lock_timeout=None)
    for item in range(N_ITEMS):
        engine.create_item(item, value=0)
    oracle = Oracle()
    txns = {}
    seq = iter(range(1, 10_000))

    def driver():
        reads = []
        for slot, action, item, value in steps:
            txn = txns.get(slot)
            if action == "begin":
                if txn is None:
                    txns[slot] = engine.begin(
                        GlobalTransactionId(0, next(seq)),
                        SubtransactionKind.PRIMARY)
                    oracle.begin(slot)
            elif txn is None:
                continue
            elif action == "read":
                got = yield from engine.read(txn, item)
                expected = oracle.read(slot, item)
                reads.append((got, expected))
            elif action == "write":
                yield from engine.write(txn, item, value)
                oracle.write(slot, item, value)
            elif action == "commit":
                engine.commit(txn)
                oracle.commit(slot)
                txns.pop(slot)
            elif action == "abort":
                engine.abort(txn)
                oracle.abort(slot)
                txns.pop(slot)
        # Roll back any still-open transactions so committed state is
        # comparable.
        for slot in list(txns):
            engine.abort(txns.pop(slot))
            oracle.abort(slot)
        return reads

    # Single-threaded schedules can still deadlock themselves only via
    # conflicting slots; with lock_timeout=None the lock manager would
    # block forever on a slot-vs-slot conflict, so the driver runs all
    # slots in one process — waits resolve immediately or not at all.
    # Conflicts between slots are real: a second slot's lock request on
    # an item held in X by another slot would block the single process
    # forever, so filter those schedules out by detecting a stuck run.
    process = env.process(driver())
    env.run(until=10.0)
    if not process.triggered:
        return  # Blocked on a cross-slot lock: schedule not applicable.

    for got, expected in process.value:
        assert got == expected
    for item in range(N_ITEMS):
        record = engine.item(item)
        assert record.value == oracle.committed[item]
        assert record.committed_version == oracle.versions[item]
    # History versions are dense per item.
    seen = {item: 0 for item in range(N_ITEMS)}
    for entry in engine.history:
        for item, version in sorted(entry.writes.items()):
            assert version == seen[item] + 1
            seen[item] = version


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(0, 9), min_size=1, max_size=12),
       abort_mask=st.lists(st.booleans(), min_size=12, max_size=12))
def test_property_abort_chain_preserves_last_commit(values, abort_mask):
    """Alternating committed/aborted writers: the item always reflects
    the last *committed* write."""
    env = Environment()
    engine = StorageEngine(env, site_id=0, lock_timeout=None)
    engine.create_item("x", value=-1)
    last_committed = -1
    commits = 0

    def driver():
        nonlocal last_committed, commits
        for index, value in enumerate(values):
            txn = engine.begin(GlobalTransactionId(0, index + 1),
                               SubtransactionKind.PRIMARY)
            yield from engine.write(txn, "x", value)
            if abort_mask[index]:
                engine.abort(txn)
            else:
                engine.commit(txn)
                last_committed = value
                commits += 1

    env.process(driver())
    env.run()
    assert engine.item("x").value == last_committed
    assert engine.item("x").committed_version == commits
    assert len(engine.history) == commits
