"""Differential battery: JSON and bin1 must agree on every wire op.

Both codecs serialize the same frame-object vocabulary (the JSON-ready
dicts produced by ``encode_message`` / ``encode_batch_frame`` plus the
control frames — hello, hello-ack, ack, error, request/response).  The
properties locked down here:

* every wire op round-trips through BOTH codecs,
* the binary decode of a frame equals the JSON decode of the same
  frame (differential equality — neither codec gets to drift),
* binary encode -> decode -> encode is byte-stable, both for
  self-contained frames and across a warmed intern-table stream,
* a truncated or bit-flipped binary body raises :class:`CodecError`,
  never a partial or garbled frame,
* tuple- and frozenset-keyed payload values survive both codecs with
  hashable keys (the ``decode_value`` / ``_hashable`` regression).

Payload builders are shared with ``test_cluster_codec`` so a new
message type cannot ship without joining this battery too.
"""

import json
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster.codec import (
    BinaryDecoder,
    BinaryEncoder,
    CodecError,
    decode_frame_body,
    decode_message,
    decode_value,
    encode_batch_frame,
    encode_frame,
    encode_message,
    encode_value,
)
from repro.network.message import Message, MessageType
from repro.types import GlobalTransactionId
from tests.test_cluster_codec import PAYLOADS, _gid

MESSAGE_TYPES = sorted(MessageType, key=lambda t: t.value)


def _message(rng, msg_type):
    return Message(msg_type, rng.randrange(8), rng.randrange(8),
                   PAYLOADS[msg_type](rng))


def _msg_frame(rng, msg_type):
    return {"kind": "msg", "inc": "inc-{}".format(rng.randrange(100)),
            "seq": rng.randrange(10**6),
            "msg": encode_message(_message(rng, msg_type))}


def _batch_frame(rng):
    base = rng.randrange(10**6)
    entries = [(base + i, _message(rng, rng.choice(MESSAGE_TYPES)))
               for i in range(rng.randrange(1, 6))]
    return encode_batch_frame("inc-{}".format(rng.randrange(100)),
                              entries)


def _control_frames(rng):
    """The non-message vocabulary one connection exchanges."""
    return [
        {"kind": "hello", "role": rng.choice(["peer", "client"]),
         "site": rng.randrange(8), "fingerprint": "f" * 16,
         "wire": ["bin1"]},
        {"kind": "hello-ack", "wire": rng.choice(["bin1", "json"])},
        {"kind": "ack", "seq": rng.randrange(10**9)},
        {"kind": "error", "error": "wrong cluster fingerprint",
         "epoch": rng.choice([None, rng.randrange(10)])},
        {"kind": "request", "op": rng.choice(["txn", "status"]),
         "payload": {"reads": [rng.randrange(50)],
                     "writes": encode_value(
                         {rng.randrange(50): rng.randrange(10**6)})}},
        {"kind": "response", "ok": rng.random() < 0.5,
         "result": encode_value({"gid": _gid(rng),
                                 "values": (1, 2.5, None)})},
    ]


def _frame_stream(rng):
    """A realistic connection's worth of frames, in stream order."""
    frames = [_control_frames(rng)[0], {"kind": "hello-ack",
                                        "wire": "bin1"}]
    for _ in range(rng.randrange(4, 10)):
        roll = rng.random()
        if roll < 0.5:
            frames.append(_msg_frame(rng, rng.choice(MESSAGE_TYPES)))
        elif roll < 0.8:
            frames.append(_batch_frame(rng))
        else:
            frames.append(rng.choice(_control_frames(rng)))
    frames.append({"kind": "ack", "seq": rng.randrange(10**9)})
    return frames


def _binary_round_trip(frame, encoder=None, decoder=None):
    """Encode+decode through bin1; returns (body, decoded)."""
    encoder = encoder or BinaryEncoder()
    decoder = decoder or BinaryDecoder()
    wire = encoder.encode_frame(frame)
    assert wire[4:5] == b"\xb1", "binary body must carry the magic"
    return wire[4:], decoder.decode_body(wire[4:])


# ----------------------------------------------------------------------
# Differential equality, every wire op
# ----------------------------------------------------------------------

@pytest.mark.parametrize("msg_type", MESSAGE_TYPES)
@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 2**32 - 1))
def test_differential_msg_frames(msg_type, seed):
    rng = random.Random(seed)
    frame = _msg_frame(rng, msg_type)
    via_json = decode_frame_body(encode_frame(frame)[4:])
    _, via_binary = _binary_round_trip(frame)
    assert via_json == frame
    assert via_binary == frame
    assert via_binary == via_json
    # And the decoded message is the original message, either way.
    original = decode_message(frame["msg"])
    for decoded in (via_json, via_binary):
        message = decode_message(decoded["msg"])
        assert message.msg_type is original.msg_type
        assert message.payload == original.payload


@settings(deadline=None, max_examples=60)
@given(seed=st.integers(0, 2**32 - 1))
def test_differential_batch_and_control_frames(seed):
    rng = random.Random(seed)
    for frame in [_batch_frame(rng)] + _control_frames(rng):
        via_json = decode_frame_body(encode_frame(frame)[4:])
        _, via_binary = _binary_round_trip(frame)
        assert via_json == frame
        assert via_binary == frame


# Generic frame objects beyond the protocol vocabulary: both codecs
# must agree on arbitrary JSON-shaped frames too (strings that look
# like intern-table vocabulary, ~-prefixed keys, big ints, unicode).
_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**80, max_value=2**80),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.sampled_from(["kind", "msg", "batch", "~gid", "~map", "seq",
                     "payload", "é~", "x" * 40]))
_json_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4)),
    max_leaves=20)


@settings(deadline=None, max_examples=150)
@given(frame=st.dictionaries(st.text(max_size=8), _json_values,
                             max_size=5))
def test_differential_generic_frames(frame):
    via_json = decode_frame_body(encode_frame(frame)[4:])
    _, via_binary = _binary_round_trip(frame)
    assert via_binary == via_json == frame


# ----------------------------------------------------------------------
# Byte stability and warmed intern-table streams
# ----------------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(seed=st.integers(0, 2**32 - 1))
def test_binary_stream_is_byte_stable(seed):
    """encode -> decode -> encode reproduces the exact bytes, frame by
    frame, with the intern tables warming in stream order on all three
    parties (sender, receiver, re-sender)."""
    rng = random.Random(seed)
    frames = _frame_stream(rng)
    sender, resender = BinaryEncoder(), BinaryEncoder()
    receiver = BinaryDecoder()
    for frame in frames:
        first = sender.encode_frame(frame)
        decoded = receiver.decode_body(first[4:])
        assert decoded == frame
        assert resender.encode_frame(decoded) == first


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(0, 2**32 - 1))
def test_stream_decodes_match_json(seed):
    """A warmed decoder (references into the intern table) produces the
    same objects a JSON round trip does."""
    rng = random.Random(seed)
    encoder, decoder = BinaryEncoder(), BinaryDecoder()
    for frame in _frame_stream(rng):
        via_json = json.loads(json.dumps(frame))
        decoded = decoder.decode_body(encoder.encode_frame(frame)[4:])
        assert decoded == via_json


def test_interning_pays_off_across_a_stream():
    """Later frames reuse table references: repeated vocabulary must
    not be re-defined inline (the compactness the format exists for)."""
    rng = random.Random(5)
    encoder = BinaryEncoder()
    frame = _msg_frame(rng, MessageType.SECONDARY)
    first = len(encoder.encode_frame(dict(frame, inc="warm-me-up")))
    later = len(encoder.encode_frame(dict(frame, inc="warm-me-up")))
    assert later < first


# ----------------------------------------------------------------------
# Corruption: CodecError, never garbage
# ----------------------------------------------------------------------

@settings(deadline=None, max_examples=120)
@given(seed=st.integers(0, 2**32 - 1), where=st.integers(0, 2**31),
       bit=st.integers(0, 7))
def test_bit_flips_raise_codec_error(seed, where, bit):
    rng = random.Random(seed)
    frame = _msg_frame(rng, rng.choice(MESSAGE_TYPES))
    body, _ = _binary_round_trip(frame)
    corrupt = bytearray(body)
    corrupt[where % len(body)] ^= 1 << bit
    with pytest.raises(CodecError):
        BinaryDecoder().decode_body(bytes(corrupt))


@settings(deadline=None, max_examples=120)
@given(seed=st.integers(0, 2**32 - 1), where=st.integers(0, 2**31))
def test_truncation_raises_codec_error(seed, where):
    rng = random.Random(seed)
    frame = _batch_frame(rng)
    body, _ = _binary_round_trip(frame)
    with pytest.raises(CodecError):
        BinaryDecoder().decode_body(body[:where % len(body)])
    # JSON bodies too: every strict prefix of a minified frame is
    # invalid JSON (the object never closes).
    json_body = encode_frame(frame)[4:]
    with pytest.raises(CodecError):
        decode_frame_body(json_body[:where % len(json_body)])


def test_exhaustive_corruption_sweep_small_frame():
    """Every truncation point and two bit flips at every byte of one
    real frame — the deterministic backstop under the fuzz above."""
    rng = random.Random(11)
    body, _ = _binary_round_trip(_msg_frame(rng, MessageType.SECONDARY))
    for cut in range(len(body)):
        with pytest.raises(CodecError):
            BinaryDecoder().decode_body(body[:cut])
    for pos in range(len(body)):
        for mask in (0x01, 0x80):
            corrupt = bytearray(body)
            corrupt[pos] ^= mask
            with pytest.raises(CodecError):
                BinaryDecoder().decode_body(bytes(corrupt))


def test_garbage_and_wrong_version_raise():
    for body in (b"", b"\xb1", b"\xb1\x01", b"not binary at all",
                 b"\xb1\x02" + b"\x00" * 16, b"\x00" * 24):
        with pytest.raises(CodecError):
            BinaryDecoder().decode_body(body)


# ----------------------------------------------------------------------
# Tuple / frozenset keys (decode_value + _hashable regression)
# ----------------------------------------------------------------------

TRICKY_PAYLOADS = [
    {"table": {(1, frozenset({2, 3})): "v",
               (GlobalTransactionId(0, 1), (2,)): 5}},
    {"index": {frozenset({GlobalTransactionId(1, 2)}): [1, 2]}},
    {"sets": {frozenset({(1, 2), (3, 4)}),
              frozenset()}},
    {"nested": {((1, (2, frozenset({3}))),): {"deep": True}}},
]


@pytest.mark.parametrize("payload", TRICKY_PAYLOADS,
                         ids=["tuple-keys", "frozenset-key",
                              "set-of-frozensets", "nested-tuple-key"])
def test_tuple_and_frozenset_keys_survive_both_codecs(payload):
    message = Message(MessageType.CATCHUP_REPLY, 0, 1, payload)
    frame = {"kind": "msg", "inc": "i", "seq": 1,
             "msg": encode_message(message)}
    via_json = decode_frame_body(encode_frame(frame)[4:])
    _, via_binary = _binary_round_trip(frame)
    for decoded in (via_json, via_binary):
        got = decode_message(decoded["msg"]).payload
        assert got == payload
        # Keys came back hashable: membership must work.
        for value in got.values():
            if isinstance(value, dict):
                for key in value:
                    assert key in value


@settings(deadline=None, max_examples=60)
@given(seed=st.integers(0, 2**32 - 1))
def test_random_hashable_keyed_maps_round_trip(seed):
    rng = random.Random(seed)

    def key(depth=0):
        kind = rng.choice(["int", "gid", "tuple", "fset"]
                          if depth < 2 else ["int", "gid"])
        if kind == "int":
            return rng.randrange(100)
        if kind == "gid":
            return _gid(rng)
        if kind == "tuple":
            return tuple(key(depth + 1)
                         for _ in range(rng.randrange(1, 3)))
        return frozenset(key(depth + 1)
                         for _ in range(rng.randrange(2)))

    original = {key(): rng.randrange(1000)
                for _ in range(rng.randrange(1, 5))}
    lowered = encode_value(original)
    # Through real JSON text and through bin1 inside a frame.
    assert decode_value(json.loads(json.dumps(lowered))) == original
    _, via_binary = _binary_round_trip({"kind": "x", "v": lowered})
    assert decode_value(via_binary["v"]) == original
