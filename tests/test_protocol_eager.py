"""Integration tests for the eager write-all / 2PC baseline."""

from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from repro.types import SubtransactionKind
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def placement_three_sites():
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    return placement


def test_write_applies_at_all_replicas_before_commit_returns():
    env, system, proto = make_system(placement_three_sites(), "eager")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    for site_id in (0, 1, 2):
        assert system.site_of(site_id).engine.item("a") \
            .committed_version == 1
    sent = system.network.sent_by_type
    assert sent[MessageType.EAGER_WRITE] == 2
    assert sent[MessageType.PREPARE] == 2
    assert sent[MessageType.DECISION] == 2
    check_convergence(system)


def test_replica_read_is_local_and_current():
    """Read-one: after an eager write commits, a replica site reads the
    new value locally with zero messages."""
    env, system, proto = make_system(placement_three_sites(), "eager")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(2, 1, ("r", "a")), 0.5, outcomes)
    env.run(until=1.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    # The reader's history entry is at its own site with version 1.
    entries = [entry for entry in system.site_of(2).engine.history
               if entry.gid == spec(2, 1).gid]
    assert entries[0].reads == {"a": 1}
    check_serializable(histories(system))


def test_remote_lock_conflict_aborts_whole_transaction():
    """A replica site pinning the item causes the eager write to time
    out; the origin aborts everywhere."""
    env, system, proto = make_system(placement_three_sites(), "eager",
                                     lock_timeout=0.02)
    outcomes = []

    def pin_replica():
        site = system.site_of(1)
        txn = site.engine.begin(spec(1, 99).gid,
                                SubtransactionKind.PRIMARY)
        value = yield from site.engine.read(txn, "a")
        del value
        yield env.timeout(0.5)
        site.engine.commit(txn)

    env.process(pin_replica())
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.005, outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] != "committed"
    env.run(until=3.0)
    # No replica applied the aborted write.
    for site_id in (0, 1, 2):
        assert system.site_of(site_id).engine.item("a") \
            .committed_version == 0
    assert no_locks_leaked(system)
    check_convergence(system)


def test_concurrent_writers_serialize_or_abort():
    env, system, proto = make_system(placement_three_sites(), "eager",
                                     lock_timeout=0.02)
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(0, 2, ("w", "a")), 0.0005, outcomes)
    env.run(until=3.0)
    committed = [gid for gid, status, _t in outcomes
                 if status == "committed"]
    version = system.site_of(0).engine.item("a").committed_version
    assert version == len(committed)
    check_serializable(histories(system))
    check_convergence(system)
    assert no_locks_leaked(system)


def test_unreplicated_write_needs_no_messages():
    placement = DataPlacement(2)
    placement.add_item("solo", primary=0)
    placement.add_item("other", primary=1)
    env, system, proto = make_system(placement, "eager")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "solo")), 0.0, outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    assert system.network.total_sent == 0
