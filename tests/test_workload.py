"""Tests for Table 1 parameters, the Sec. 5.2 data distribution, and the
transaction generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.copygraph import CopyGraph
from repro.types import OpType
from repro.workload.distribution import (
    generate_placement,
    placement_statistics,
)
from repro.workload.generator import TransactionGenerator
from repro.workload.params import (
    DEFAULT_PARAMS,
    WorkloadParams,
    format_parameter_table,
)


def test_default_params_match_table_1():
    params = DEFAULT_PARAMS
    assert params.n_sites == 9
    assert params.n_items == 200
    assert params.replication_probability == 0.2
    assert params.site_probability == 0.5
    assert params.backedge_probability == 0.2
    assert params.ops_per_transaction == 10
    assert params.threads_per_site == 3
    assert params.transactions_per_thread == 1000
    assert params.read_op_probability == 0.7
    assert params.read_txn_probability == 0.5
    assert params.network_latency == pytest.approx(0.00015)
    assert params.deadlock_timeout == pytest.approx(0.050)


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        WorkloadParams(replication_probability=1.5).validate()
    with pytest.raises(ConfigurationError):
        WorkloadParams(n_sites=0).validate()
    with pytest.raises(ConfigurationError):
        WorkloadParams(n_items=3, n_sites=9).validate()
    with pytest.raises(ConfigurationError):
        WorkloadParams(deadlock_timeout=0).validate()


def test_replaced_returns_validated_copy():
    params = DEFAULT_PARAMS.replaced(backedge_probability=0.9)
    assert params.backedge_probability == 0.9
    assert DEFAULT_PARAMS.backedge_probability == 0.2
    with pytest.raises(ConfigurationError):
        DEFAULT_PARAMS.replaced(backedge_probability=2.0)


def test_parameter_table_rendering():
    table = format_parameter_table()
    assert "Backedge Probability" in table
    assert "0.15 millisec" in table
    assert "3 - 15" in table


def test_primaries_assigned_round_robin():
    placement = generate_placement(DEFAULT_PARAMS, random.Random(1))
    for site in range(9):
        count = len(placement.primary_items_at(site))
        assert count in (22, 23)  # ~200/9 each


def test_no_replication_when_r_zero():
    params = DEFAULT_PARAMS.replaced(replication_probability=0.0)
    placement = generate_placement(params, random.Random(1))
    assert placement.replica_count() == 0


def test_backedge_zero_yields_dag_copy_graph():
    params = DEFAULT_PARAMS.replaced(backedge_probability=0.0)
    placement = generate_placement(params, random.Random(2))
    graph = CopyGraph.from_placement(placement)
    assert graph.is_dag()
    # All edges point forward in the site order.
    assert all(src < dst for src, dst in graph.edges)


def test_full_replication_statistics_match_paper_claim():
    """Sec. 5.3.2: 'at r=1, there are almost 500 replicas in the system'
    with the default b=0.2, s=0.5, m=9, n=200."""
    params = DEFAULT_PARAMS.replaced(replication_probability=1.0)
    totals = []
    for seed in range(5):
        placement = generate_placement(params, random.Random(seed))
        totals.append(placement.replica_count())
    mean = sum(totals) / len(totals)
    assert 400 <= mean <= 560


def test_backedge_probability_one_creates_backedges():
    params = DEFAULT_PARAMS.replaced(backedge_probability=1.0)
    placement = generate_placement(params, random.Random(3))
    stats = placement_statistics(placement)
    assert stats["backedge_replica_pairs"] > 0


def test_placement_is_deterministic_per_seed():
    first = generate_placement(DEFAULT_PARAMS, random.Random(7))
    second = generate_placement(DEFAULT_PARAMS, random.Random(7))
    for item in first.items:
        assert first.primary_site(item) == second.primary_site(item)
        assert first.replica_sites(item) == second.replica_sites(item)


# ----------------------------------------------------------------------
# Transaction generation
# ----------------------------------------------------------------------


def small_generator(read_txn=0.5, read_op=0.7, seed=1):
    params = WorkloadParams(n_sites=3, n_items=30,
                            transactions_per_thread=20,
                            read_txn_probability=read_txn,
                            read_op_probability=read_op)
    placement = generate_placement(params, random.Random(seed))
    return params, placement, TransactionGenerator(
        params, placement, random.Random(seed))


def test_transactions_have_requested_length():
    _params, _placement, generator = small_generator()
    rng = random.Random(0)
    for _ in range(20):
        txn = generator.make_transaction(0, rng)
        assert len(txn.operations) == 10


def test_writes_only_target_local_primaries():
    _params, placement, generator = small_generator(read_txn=0.0,
                                                    read_op=0.3)
    rng = random.Random(0)
    for site in range(3):
        for _ in range(20):
            txn = generator.make_transaction(site, rng)
            for item in txn.write_items:
                assert placement.primary_site(item) == site


def test_reads_only_target_items_present_at_site():
    _params, placement, generator = small_generator()
    rng = random.Random(0)
    for site in range(3):
        local_items = placement.items_at(site)
        for _ in range(20):
            txn = generator.make_transaction(site, rng)
            for item in txn.read_items:
                assert item in local_items


def test_read_txn_probability_one_gives_only_reads():
    _params, _placement, generator = small_generator(read_txn=1.0)
    rng = random.Random(0)
    for _ in range(30):
        txn = generator.make_transaction(1, rng)
        assert txn.is_read_only


def test_read_op_probability_zero_gives_only_writes():
    _params, _placement, generator = small_generator(read_txn=0.0,
                                                     read_op=0.0)
    rng = random.Random(0)
    for _ in range(30):
        txn = generator.make_transaction(1, rng)
        assert len(txn.write_items) == 10


def test_gids_unique_across_threads_of_a_site():
    _params, _placement, generator = small_generator()
    gids = [txn.gid for txn in generator.thread_stream(0, 0)]
    gids += [txn.gid for txn in generator.thread_stream(0, 1)]
    assert len(set(gids)) == len(gids)


def test_thread_streams_are_finite():
    params, _placement, generator = small_generator()
    stream = list(generator.thread_stream(2, 0))
    assert len(stream) == params.transactions_per_thread


@settings(max_examples=30, deadline=None)
@given(read_txn=st.floats(0, 1), read_op=st.floats(0, 1),
       seed=st.integers(0, 100))
def test_property_generated_transactions_respect_model(read_txn, read_op,
                                                       seed):
    """Model invariant (Sec. 1.1): every generated transaction reads only
    items at its site and writes only local primaries."""
    params = WorkloadParams(n_sites=3, n_items=30,
                            transactions_per_thread=5,
                            read_txn_probability=read_txn,
                            read_op_probability=read_op)
    placement = generate_placement(params, random.Random(seed))
    generator = TransactionGenerator(params, placement,
                                     random.Random(seed))
    rng = random.Random(seed)
    for site in range(3):
        txn = generator.make_transaction(site, rng)
        assert len(txn.operations) == 10
        local = placement.items_at(site)
        primaries = placement.primary_items_at(site)
        for op in txn.operations:
            if op.op_type is OpType.READ:
                assert op.item in local
            else:
                assert op.item in primaries


# ----------------------------------------------------------------------
# Hot-spot skew extension
# ----------------------------------------------------------------------


def test_hotspot_zero_skew_is_uniform_paper_workload():
    params = WorkloadParams()
    assert params.hotspot_access_probability == 0.0


def test_hotspot_validation():
    with pytest.raises(ConfigurationError):
        WorkloadParams(hotspot_access_probability=1.5).validate()
    with pytest.raises(ConfigurationError):
        WorkloadParams(hotspot_item_fraction=-0.1).validate()


def test_hotspot_skew_concentrates_accesses():
    """With 90% skew toward a 10% hot set, the hot items dominate the
    generated access stream."""
    params = WorkloadParams(
        n_sites=2, n_items=100, transactions_per_thread=5,
        read_txn_probability=1.0, hotspot_access_probability=0.9,
        hotspot_item_fraction=0.1)
    placement = generate_placement(params, random.Random(4))
    generator = TransactionGenerator(params, placement, random.Random(4))
    pool = sorted(placement.items_at(0))
    hot = set(pool[:max(1, len(pool) // 10)])
    rng = random.Random(9)
    hot_hits = total = 0
    for _ in range(200):
        txn = generator.make_transaction(0, rng)
        for item in txn.read_items:
            total += 1
            hot_hits += item in hot
    # The hot set holds ~10% of items but receives far more traffic.
    assert hot_hits / total > 0.4


def test_hotspot_items_still_respect_placement_rules():
    params = WorkloadParams(
        n_sites=3, n_items=30, transactions_per_thread=5,
        read_txn_probability=0.0, read_op_probability=0.5,
        hotspot_access_probability=0.9)
    placement = generate_placement(params, random.Random(5))
    generator = TransactionGenerator(params, placement, random.Random(5))
    rng = random.Random(5)
    for site in range(3):
        for _ in range(20):
            txn = generator.make_transaction(site, rng)
            for item in txn.write_items:
                assert placement.primary_site(item) == site
            for item in txn.read_items:
                assert item in placement.items_at(site)
