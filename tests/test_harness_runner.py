"""Tests for the experiment runner, metrics, sweeps and reporting."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.harness.metrics import MetricsCollector
from repro.harness.reporting import format_comparison, format_sweep_table
from repro.harness.runner import (
    ExperimentConfig,
    build_system,
    run_experiment,
)
from repro.harness.sweep import series, sweep
from repro.workload.params import WorkloadParams

SMALL = WorkloadParams(n_sites=3, n_items=30, transactions_per_thread=10,
                       threads_per_site=2)


def small_config(protocol="backedge", **kwargs):
    return ExperimentConfig(protocol=protocol, params=SMALL, seed=1,
                            **kwargs)


def test_run_experiment_counts_add_up():
    result = run_experiment(small_config())
    total = SMALL.n_sites * SMALL.threads_per_site \
        * SMALL.transactions_per_thread
    assert result.committed + result.aborted == total
    assert result.serializable is True
    assert result.duration > 0
    assert result.average_throughput > 0


def test_run_experiment_is_deterministic():
    first = run_experiment(small_config())
    second = run_experiment(small_config())
    assert first.average_throughput == second.average_throughput
    assert first.committed == second.committed
    assert first.total_messages == second.total_messages
    assert first.duration == second.duration


def test_different_seeds_differ():
    first = run_experiment(small_config())
    second = run_experiment(dataclasses.replace(small_config(), seed=2))
    assert (first.duration, first.total_messages) != \
        (second.duration, second.total_messages)


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigurationError):
        run_experiment(small_config(protocol="nope"))


def test_max_sim_time_caps_run():
    config = small_config(max_sim_time=0.25)
    result = run_experiment(config)
    assert result.duration <= 0.25 + 1e-9


def test_cost_overrides_applied_and_validated():
    env, system, _protocol, _generator = build_system(
        small_config(cost_overrides={"cpu_txn_setup": 0.123}))
    assert system.config.cpu_txn_setup == 0.123
    with pytest.raises(AttributeError):
        build_system(small_config(cost_overrides={"bogus": 1.0}))


def test_protocol_options_forwarded():
    _env, _system, protocol, _generator = build_system(
        small_config(protocol_options={"variant": "tree"}))
    assert protocol.variant == "tree"


def test_summary_renders():
    result = run_experiment(small_config())
    line = result.summary()
    assert "backedge" in line
    assert "txn/s/site" in line


def test_every_registered_protocol_runs_and_serializes():
    params = SMALL.replaced(backedge_probability=0.0)
    for protocol in ("dag_wt", "dag_t", "backedge", "psl", "eager"):
        config = ExperimentConfig(protocol=protocol, params=params, seed=3)
        result = run_experiment(config)
        assert result.serializable is True
        assert result.committed > 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_metrics_throughput_and_abort_rate():
    metrics = MetricsCollector(2)
    metrics.transaction_committed(0, 0.1)
    metrics.transaction_committed(0, 0.3)
    metrics.transaction_committed(1, 0.2)
    metrics.transaction_aborted(1, "lock-timeout on item 3")
    assert metrics.total_committed == 3
    assert metrics.total_aborted == 1
    assert metrics.abort_rate() == pytest.approx(25.0)
    assert metrics.average_throughput(10.0) == pytest.approx(
        (2 / 10 + 1 / 10) / 2)
    assert metrics.mean_response_time() == pytest.approx(0.2)
    assert metrics.abort_reasons["lock-timeout"] == 1


def test_metrics_propagation_tracking():
    metrics = MetricsCollector(3)
    from repro.types import GlobalTransactionId
    g = GlobalTransactionId(0, 1)
    metrics.on_primary_commit(g, 0, 1.0, expected_replicas={1, 2})
    assert metrics.unpropagated_count() == 1
    metrics.on_replica_commit(g, 1, 1.5)
    assert metrics.unpropagated_count() == 1
    metrics.on_replica_commit(g, 2, 2.0)
    assert metrics.unpropagated_count() == 0
    assert metrics.mean_propagation_delay() == pytest.approx(1.0)


def test_metrics_empty_aggregates_are_zero():
    metrics = MetricsCollector(1)
    assert metrics.average_throughput(0) == 0.0
    assert metrics.abort_rate() == 0.0
    assert metrics.mean_response_time() == 0.0
    assert metrics.mean_propagation_delay() == 0.0


# ----------------------------------------------------------------------
# Sweeps and reporting
# ----------------------------------------------------------------------


def test_sweep_runs_grid_and_series_extracts():
    points = sweep("backedge_probability", [0.0, 1.0],
                   ["backedge", "psl"], base_params=SMALL, seed=1)
    assert len(points) == 4
    backedge_series = series(points, "backedge")
    assert [value for value, _m in backedge_series] == [0.0, 1.0]
    assert all(throughput > 0 for _v, throughput in backedge_series)


def test_sweep_table_rendering():
    points = sweep("backedge_probability", [0.0], ["backedge", "psl"],
                   base_params=SMALL, seed=1)
    table = format_sweep_table(points)
    assert "backedge_probability" in table
    assert "psl" in table
    comparison = format_comparison(points, "psl", "backedge")
    assert "speedup" in comparison
    assert "x" in comparison.splitlines()[-1]


def test_format_sweep_table_empty():
    assert format_sweep_table([]) == "(no data)"
