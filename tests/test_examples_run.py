"""Smoke tests: every shipped example must run cleanly end to end.

These are the deliverable examples — regressions here are user-visible,
so they run as subprocesses exactly as a user would invoke them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["BackEdge/PSL speedup", "serializable"],
    "data_warehouse.py": ["Global serializability verified",
                          "headquarters"],
    "network_management.py": ["Serializability verified",
                              "Backedges chosen"],
    "anomaly_demo.py": ["checker found the cycle",
                        "global deadlock detected"],
    "protocol_comparison.py": ["All runs passed",
                               "dag_t"],
    "site_recovery.py": ["Recovered site caught up"],
}

ARGS = {
    # Keep the slowest example quick in CI.
    "protocol_comparison.py": ["25"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_prints_expected_output(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), "missing example {}".format(script)
    completed = subprocess.run(
        [sys.executable, str(path)] + ARGS.get(script, []),
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in completed.stdout, (
            "{} output missing {!r}:\n{}".format(
                script, snippet, completed.stdout))


def test_every_example_file_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
