"""Tests for the FIFO resource and mailbox primitives."""

import pytest

from repro.sim import Environment, Interrupt, Mailbox, Resource


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    cpu = Resource(env, capacity=2)
    first = cpu.request()
    second = cpu.request()
    third = cpu.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert cpu.count == 2
    assert cpu.queue_length == 1


def test_resource_release_grants_fifo():
    env = Environment()
    cpu = Resource(env, capacity=1)
    tokens = [cpu.request() for _ in range(3)]
    assert tokens[0].triggered
    assert not tokens[1].triggered
    cpu.release(tokens[0])
    assert tokens[1].triggered
    assert not tokens[2].triggered
    cpu.release(tokens[1])
    assert tokens[2].triggered


def test_resource_release_foreign_token_raises():
    env = Environment()
    cpu = Resource(env, capacity=1)
    cpu.request()
    with pytest.raises(ValueError):
        cpu.release(env.event())


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_cancel_waiting_request():
    env = Environment()
    cpu = Resource(env, capacity=1)
    held = cpu.request()
    waiting = cpu.request()
    cpu.cancel(waiting)
    assert cpu.queue_length == 0
    cpu.release(held)
    assert not waiting.triggered  # Was withdrawn, never granted.


def test_resource_use_serialises_processes():
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def worker(env, cpu, name, duration):
        yield from cpu.use(duration)
        log.append((name, env.now))

    env.process(worker(env, cpu, "a", 2.0))
    env.process(worker(env, cpu, "b", 3.0))
    env.run()
    assert log == [("a", 2.0), ("b", 5.0)]


def test_resource_use_cleans_up_on_interrupt():
    env = Environment()
    cpu = Resource(env, capacity=1)

    def hog(env, cpu):
        try:
            yield from cpu.use(100.0)
        except Interrupt:
            return "stopped"

    def follower(env, cpu):
        yield from cpu.use(1.0)
        return env.now

    victim = env.process(hog(env, cpu))
    next_proc = env.process(follower(env, cpu))

    def killer(env, victim):
        yield env.timeout(5.0)
        victim.interrupt()

    env.process(killer(env, victim))
    env.run()
    assert victim.value == "stopped"
    # The follower got the CPU right after the interrupt at t=5.
    assert next_proc.value == 6.0
    assert cpu.count == 0


def test_mailbox_put_then_get():
    env = Environment()
    box = Mailbox(env)
    box.put("m1")
    box.put("m2")
    assert len(box) == 2
    assert box.peek() == "m1"
    first = box.get()
    second = box.get()
    assert first.triggered and first.value == "m1"
    assert second.triggered and second.value == "m2"
    assert len(box) == 0


def test_mailbox_get_blocks_until_put():
    env = Environment()
    box = Mailbox(env)

    def consumer(env, box):
        item = yield box.get()
        return (env.now, item)

    def producer(env, box):
        yield env.timeout(3.0)
        box.put("late")

    consumer_proc = env.process(consumer(env, box))
    env.process(producer(env, box))
    env.run()
    assert consumer_proc.value == (3.0, "late")


def test_mailbox_getters_served_fifo():
    env = Environment()
    box = Mailbox(env)
    first = box.get()
    second = box.get()
    box.put("x")
    assert first.triggered and first.value == "x"
    assert not second.triggered


def test_mailbox_cancel_get():
    env = Environment()
    box = Mailbox(env)
    doomed = box.get()
    live = box.get()
    box.cancel_get(doomed)
    box.put("only")
    assert not doomed.triggered
    assert live.triggered and live.value == "only"


def test_mailbox_peek_empty_returns_none():
    env = Environment()
    box = Mailbox(env)
    assert box.peek() is None
