"""Live-cluster acceptance tests: real sockets, real clocks, and the
simulator's own oracles.

Each test boots every site of the copy graph as a :class:`SiteServer`
on localhost, drives the paper's closed-loop workload through the TCP
client, waits for propagation to quiesce, and then verifies the two
global correctness properties with the same checkers the simulation
harness uses: value convergence of every replica
(:func:`~repro.harness.convergence.divergent_copies`) and acyclicity of
the dynamic serialization graph rebuilt from the sites' reported
histories.

The kill/restart test is the reliability story end to end: a replica
site dies abruptly mid-workload (volatile state dropped), restarts from
its WAL, replays its durable inbox journal, and catches up over the
anti-entropy plane — after which the cluster must be convergent and
serializable as if the crash never happened.
"""

import asyncio
import os

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.codec import decode_value
from repro.cluster.loadgen import (
    generate_load,
    history_from_status,
    wait_quiescent,
)
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.harness.convergence import divergent_copies
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.sim.rng import RngRegistry
from repro.workload.generator import TransactionGenerator
from repro.workload.params import WorkloadParams

#: Seed 3 yields a DAG copy graph for these parameters (required by
#: DAG(WT)); seed 5's graph has back edges (exercised by BackEdge).
PARAMS = WorkloadParams(n_sites=3, n_items=12,
                        replication_probability=0.8,
                        threads_per_site=2, transactions_per_thread=6,
                        read_txn_probability=0.3,
                        deadlock_timeout=0.05)


def make_spec(protocol, seed, base_port):
    return ClusterSpec(params=PARAMS, protocol=protocol, seed=seed,
                       base_port=base_port)


async def start_cluster(spec, wal_dir=None, anti_entropy_interval=0.3):
    servers = {}
    for site in range(spec.params.n_sites):
        wal_path = (os.path.join(wal_dir, "site{}.wal".format(site))
                    if wal_dir is not None else None)
        servers[site] = SiteServer(
            spec, site, wal_path=wal_path,
            anti_entropy_interval=anti_entropy_interval)
        await servers[site].start()
    client = ClusterClient(spec, timeout=5.0)
    await client.wait_ready()
    return servers, client


async def stop_cluster(servers, client):
    await client.close()
    for server in servers.values():
        await server.stop()


@pytest.mark.parametrize("protocol,seed,base_port", [
    ("dag_wt", 3, 7510),
    ("backedge", 5, 7515),
])
def test_live_mixed_workload_converges_and_serializes(
        protocol, seed, base_port, tmp_path):
    spec = make_spec(protocol, seed, base_port)

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        try:
            return await generate_load(spec, client, verify=True)
        finally:
            await stop_cluster(servers, client)

    report = asyncio.run(scenario())
    expected = (PARAMS.n_sites * PARAMS.threads_per_site *
                PARAMS.transactions_per_thread)
    assert report.committed + report.aborted == expected
    assert report.unknown == 0
    assert report.committed > 0
    assert report.convergent, "divergent replicas: {}".format(
        report.divergent)
    assert report.serializable
    assert report.throughput > 0
    assert 0 <= report.latency["p50"] <= report.latency["p95"] \
        <= report.latency["p99"]


def test_live_batched_run_converges_and_keeps_pace(tmp_path):
    """Perf smoke for the group-commit/batching hot path: a 3-site
    batched run must stay correct (convergent, DSG-acyclic) and keep
    pace with the unbatched baseline.

    The threshold is deliberately noise-tolerant (0.7x) — tier-1 must
    not flake on a loaded CI box; the strict >= 2x assertion lives in
    ``benchmarks/bench_live_cluster.py`` where fsync durability makes
    the amortization the bottleneck under test."""
    params = PARAMS.replaced(threads_per_site=3,
                             transactions_per_thread=12,
                             read_txn_probability=0.1)

    def run(batch, base_port, wal_dir):
        spec = ClusterSpec(params=params, protocol="dag_wt", seed=3,
                           base_port=base_port, batch=batch)

        async def scenario():
            servers, client = await start_cluster(spec,
                                                  wal_dir=wal_dir)
            try:
                return await generate_load(spec, client, verify=True,
                                           loop_mode="open")
            finally:
                await stop_cluster(servers, client)

        return asyncio.run(scenario())

    os.mkdir(os.path.join(str(tmp_path), "plain"))
    os.mkdir(os.path.join(str(tmp_path), "batched"))
    baseline = run(1, 7530, os.path.join(str(tmp_path), "plain"))
    batched = run(32, 7535, os.path.join(str(tmp_path), "batched"))

    expected = (params.n_sites * params.threads_per_site *
                params.transactions_per_thread)
    for report in (baseline, batched):
        assert report.committed + report.aborted == expected
        assert report.unknown == 0
        assert report.convergent, "divergent: {}".format(
            report.divergent)
        assert report.serializable
    # The batched run really batched: fewer wire frames than messages
    # and fewer log syncs than the per-record baseline.
    assert batched.frames_sent < batched.messages_sent
    assert batched.wal_syncs < baseline.wal_syncs
    # And it pays no throughput price for it.
    assert batched.throughput >= 0.7 * baseline.throughput, \
        "batched {:.1f} txn/s vs baseline {:.1f} txn/s".format(
            batched.throughput, baseline.throughput)


def test_mixed_batched_and_unbatched_members_interoperate(tmp_path):
    """``batch``/``durability`` are per-process perf knobs, excluded
    from the cluster fingerprint: a batched site and unbatched sites
    must form one cluster (the wire is self-describing) and still pass
    both oracles."""
    batched_spec = ClusterSpec(params=PARAMS, protocol="dag_wt",
                               seed=3, base_port=7540, batch=32)
    plain_spec = ClusterSpec(params=PARAMS, protocol="dag_wt",
                             seed=3, base_port=7540, batch=1)
    assert batched_spec.fingerprint() == plain_spec.fingerprint()

    async def scenario():
        servers = {}
        for site in range(PARAMS.n_sites):
            spec = batched_spec if site == 0 else plain_spec
            servers[site] = SiteServer(
                spec, site,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(site)),
                anti_entropy_interval=0.3)
            await servers[site].start()
        client = ClusterClient(plain_spec, timeout=5.0)
        await client.wait_ready()
        try:
            return await generate_load(plain_spec, client, verify=True)
        finally:
            await stop_cluster(servers, client)

    report = asyncio.run(scenario())
    assert report.committed > 0
    assert report.unknown == 0
    assert report.convergent
    assert report.serializable


def test_dag_wt_survives_kill_and_wal_restart(tmp_path):
    """The acceptance scenario: a replica site is killed mid-workload
    and restarted from stable storage; convergence and an acyclic DSG
    must still hold over the full run."""
    spec = make_spec("dag_wt", 3, 7520)
    placement = spec.build_placement()
    victim = 2

    def wal_path(site):
        return os.path.join(str(tmp_path), "site{}.wal".format(site))

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        generator = TransactionGenerator(
            spec.params, placement,
            RngRegistry(spec.seed).stream("workload"))
        outcomes = {"committed": 0, "aborted": 0, "unknown": 0}

        async def worker(site, thread):
            for txn_spec in generator.thread_stream(site, thread):
                outcome = await client.run_transaction(txn_spec)
                outcomes[outcome["status"]] += 1
                await asyncio.sleep(0.005)

        async def crash_and_restart():
            await asyncio.sleep(0.1)
            servers[victim].kill()
            await asyncio.sleep(0.3)
            servers[victim] = SiteServer(
                spec, victim, wal_path=wal_path(victim),
                anti_entropy_interval=0.3)
            await servers[victim].start()

        await asyncio.gather(
            crash_and_restart(),
            *(worker(site, thread)
              for site in range(spec.params.n_sites)
              for thread in range(spec.params.threads_per_site)))

        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        try:
            return servers[victim], outcomes, statuses
        finally:
            await stop_cluster(servers, client)

    restarted, outcomes, statuses = asyncio.run(scenario())

    # The victim really did recover from its log, not from scratch.
    assert restarted.recovered
    assert statuses[victim]["recovered"]
    assert statuses[victim]["wal_records"] > 0
    assert outcomes["committed"] > 0

    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    assert divergent_copies(placement, state) == []
    histories = [history_from_status(status)
                 for status in statuses.values()]
    cycle = find_dsg_cycle(build_serialization_graph(histories))
    assert cycle is None, "DSG cycle after recovery: {}".format(cycle)


def test_recovered_site_keeps_serving_transactions(tmp_path):
    """After a WAL restart the victim accepts new primaries and its
    updates propagate — the rejoin is full, not read-only."""
    spec = make_spec("dag_wt", 3, 7525)
    placement = spec.build_placement()
    victim = 2

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        from repro.types import (
            GlobalTransactionId, Operation, OpType, TransactionSpec)

        def txn(site, seq, item):
            return TransactionSpec(
                GlobalTransactionId(site, seq), site,
                (Operation(OpType.WRITE, item),))

        primaries = sorted(placement.primary_items_at(victim))
        if not primaries:
            pytest.skip("victim has no primary items for this seed")
        first = await client.run_transaction(
            txn(victim, 0, primaries[0]))
        servers[victim].kill()
        await asyncio.sleep(0.2)
        servers[victim] = SiteServer(
            spec, victim,
            wal_path=os.path.join(str(tmp_path),
                                  "site{}.wal".format(victim)),
            anti_entropy_interval=0.3)
        await servers[victim].start()
        second = await client.run_transaction(
            txn(victim, 1, primaries[0]))
        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        try:
            return first, second, statuses
        finally:
            await stop_cluster(servers, client)

    first, second, statuses = asyncio.run(scenario())
    assert first["status"] == "committed"
    assert second["status"] == "committed"
    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    assert divergent_copies(placement, state) == []
