"""Live-cluster acceptance tests: real sockets, real clocks, and the
simulator's own oracles.

Each test boots every site of the copy graph as a :class:`SiteServer`
on localhost, drives the paper's closed-loop workload through the TCP
client, waits for propagation to quiesce, and then verifies the two
global correctness properties with the same checkers the simulation
harness uses: value convergence of every replica
(:func:`~repro.harness.convergence.divergent_copies`) and acyclicity of
the dynamic serialization graph rebuilt from the sites' reported
histories.

The kill/restart test is the reliability story end to end: a replica
site dies abruptly mid-workload (volatile state dropped), restarts from
its WAL, replays its durable inbox journal, and catches up over the
anti-entropy plane — after which the cluster must be convergent and
serializable as if the crash never happened.
"""

import asyncio
import os

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.codec import decode_value
from repro.cluster.loadgen import (
    generate_load,
    history_from_status,
    wait_quiescent,
)
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.harness.convergence import divergent_copies
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.sim.rng import RngRegistry
from repro.workload.generator import TransactionGenerator
from repro.workload.params import WorkloadParams

#: Seed 3 yields a DAG copy graph for these parameters (required by
#: DAG(WT)); seed 5's graph has back edges (exercised by BackEdge).
PARAMS = WorkloadParams(n_sites=3, n_items=12,
                        replication_probability=0.8,
                        threads_per_site=2, transactions_per_thread=6,
                        read_txn_probability=0.3,
                        deadlock_timeout=0.05)


def make_spec(protocol, seed, base_port):
    return ClusterSpec(params=PARAMS, protocol=protocol, seed=seed,
                       base_port=base_port)


async def start_cluster(spec, wal_dir=None, anti_entropy_interval=0.3):
    servers = {}
    for site in range(spec.params.n_sites):
        wal_path = (os.path.join(wal_dir, "site{}.wal".format(site))
                    if wal_dir is not None else None)
        servers[site] = SiteServer(
            spec, site, wal_path=wal_path,
            anti_entropy_interval=anti_entropy_interval)
        await servers[site].start()
    client = ClusterClient(spec, timeout=5.0)
    await client.wait_ready()
    return servers, client


async def stop_cluster(servers, client):
    await client.close()
    for server in servers.values():
        await server.stop()


@pytest.mark.parametrize("protocol,seed,base_port", [
    ("dag_wt", 3, 7510),
    ("backedge", 5, 7515),
])
def test_live_mixed_workload_converges_and_serializes(
        protocol, seed, base_port, tmp_path):
    spec = make_spec(protocol, seed, base_port)

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        try:
            return await generate_load(spec, client, verify=True)
        finally:
            await stop_cluster(servers, client)

    report = asyncio.run(scenario())
    expected = (PARAMS.n_sites * PARAMS.threads_per_site *
                PARAMS.transactions_per_thread)
    assert report.committed + report.aborted == expected
    assert report.unknown == 0
    assert report.committed > 0
    assert report.convergent, "divergent replicas: {}".format(
        report.divergent)
    assert report.serializable
    assert report.throughput > 0
    assert 0 <= report.latency["p50"] <= report.latency["p95"] \
        <= report.latency["p99"]


def test_live_batched_run_converges_and_keeps_pace(tmp_path):
    """Perf smoke for the group-commit/batching hot path: a 3-site
    batched run must stay correct (convergent, DSG-acyclic) and keep
    pace with the unbatched baseline.

    The threshold is deliberately noise-tolerant (0.7x) — tier-1 must
    not flake on a loaded CI box; the strict >= 2x assertion lives in
    ``benchmarks/bench_live_cluster.py`` where fsync durability makes
    the amortization the bottleneck under test."""
    params = PARAMS.replaced(threads_per_site=3,
                             transactions_per_thread=12,
                             read_txn_probability=0.1)

    def run(batch, base_port, wal_dir):
        spec = ClusterSpec(params=params, protocol="dag_wt", seed=3,
                           base_port=base_port, batch=batch)

        async def scenario():
            servers, client = await start_cluster(spec,
                                                  wal_dir=wal_dir)
            try:
                return await generate_load(spec, client, verify=True,
                                           loop_mode="open")
            finally:
                await stop_cluster(servers, client)

        return asyncio.run(scenario())

    os.mkdir(os.path.join(str(tmp_path), "plain"))
    os.mkdir(os.path.join(str(tmp_path), "batched"))
    baseline = run(1, 7530, os.path.join(str(tmp_path), "plain"))
    batched = run(32, 7535, os.path.join(str(tmp_path), "batched"))

    expected = (params.n_sites * params.threads_per_site *
                params.transactions_per_thread)
    for report in (baseline, batched):
        assert report.committed + report.aborted == expected
        assert report.unknown == 0
        assert report.convergent, "divergent: {}".format(
            report.divergent)
        assert report.serializable
    # The batched run really batched: fewer wire frames than messages
    # and fewer log syncs than the per-record baseline.
    assert batched.frames_sent < batched.messages_sent
    assert batched.wal_syncs < baseline.wal_syncs
    # And it pays no throughput price for it.
    assert batched.throughput >= 0.7 * baseline.throughput, \
        "batched {:.1f} txn/s vs baseline {:.1f} txn/s".format(
            batched.throughput, baseline.throughput)


def test_mixed_batched_and_unbatched_members_interoperate(tmp_path):
    """``batch``/``durability`` are per-process perf knobs, excluded
    from the cluster fingerprint: a batched site and unbatched sites
    must form one cluster (the wire is self-describing) and still pass
    both oracles."""
    batched_spec = ClusterSpec(params=PARAMS, protocol="dag_wt",
                               seed=3, base_port=7540, batch=32)
    plain_spec = ClusterSpec(params=PARAMS, protocol="dag_wt",
                             seed=3, base_port=7540, batch=1)
    assert batched_spec.fingerprint() == plain_spec.fingerprint()

    async def scenario():
        servers = {}
        for site in range(PARAMS.n_sites):
            spec = batched_spec if site == 0 else plain_spec
            servers[site] = SiteServer(
                spec, site,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(site)),
                anti_entropy_interval=0.3)
            await servers[site].start()
        client = ClusterClient(plain_spec, timeout=5.0)
        await client.wait_ready()
        try:
            return await generate_load(plain_spec, client, verify=True)
        finally:
            await stop_cluster(servers, client)

    report = asyncio.run(scenario())
    assert report.committed > 0
    assert report.unknown == 0
    assert report.convergent
    assert report.serializable


def test_dag_wt_survives_kill_and_wal_restart(tmp_path):
    """The acceptance scenario: a replica site is killed mid-workload
    and restarted from stable storage; convergence and an acyclic DSG
    must still hold over the full run."""
    spec = make_spec("dag_wt", 3, 7520)
    placement = spec.build_placement()
    victim = 2

    def wal_path(site):
        return os.path.join(str(tmp_path), "site{}.wal".format(site))

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        generator = TransactionGenerator(
            spec.params, placement,
            RngRegistry(spec.seed).stream("workload"))
        outcomes = {"committed": 0, "aborted": 0, "unknown": 0}

        async def worker(site, thread):
            for txn_spec in generator.thread_stream(site, thread):
                outcome = await client.run_transaction(txn_spec)
                outcomes[outcome["status"]] += 1
                await asyncio.sleep(0.005)

        async def crash_and_restart():
            await asyncio.sleep(0.1)
            servers[victim].kill()
            await asyncio.sleep(0.3)
            servers[victim] = SiteServer(
                spec, victim, wal_path=wal_path(victim),
                anti_entropy_interval=0.3)
            await servers[victim].start()

        await asyncio.gather(
            crash_and_restart(),
            *(worker(site, thread)
              for site in range(spec.params.n_sites)
              for thread in range(spec.params.threads_per_site)))

        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        try:
            return servers[victim], outcomes, statuses
        finally:
            await stop_cluster(servers, client)

    restarted, outcomes, statuses = asyncio.run(scenario())

    # The victim really did recover from its log, not from scratch.
    assert restarted.recovered
    assert statuses[victim]["recovered"]
    assert statuses[victim]["wal_records"] > 0
    assert outcomes["committed"] > 0

    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    assert divergent_copies(placement, state) == []
    histories = [history_from_status(status)
                 for status in statuses.values()]
    cycle = find_dsg_cycle(build_serialization_graph(histories))
    assert cycle is None, "DSG cycle after recovery: {}".format(cycle)


def test_recovered_site_keeps_serving_transactions(tmp_path):
    """After a WAL restart the victim accepts new primaries and its
    updates propagate — the rejoin is full, not read-only."""
    spec = make_spec("dag_wt", 3, 7525)
    placement = spec.build_placement()
    victim = 2

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        from repro.types import (
            GlobalTransactionId, Operation, OpType, TransactionSpec)

        def txn(site, seq, item):
            return TransactionSpec(
                GlobalTransactionId(site, seq), site,
                (Operation(OpType.WRITE, item),))

        primaries = sorted(placement.primary_items_at(victim))
        if not primaries:
            pytest.skip("victim has no primary items for this seed")
        first = await client.run_transaction(
            txn(victim, 0, primaries[0]))
        servers[victim].kill()
        await asyncio.sleep(0.2)
        servers[victim] = SiteServer(
            spec, victim,
            wal_path=os.path.join(str(tmp_path),
                                  "site{}.wal".format(victim)),
            anti_entropy_interval=0.3)
        await servers[victim].start()
        second = await client.run_transaction(
            txn(victim, 1, primaries[0]))
        statuses = await wait_quiescent(client, timeout=20.0,
                                        settle_polls=3)
        try:
            return first, second, statuses
        finally:
            await stop_cluster(servers, client)

    first, second, statuses = asyncio.run(scenario())
    assert first["status"] == "committed"
    assert second["status"] == "committed"
    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    assert divergent_copies(placement, state) == []


# ----------------------------------------------------------------------
# Observability (repro.obs wired through the live runtime)
# ----------------------------------------------------------------------

def test_stats_trace_wire_ops_and_durability_status(tmp_path):
    """The observability plane end to end: the ``stats`` op serves a
    schema-valid metrics snapshot with the hot-path instruments
    populated, the ``trace`` op serves spans that reconstruct into
    complete propagation trees, the load report carries the propagation
    and version-lag aggregates, and ``status`` exposes the WAL/journal
    durability sub-dicts plus the apply-queue high-water mark."""
    from repro.obs import (propagation_summary, reconstruct,
                           validate_snapshot)

    spec = make_spec("dag_wt", 3, 7545)

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        try:
            report = await generate_load(spec, client, verify=True)
            stats = await client.stats_all()
            spans = await client.traces_all()
            statuses = await client.statuses()
            return report, stats, spans, statuses
        finally:
            await stop_cluster(servers, client)

    report, stats, spans, statuses = asyncio.run(scenario())

    # -- stats op: schema-valid, hot-path instruments populated.
    committed = frames = 0
    for site, response in stats.items():
        assert response["obs"] is True
        validate_snapshot(response["stats"])
        snapshot = response["stats"]
        assert snapshot["enabled"] is True
        committed += snapshot["counters"].get("txn.committed", 0)
        frames += snapshot["counters"].get("net.frames_sent", 0)
        assert snapshot["histograms"]["wal.sync_s"]["count"] > 0
        assert snapshot["histograms"]["journal.sync_s"]["count"] >= 0
        assert snapshot["histograms"]["server.drive_s"]["count"] > 0
    assert committed == report.committed
    assert frames > 0

    # -- trace op: the pooled spans rebuild complete trees whose
    # aggregate matches what the load report embedded.
    assert spans
    summary = propagation_summary(reconstruct(spans))
    assert summary["propagating"] > 0
    assert summary["complete"] == summary["propagating"]
    assert report.obs
    assert report.propagation["complete"] == summary["complete"]
    assert report.propagation["p50"] <= report.propagation["p95"] \
        <= report.propagation["max"]
    assert report.version_lag["samples"] >= 1
    assert 0.0 <= report.version_lag["fraction_current"] <= 1.0

    # -- status satellite: durability counters + queue high-water mark.
    for site, status in statuses.items():
        for log in ("wal", "journal"):
            for key in ("records", "appended", "syncs", "bytes",
                        "pending", "abandoned"):
                assert status[log][key] >= 0
        assert status["wal"]["bytes"] > 0
        assert status["wal"]["records"] == status["wal_records"]
        assert status["wal"]["syncs"] == status["wal_syncs"]
        assert status["journal"]["records"] == \
            status["journal_records"]
        assert status["apply_queue_hwm"] >= 0
        assert status["obs"] is True


def test_mixed_obs_and_plain_members_interoperate(tmp_path):
    """``obs`` is a per-process knob excluded from the fingerprint: an
    instrumented member and plain members form one cluster, stamped
    frames decode identically on both, and the plain member exposes a
    disabled (stateless, still schema-valid) stats snapshot."""
    from repro.obs import validate_snapshot

    obs_spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                           base_port=7550, obs=True)
    plain_spec = ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                             base_port=7550, obs=False)
    assert obs_spec.fingerprint() == plain_spec.fingerprint()

    async def scenario():
        servers = {}
        for site in range(PARAMS.n_sites):
            spec = plain_spec if site == 0 else obs_spec
            servers[site] = SiteServer(
                spec, site,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(site)),
                anti_entropy_interval=0.3)
            await servers[site].start()
        client = ClusterClient(obs_spec, timeout=5.0)
        await client.wait_ready()
        try:
            report = await generate_load(obs_spec, client, verify=True)
            stats = await client.stats_all()
            traces = {site: await client.trace(site)
                      for site in range(PARAMS.n_sites)}
            return report, stats, traces
        finally:
            await stop_cluster(servers, client)

    report, stats, traces = asyncio.run(scenario())
    assert report.committed > 0
    assert report.unknown == 0
    assert report.convergent
    assert report.serializable

    # The plain member records nothing and serves the empty snapshot...
    assert stats[0]["obs"] is False
    assert stats[0]["stats"]["enabled"] is False
    assert stats[0]["stats"]["counters"] == {}
    validate_snapshot(stats[0]["stats"])
    assert traces[0]["spans"] == []
    # ...while instrumented members observed real traffic, including
    # frames from the un-stamped member (re-derived from the payload).
    assert stats[1]["stats"]["counters"]["server.frames_decoded"] > 0
    received_from_plain = [
        span for span in traces[1]["spans"] + traces[2]["spans"]
        if span["event"] == "received" and span.get("peer") == 0]
    assert received_from_plain
    assert all(span.get("trace") for span in received_from_plain)


def test_trace_ids_survive_kill_restart_and_catchup(tmp_path):
    """The tracing crash-safety invariant: trace ids are re-derived
    deterministically, so spans recorded before a crash (in the JSONL
    file), after the WAL restart (replayed / re-forwarded), and over
    the anti-entropy plane (caught-up) all stitch into the same trees —
    and after quiescence every propagating tree is complete."""
    import re

    from repro.obs import propagation_summary, reconstruct
    from repro.obs.trace import load_trace_file

    spec = make_spec("dag_wt", 3, 7555)
    placement = spec.build_placement()
    victim = 2

    async def scenario():
        servers, client = await start_cluster(spec,
                                              wal_dir=str(tmp_path))
        generator = TransactionGenerator(
            spec.params, placement,
            RngRegistry(spec.seed).stream("workload"))

        async def worker(site, thread):
            for txn_spec in generator.thread_stream(site, thread):
                await client.run_transaction(txn_spec)
                await asyncio.sleep(0.005)

        async def crash_and_restart():
            await asyncio.sleep(0.1)
            servers[victim].kill()
            await asyncio.sleep(0.3)
            servers[victim] = SiteServer(
                spec, victim,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(victim)),
                anti_entropy_interval=0.3)
            await servers[victim].start()

        await asyncio.gather(
            crash_and_restart(),
            *(worker(site, thread)
              for site in range(spec.params.n_sites)
              for thread in range(spec.params.threads_per_site)))
        await wait_quiescent(client, timeout=20.0, settle_polls=3)
        live_spans = await client.traces_all()
        try:
            return live_spans
        finally:
            await stop_cluster(servers, client)

    live_spans = asyncio.run(scenario())

    # Pool the live rings with the on-disk JSONL sinks: the victim's
    # pre-crash ring died with it, but its file did not.
    spans = list(live_spans)
    for site in range(spec.params.n_sites):
        path = os.path.join(str(tmp_path),
                            "site{}.wal.trace".format(site))
        spans.extend(load_trace_file(path))

    # Every stamped id has the deterministic shape.
    tids = {span["trace"] for span in spans if "trace" in span}
    assert tids
    assert all(re.fullmatch(r"t\d+\.\d+", tid) for tid in tids)

    # The victim saw the failure/recovery paths, attributed to traces.
    victim_events = {span["event"] for span in spans
                     if span["site"] == victim}
    assert victim_events & {"replayed", "caught-up", "received"}

    # The headline invariant: ids survived restart, re-forward, and
    # catch-up, so reconstruction closes every propagating tree.
    summary = propagation_summary(reconstruct(spans))
    assert summary["propagating"] > 0
    assert summary["complete"] == summary["propagating"], summary
