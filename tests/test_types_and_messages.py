"""Tests for the shared value types and message plumbing."""

import pytest

from repro.network.message import Message, MessageType
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    SubtransactionKind,
    TransactionSpec,
)


def test_gid_ordering_and_rendering():
    first = GlobalTransactionId(0, 1)
    second = GlobalTransactionId(0, 2)
    other_site = GlobalTransactionId(1, 1)
    assert first < second < other_site
    assert str(first) == "T0.1"
    assert first == GlobalTransactionId(0, 1)
    assert len({first, GlobalTransactionId(0, 1)}) == 1


def test_operation_predicates():
    read = Operation(OpType.READ, "x")
    write = Operation(OpType.WRITE, "x")
    assert read.is_read and not read.is_write
    assert write.is_write and not write.is_read


def test_transaction_spec_helpers():
    spec = TransactionSpec(
        GlobalTransactionId(2, 7), 2,
        (Operation(OpType.READ, "a"), Operation(OpType.WRITE, "b"),
         Operation(OpType.READ, "c"), Operation(OpType.WRITE, "b")))
    assert spec.read_items == ("a", "c")
    assert spec.write_items == ("b", "b")
    assert not spec.is_read_only
    read_only = TransactionSpec(
        GlobalTransactionId(0, 1), 0,
        (Operation(OpType.READ, "a"),))
    assert read_only.is_read_only


def test_subtransaction_kinds_cover_paper_roles():
    values = {kind.value for kind in SubtransactionKind}
    assert values == {"primary", "secondary", "backedge", "special",
                      "dummy"}


def test_message_ids_are_unique_and_repr_readable():
    first = Message(MessageType.SECONDARY, 0, 1, {})
    second = Message(MessageType.SECONDARY, 0, 1, {})
    assert first.msg_id != second.msg_id
    assert "secondary" in repr(first)
    assert "s0->s1" in repr(first)


def test_message_type_values_are_distinct():
    values = [msg_type.value for msg_type in MessageType]
    assert len(values) == len(set(values))


def test_spec_is_immutable():
    spec = TransactionSpec(GlobalTransactionId(0, 1), 0, ())
    with pytest.raises(AttributeError):
        spec.origin = 5
