"""Tests for the harness extras: ASCII plots, multi-seed analysis,
serialization-order witnesses, and event tracing."""

import pytest

from repro.errors import SerializabilityViolation
from repro.harness.analysis import MetricSummary, compare, replicate
from repro.harness.plots import render_series, render_sweep
from repro.harness.runner import ExperimentConfig
from repro.harness.serializability import serialization_order
from repro.harness.sweep import sweep
from repro.harness.tracing import Tracer
from repro.types import GlobalTransactionId
from repro.workload.params import WorkloadParams

TINY = WorkloadParams(n_sites=3, n_items=30, transactions_per_thread=6,
                      threads_per_site=2)


# ----------------------------------------------------------------------
# serialization_order
# ----------------------------------------------------------------------


def gid(seq):
    return GlobalTransactionId(0, seq)


def test_witness_respects_edges():
    graph = {gid(1): {gid(2)}, gid(2): {gid(3)}, gid(3): set(),
             gid(4): {gid(3)}}
    order = serialization_order(graph)
    assert set(order) == set(graph)
    position = {node: index for index, node in enumerate(order)}
    for node, successors in graph.items():
        for succ in successors:
            assert position[node] < position[succ]


def test_witness_raises_on_cycle():
    graph = {gid(1): {gid(2)}, gid(2): {gid(1)}}
    with pytest.raises(SerializabilityViolation):
        serialization_order(graph)


def test_witness_deterministic_tie_break():
    graph = {gid(3): set(), gid(1): set(), gid(2): set()}
    assert serialization_order(graph) == [gid(1), gid(2), gid(3)]


def test_witness_from_real_run():
    from repro.harness.runner import run_experiment
    from repro.harness.serializability import build_serialization_graph
    from repro.harness.runner import build_system
    result = run_experiment(
        ExperimentConfig(protocol="backedge", params=TINY, seed=1))
    assert result.serializable


# ----------------------------------------------------------------------
# Plots
# ----------------------------------------------------------------------


def test_render_series_contains_markers_axis_and_legend():
    chart = render_series(
        {"backedge": [(0.0, 20.0), (0.5, 15.0), (1.0, 12.0)],
         "psl": [(0.0, 10.0), (0.5, 9.0), (1.0, 8.0)]},
        title="demo")
    assert "demo" in chart
    assert "*" in chart and "o" in chart
    assert "legend: * backedge   o psl" in chart
    assert "+" + "-" * 3 in chart  # The x axis baseline.


def test_render_series_empty():
    assert render_series({}) == "(no data)"
    assert render_series({"a": []}) == "(no data)"


def test_render_series_single_point():
    chart = render_series({"only": [(5, 3.0)]})
    assert "*" in chart
    assert "5" in chart


def test_render_sweep_end_to_end():
    points = sweep("backedge_probability", [0.0, 1.0], ["backedge"],
                   base_params=TINY, seed=1)
    chart = render_sweep(points, title="fig")
    assert "fig" in chart
    assert "average throughput" in chart
    assert render_sweep([], title="x") == "(no data)"


def test_render_handles_zero_values():
    chart = render_series({"flat": [(0, 0.0), (1, 0.0)]})
    assert "legend" in chart


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------


def test_replicate_runs_each_seed():
    replication = replicate(
        ExperimentConfig(protocol="backedge", params=TINY), seeds=[1, 2])
    assert len(replication.results) == 2
    summary = replication.summary()
    assert summary.n == 2
    assert summary.minimum <= summary.mean <= summary.maximum


def test_metric_summary_statistics():
    summary = MetricSummary("m", n=4, mean=10.0, stdev=2.0,
                            minimum=8.0, maximum=12.0)
    assert summary.sem == pytest.approx(1.0)
    low, high = summary.ci95()
    assert low == pytest.approx(10 - 1.96)
    assert high == pytest.approx(10 + 1.96)
    assert "10.00 +/- 2.00" in str(summary)


def test_single_seed_summary_has_zero_stdev():
    replication = replicate(
        ExperimentConfig(protocol="backedge", params=TINY), seeds=[3])
    summary = replication.summary()
    assert summary.stdev == 0.0
    assert summary.sem == 0.0


def test_compare_backedge_beats_psl():
    outcome = compare(
        ExperimentConfig(protocol="backedge", params=TINY),
        ExperimentConfig(protocol="psl", params=TINY),
        seeds=[1, 2, 3])
    assert outcome["n"] == 3
    assert outcome["mean_ratio"] > 1.0
    assert outcome["win_fraction"] >= 2 / 3


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


def test_tracer_collects_protocol_events():
    from repro.harness.runner import build_system
    from repro.sim.events import AllOf
    from repro.errors import TransactionAborted

    config = ExperimentConfig(protocol="backedge", params=TINY, seed=1)
    env, system, protocol, generator = build_system(config)
    tracer = Tracer()
    system.observers.append(tracer)

    processes = []
    for site_id in range(TINY.n_sites):
        ref = []

        def client(site_id=site_id, ref=ref):
            for spec in generator.thread_stream(site_id, 0):
                try:
                    yield from protocol.run_transaction(site_id, spec,
                                                        ref[0])
                except TransactionAborted:
                    pass

        ref.append(env.process(client()))
        processes.append(ref[0])
    env.run(until=AllOf(env, processes))
    env.run(until=env.now + 2.0)

    commits = tracer.of_kind("primary_commit")
    assert commits
    # For some committed txn with replicas, applications follow commit.
    for event in commits:
        if event.details["expected_replicas"]:
            chain = tracer.propagation_events(event.gid)
            assert chain[0].kind == "primary_commit"
            assert all(later.time >= event.time for later in chain)
            break
    assert "primary_commit" in tracer.tail()


def test_tracer_capacity_bound():
    tracer = Tracer(capacity=2)
    tracer.on_primary_commit(gid(1), 0, 1.0, set())
    tracer.on_replica_commit(gid(1), 1, 2.0)
    tracer.on_replica_commit(gid(1), 2, 3.0)
    assert len(tracer) == 2
    assert tracer.dropped == 1
    assert "dropped" in tracer.tail()


def test_tracer_queries():
    tracer = Tracer()
    tracer.on_primary_commit(gid(1), 0, 1.0, {1})
    tracer.on_replica_commit(gid(1), 1, 2.0)
    tracer.on_primary_commit(gid(2), 0, 3.0, set())
    assert len(tracer.of_gid(gid(1))) == 2
    assert len(tracer.of_kind("primary_commit")) == 2
    assert [event.site for event
            in tracer.propagation_events(gid(1))] == [0, 1]
