"""Tests for waits-for graph construction and cycle detection."""

from repro.sim import Environment
from repro.storage import (
    LockManager,
    LockMode,
    find_waits_for_cycle,
    waits_for_graph,
)
from repro.storage.transaction import Transaction
from repro.types import GlobalTransactionId, SubtransactionKind


def make_txn(seq):
    return Transaction(GlobalTransactionId(0, seq), 0,
                       SubtransactionKind.PRIMARY, 0.0)


def test_no_waits_no_graph():
    manager = LockManager(Environment(), timeout=None)
    t1 = make_txn(1)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    assert waits_for_graph(manager) == {}
    assert find_waits_for_cycle(manager) is None


def test_simple_wait_edge():
    manager = LockManager(Environment(), timeout=None)
    t1, t2 = make_txn(1), make_txn(2)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.acquire(t2, "a", LockMode.SHARED)
    graph = waits_for_graph(manager)
    assert graph == {t2: {t1}}
    assert find_waits_for_cycle(manager) is None


def test_shared_shared_wait_through_queued_exclusive():
    """A shared request queued behind an exclusive waiter conflicts with
    the exclusive *holders*, not with compatible shared holders."""
    manager = LockManager(Environment(), timeout=None)
    t1, t2, t3 = make_txn(1), make_txn(2), make_txn(3)
    manager.acquire(t1, "a", LockMode.SHARED)
    manager.acquire(t2, "a", LockMode.EXCLUSIVE)  # queued
    manager.acquire(t3, "a", LockMode.SHARED)     # queued behind X
    graph = waits_for_graph(manager)
    assert graph[t2] == {t1}
    # t3 waits on no *conflicting holder* (t1 is compatible): the FIFO
    # queue, not a lock conflict, is what delays it.
    assert t3 not in graph


def test_two_transaction_deadlock_cycle_found():
    manager = LockManager(Environment(), timeout=None)
    t1, t2 = make_txn(1), make_txn(2)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.acquire(t2, "b", LockMode.EXCLUSIVE)
    manager.acquire(t1, "b", LockMode.EXCLUSIVE)
    manager.acquire(t2, "a", LockMode.EXCLUSIVE)
    cycle = find_waits_for_cycle(manager)
    assert cycle is not None
    assert set(cycle) == {t1, t2}
    # Cycle closes on itself.
    assert cycle[0] is cycle[-1]


def test_three_transaction_cycle_found():
    manager = LockManager(Environment(), timeout=None)
    txns = [make_txn(i) for i in range(3)]
    items = ["a", "b", "c"]
    for txn, item in zip(txns, items):
        manager.acquire(txn, item, LockMode.EXCLUSIVE)
    for i, txn in enumerate(txns):
        manager.acquire(txn, items[(i + 1) % 3], LockMode.EXCLUSIVE)
    cycle = find_waits_for_cycle(manager)
    assert cycle is not None
    assert set(cycle) == set(txns)


def test_upgrade_deadlock_detected():
    """Two shared holders both requesting upgrade deadlock on each other."""
    manager = LockManager(Environment(), timeout=None)
    t1, t2 = make_txn(1), make_txn(2)
    manager.acquire(t1, "a", LockMode.SHARED)
    manager.acquire(t2, "a", LockMode.SHARED)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.acquire(t2, "a", LockMode.EXCLUSIVE)
    cycle = find_waits_for_cycle(manager)
    assert cycle is not None
    assert set(cycle) == {t1, t2}


def test_wait_chain_without_cycle():
    manager = LockManager(Environment(), timeout=None)
    t1, t2, t3 = make_txn(1), make_txn(2), make_txn(3)
    manager.acquire(t1, "a", LockMode.EXCLUSIVE)
    manager.acquire(t2, "a", LockMode.EXCLUSIVE)
    manager.acquire(t3, "a", LockMode.EXCLUSIVE)
    assert find_waits_for_cycle(manager) is None
