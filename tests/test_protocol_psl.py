"""Integration tests for the primary-site-locking baseline (Sec. 5.1)."""

import pytest

from repro.errors import PlacementError, TransactionAborted
from repro.graph.placement import DataPlacement
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from repro.types import SubtransactionKind
from tests.helpers import (
    histories,
    make_system,
    no_locks_leaked,
    run_client,
    spec,
)


def two_site_placement():
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    return placement


def test_remote_read_ships_latest_value():
    """A replica read goes to the primary site and sees the latest
    committed value there, not the stale local replica."""
    env, system, proto = make_system(two_site_placement(), "psl")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    run_client(env, proto, spec(1, 1, ("r", "a")), 0.1, outcomes)
    env.run(until=1.0)
    assert [status for _g, status, _t in outcomes] == ["committed"] * 2
    # The read was recorded at the *primary* site (s0) with version 1.
    s0_entries = [entry for entry in system.site_of(0).engine.history
                  if entry.gid.site == 1]
    assert len(s0_entries) == 1
    assert s0_entries[0].reads == {"a": 1}
    check_serializable(histories(system))
    assert no_locks_leaked(system)


def test_local_reads_and_writes_stay_local():
    env, system, proto = make_system(two_site_placement(), "psl")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("r", "a"), ("w", "a")), 0.0,
               outcomes)
    env.run(until=1.0)
    assert outcomes[0][1] == "committed"
    assert system.network.total_sent == 0


def test_updates_never_propagate_to_replicas():
    """PSL never pushes updates: the replica copy stays at version 0."""
    env, system, proto = make_system(two_site_placement(), "psl")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.0, outcomes)
    env.run(until=1.0)
    assert system.site_of(0).engine.item("a").committed_version == 1
    assert system.site_of(1).engine.item("a").committed_version == 0


def test_remote_lock_held_until_release_message():
    """The remote S lock must block a local writer at the primary site
    until the reader commits and its release message arrives."""
    env, system, proto = make_system(two_site_placement(), "psl",
                                     lock_timeout=10.0)
    outcomes = []
    # Reader at s1 reads a (remote) then b (local, slow path via many
    # ops to stretch the transaction).
    run_client(env, proto, spec(1, 1, ("r", "a"), *[("r", "b")] * 9),
               0.0, outcomes)
    # Writer at s0 wants X on a shortly after the remote lock lands.
    run_client(env, proto, spec(0, 1, ("w", "a")), 0.005, outcomes)
    env.run(until=2.0)
    statuses = {gid: (status, when) for gid, status, when in outcomes}
    reader_done = statuses[spec(1, 1).gid][1]
    writer_done = statuses[spec(0, 1).gid][1]
    assert statuses[spec(1, 1).gid][0] == "committed"
    assert statuses[spec(0, 1).gid][0] == "committed"
    assert writer_done > reader_done  # Blocked until the release.
    check_serializable(histories(system))


def test_remote_lock_timeout_aborts_origin():
    """If the primary site cannot grant within the timeout, the origin
    transaction aborts (LOCK_DENIED path)."""
    env, system, proto = make_system(two_site_placement(), "psl",
                                     lock_timeout=0.02)
    outcomes = []

    # A long-running writer at s0 pins item a with an X lock.
    def hog():
        site = system.site_of(0)
        txn = site.engine.begin(spec(0, 99).gid,
                                SubtransactionKind.PRIMARY)
        yield from site.engine.write(txn, "a", "pinned")
        yield env.timeout(1.0)
        site.engine.commit(txn)

    env.process(hog())
    run_client(env, proto, spec(1, 1, ("r", "a")), 0.005, outcomes)
    env.run(until=2.0)
    gid, status, _when = outcomes[0]
    assert gid == spec(1, 1).gid
    assert status != "committed"
    assert system.network.sent_by_type[MessageType.LOCK_DENIED] == 1
    assert no_locks_leaked(system)


def test_denied_proxy_with_earlier_locks_released_on_abort():
    """A transaction whose second remote read is denied must release the
    locks its proxy already holds at that site."""
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("c", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    env, system, proto = make_system(placement, "psl", lock_timeout=0.02)
    outcomes = []

    def hog():
        site = system.site_of(0)
        txn = site.engine.begin(spec(0, 99).gid,
                                SubtransactionKind.PRIMARY)
        yield from site.engine.write(txn, "c", "pinned")
        yield env.timeout(1.0)
        site.engine.commit(txn)

    env.process(hog())
    # Reader gets a (granted) then c (denied -> abort).
    run_client(env, proto, spec(1, 1, ("r", "a"), ("r", "c")), 0.005,
               outcomes)
    env.run(until=2.0)
    assert outcomes[0][1] != "committed"
    env.run(until=3.0)
    # Proxy at s0 fully cleaned up: only the hog's history remains.
    assert no_locks_leaked(system)
    s0_entries = [entry for entry in system.site_of(0).engine.history
                  if entry.gid == spec(1, 1).gid]
    assert s0_entries == []  # Aborted proxies record nothing.


def test_write_of_remote_primary_rejected():
    env, system, proto = make_system(two_site_placement(), "psl")
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "b")), 0.0, outcomes)
    with pytest.raises(PlacementError):
        env.run(until=1.0)


def test_global_deadlock_resolved_by_timeout():
    """Classic PSL global deadlock: two transactions holding local X
    locks each request a remote S lock on the other's item."""
    env, system, proto = make_system(two_site_placement(), "psl",
                                     lock_timeout=0.02)
    outcomes = []
    run_client(env, proto, spec(0, 1, ("w", "a"), ("r", "b")), 0.0,
               outcomes)
    run_client(env, proto, spec(1, 1, ("w", "b"), ("r", "a")), 0.0,
               outcomes)
    env.run(until=3.0)
    statuses = [status for _g, status, _t in outcomes]
    assert len(statuses) == 2
    assert statuses.count("committed") <= 1
    assert any(status != "committed" for status in statuses)
    check_serializable(histories(system))
    assert no_locks_leaked(system)
