"""Validation of the Sec. 1.1 FIFO assumption: the DAG protocols are
*correct because* the network delivers in order.  These tests deliver
secondary subtransactions out of order by hand and show the checker
catching the resulting anomalies — evidence the assumption is
load-bearing, not decorative."""

from repro.core.timestamps import SiteTuple, VectorTimestamp
from repro.errors import SerializabilityViolation
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.network.message import Message, MessageType
from repro.testing import ScenarioBuilder
from repro.types import GlobalTransactionId


def test_reordered_secondaries_break_dag_wt():
    """Two writes committed in order T1, T2 at s0; delivering their
    secondaries to s1 in reverse order leaves the replica with T1's
    (older) value on top — a ww inversion the DSG checker flags."""
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0, replicas=[1]))
    env, system, protocol = scenario.build()
    handler = protocol._make_handler(system.site_of(1))
    t1, t2 = GlobalTransactionId(0, 1), GlobalTransactionId(0, 2)

    def drive():
        # Commit T1 then T2 at s0 directly through the engine.
        site0 = system.site_of(0)
        for gid, value in ((t1, "first"), (t2, "second")):
            txn = site0.engine.begin(gid)
            yield from site0.engine.write(txn, "a", value)
            site0.engine.commit(txn)
        # Deliver the secondaries REVERSED (simulating a non-FIFO net).
        handler(Message(MessageType.SECONDARY, 0, 1,
                        {"gid": t2, "writes": {"a": "second"}}))
        yield env.timeout(0.01)
        handler(Message(MessageType.SECONDARY, 0, 1,
                        {"gid": t1, "writes": {"a": "first"}}))

    env.process(drive())
    env.run(until=1.0)
    # Replica ends on the stale value...
    assert system.site_of(1).engine.item("a").value == "first"
    # ... and the global history is non-serializable (ww inversion).
    graph = build_serialization_graph(
        site.engine.history for site in system.sites)
    assert find_dsg_cycle(graph) is not None


def test_fifo_delivery_of_same_messages_is_serializable():
    """Control case: identical traffic in FIFO order is fine."""
    scenario = (ScenarioBuilder(n_sites=2, protocol="dag_wt")
                .item("a", primary=0, replicas=[1]))
    scenario.transaction(0, at=0.0, ops=[("w", "a")])
    scenario.transaction(0, at=0.05, ops=[("w", "a")])
    result = scenario.run(until=1.0)
    assert result.all_committed
    result.check()
    env, system, _protocol = scenario.build()
    assert system.site_of(1).engine.item("a").committed_version == 2


def test_dag_t_rejects_stale_timestamp_delivery_order():
    """DAG(T) is robust where DAG(WT) is not: a smaller-timestamp head
    is executed first even if a larger-timestamp message arrived first
    on another queue (the min-pop rule)."""
    scenario = (ScenarioBuilder(n_sites=3, protocol="dag_t")
                .item("a", primary=0, replicas=[2])
                .item("b", primary=1, replicas=[2]))
    env, system, protocol = scenario.build()
    handler = protocol._make_handler(2)
    t_late = GlobalTransactionId(1, 1)
    t_early = GlobalTransactionId(0, 1)
    ts_early = VectorTimestamp().concat(SiteTuple(protocol.ranks[0], 1))
    ts_late = VectorTimestamp().concat(
        SiteTuple(protocol.ranks[0], 1)).concat(
        SiteTuple(protocol.ranks[1], 1))

    # The later-timestamped message arrives FIRST (other parent's queue).
    handler(Message(MessageType.SECONDARY, 1, 2,
                    {"gid": t_late, "writes": {"b": "late"},
                     "ts": ts_late}))
    handler(Message(MessageType.SECONDARY, 0, 2,
                    {"gid": t_early, "writes": {"a": "early"},
                     "ts": ts_early}))
    env.run(until=1.0)
    history = system.site_of(2).engine.history
    assert [entry.gid for entry in history] == [t_early, t_late]
