"""Wire-codec round trips: every message type, seeded random payloads.

The live cluster serializes whatever the protocols put on the simulated
network, so the codec must invert exactly on the full payload
vocabulary.  Payload builders below follow the per-type conventions
documented on :class:`repro.network.message.MessageType`, and a
coverage test pins the builder table to the enum so a new message type
cannot ship without a round-trip test.
"""

import asyncio
import json
import random

import pytest

from repro.cluster.codec import (
    CodecError,
    decode_batch_frame,
    decode_frame_body,
    decode_message,
    decode_value,
    encode_batch_frame,
    encode_frame,
    encode_message,
    encode_value,
    read_frame,
)
from repro.network.message import Message, MessageType
from repro.types import GlobalTransactionId


def _gid(rng):
    return GlobalTransactionId(rng.randrange(8), rng.randrange(1000))


def _writes(rng):
    return {rng.randrange(50): rng.randrange(10**6)
            for _ in range(rng.randrange(1, 6))}


def _participants(rng):
    return {rng.randrange(8) for _ in range(rng.randrange(1, 4))}


def _catchup_items(rng):
    return {rng.randrange(50): rng.randrange(10)
            for _ in range(rng.randrange(1, 6))}


def _catchup_reply_items(rng):
    return {
        rng.randrange(50): {
            "value": rng.randrange(10**6),
            "version": rng.randrange(1, 20),
            "writers": [_gid(rng) for _ in range(rng.randrange(1, 5))],
            "anchor": _gid(rng) if rng.random() < 0.7 else None,
        }
        for _ in range(rng.randrange(1, 4))}


#: MessageType -> payload builder, per the conventions on MessageType.
PAYLOADS = {
    MessageType.SECONDARY: lambda rng: {
        "gid": _gid(rng), "writes": _writes(rng),
        "origin": rng.randrange(8), "commit_time": rng.random() * 10,
        "timestamp": rng.random() * 10},
    MessageType.DUMMY: lambda rng: {"timestamp": rng.random() * 10},
    MessageType.BACKEDGE: lambda rng: {
        "gid": _gid(rng), "writes": _writes(rng),
        "origin": rng.randrange(8),
        "participants": _participants(rng)},
    MessageType.SPECIAL: lambda rng: {
        "gid": _gid(rng), "writes": _writes(rng),
        "origin": rng.randrange(8), "commit_time": rng.random() * 10,
        "participants": _participants(rng)},
    MessageType.LOCK_REQUEST: lambda rng: {
        "gid": _gid(rng), "item": rng.randrange(50),
        "request_id": rng.randrange(10**6)},
    MessageType.LOCK_GRANT: lambda rng: {
        "gid": _gid(rng), "item": rng.randrange(50),
        "value": rng.randrange(10**6), "version": rng.randrange(20),
        "request_id": rng.randrange(10**6)},
    MessageType.LOCK_DENIED: lambda rng: {
        "gid": _gid(rng), "item": rng.randrange(50),
        "request_id": rng.randrange(10**6), "reason": "timeout"},
    MessageType.LOCK_RELEASE: lambda rng: {"gid": _gid(rng)},
    MessageType.PREPARE: lambda rng: {"gid": _gid(rng)},
    MessageType.VOTE: lambda rng: {
        "gid": _gid(rng), "commit": rng.random() < 0.5},
    MessageType.DECISION: lambda rng: {
        "gid": _gid(rng), "commit": rng.random() < 0.5},
    MessageType.ABORT_SUBTXN: lambda rng: {
        "gid": _gid(rng), "reason": "global-deadlock"},
    MessageType.EAGER_WRITE: lambda rng: {
        "gid": _gid(rng), "item": rng.randrange(50),
        "value": rng.randrange(10**6),
        "request_id": rng.randrange(10**6)},
    MessageType.EAGER_WRITE_DONE: lambda rng: {
        "gid": _gid(rng), "item": rng.randrange(50),
        "request_id": rng.randrange(10**6),
        "ok": rng.random() < 0.5},
    MessageType.WOUND: lambda rng: {
        "gid": _gid(rng), "reason": "remote-wound"},
    MessageType.CATCHUP_REQUEST: lambda rng: {
        "items": _catchup_items(rng)},
    MessageType.CATCHUP_REPLY: lambda rng: {
        "items": _catchup_reply_items(rng)},
    MessageType.RECONFIG: lambda rng: {
        "epoch": rng.randrange(1, 10),
        "change": {"kind": rng.choice(
            ["add-replica", "drop-replica", "migrate-primary"]),
            "site": rng.randrange(8), "item": rng.randrange(40)}},
}


def test_every_message_type_has_a_payload_builder():
    assert set(PAYLOADS) == set(MessageType)


@pytest.mark.parametrize("msg_type", sorted(MessageType,
                                            key=lambda t: t.value))
def test_message_round_trip(msg_type):
    rng = random.Random(hash(msg_type.value) & 0xFFFF)
    for _ in range(25):
        message = Message(msg_type, rng.randrange(8), rng.randrange(8),
                          PAYLOADS[msg_type](rng))
        # Through real JSON text, exactly as the wire does it.
        wire = json.loads(json.dumps(encode_message(message)))
        decoded = decode_message(wire)
        assert decoded.msg_type is message.msg_type
        assert decoded.src == message.src
        assert decoded.dst == message.dst
        assert decoded.msg_id == message.msg_id
        assert decoded.payload == message.payload


@pytest.mark.parametrize("seed", range(10))
def test_random_nested_value_round_trip(seed):
    rng = random.Random(seed)

    def value(depth=0):
        choices = ["int", "float", "str", "bool", "none", "gid"]
        if depth < 3:
            choices += ["list", "tuple", "set", "strmap", "intmap"]
        kind = rng.choice(choices)
        if kind == "int":
            return rng.randrange(-10**9, 10**9)
        if kind == "float":
            return rng.randrange(10**6) / 128.0
        if kind == "str":
            return "".join(rng.choice("ab~[]{}é")
                           for _ in range(rng.randrange(8)))
        if kind == "bool":
            return rng.random() < 0.5
        if kind == "none":
            return None
        if kind == "gid":
            return _gid(rng)
        if kind == "list":
            return [value(depth + 1) for _ in range(rng.randrange(4))]
        if kind == "tuple":
            return tuple(value(depth + 1)
                         for _ in range(rng.randrange(4)))
        if kind == "set":
            return {rng.randrange(100) for _ in range(rng.randrange(4))}
        if kind == "strmap":
            return {"~tilde" if rng.random() < 0.3
                    else "k{}".format(i): value(depth + 1)
                    for i in range(rng.randrange(4))}
        return {(rng.randrange(100), _gid(rng))[rng.randrange(2)]:
                value(depth + 1) for _ in range(rng.randrange(4))}

    for _ in range(50):
        original = value()
        assert decode_value(json.loads(json.dumps(
            encode_value(original)))) == original


def test_tagged_forms_are_distinguished():
    cases = [
        (0, 1),                       # tuple, not list
        [0, 1],
        {0, 1},                       # set
        {"~gid": "escaped"},          # dict whose key collides with a tag
        {GlobalTransactionId(1, 2): {3: (4, {5})}},
        {"plain": {"~map": "escaped-too"}},
    ]
    for original in cases:
        round_tripped = decode_value(json.loads(json.dumps(
            encode_value(original))))
        assert round_tripped == original
        assert type(round_tripped) is type(original)


def test_unencodable_value_raises():
    with pytest.raises(CodecError):
        encode_value(object())


@pytest.mark.parametrize("seed", range(8))
def test_batch_frame_round_trip_mixed_types(seed):
    """A batch frame must round-trip any mix of message types with
    their per-channel sequence numbers — through real JSON text, as on
    the wire."""
    rng = random.Random(seed)
    types = sorted(MessageType, key=lambda t: t.value)
    for _ in range(10):
        seq = rng.randrange(1, 1000)
        entries = []
        for _ in range(rng.randrange(1, 9)):
            msg_type = rng.choice(types)
            entries.append((seq, Message(
                msg_type, rng.randrange(8), rng.randrange(8),
                PAYLOADS[msg_type](rng))))
            seq += 1
        frame = json.loads(json.dumps(
            encode_batch_frame("inc-{}".format(seed), entries)))
        incarnation, decoded = decode_batch_frame(frame)
        assert incarnation == "inc-{}".format(seed)
        assert [s for s, _ in decoded] == [s for s, _ in entries]
        for (_, got), (_, sent) in zip(decoded, entries):
            assert got.msg_type is sent.msg_type
            assert got.src == sent.src and got.dst == sent.dst
            assert got.msg_id == sent.msg_id
            assert got.payload == sent.payload


def test_batch_frame_empty_and_singleton():
    # Empty is legal (decodes to no entries) — a receiver must not
    # treat it as malformed, it simply acks nothing.
    incarnation, entries = decode_batch_frame(json.loads(json.dumps(
        encode_batch_frame("inc-e", []))))
    assert incarnation == "inc-e" and entries == []
    # A singleton batch carries the same data a "msg" frame would.
    message = Message(MessageType.SECONDARY, 0, 1,
                      PAYLOADS[MessageType.SECONDARY](random.Random(7)))
    _, [(seq, decoded)] = decode_batch_frame(json.loads(json.dumps(
        encode_batch_frame("inc-s", [(42, message)]))))
    assert seq == 42
    assert decoded.payload == message.payload


def test_batch_frame_malformed_shapes_raise():
    good = Message(MessageType.DUMMY, 0, 1, {"timestamp": 1.0})
    cases = [
        {"kind": "msg", "inc": "x", "msgs": []},          # wrong kind
        {"kind": "batch", "inc": "x"},                    # no msgs
        {"kind": "batch", "inc": "x", "msgs": "nope"},    # not a list
        {"kind": "batch", "inc": "x", "msgs": [17]},      # not objects
        {"kind": "batch", "inc": "x",
         "msgs": [{"seq": 1}]},                           # no msg
        {"kind": "batch", "inc": "x",
         "msgs": [{"msg": encode_message(good)}]},        # no seq
        {"kind": "batch", "inc": "x",
         "msgs": [{"seq": "abc",
                   "msg": encode_message(good)}]},        # bad seq
        {"kind": "batch", "inc": "x",
         "msgs": [{"seq": 1, "msg": {"type": "???"}}]},   # bad message
    ]
    for frame in cases:
        with pytest.raises(CodecError):
            decode_batch_frame(frame)


def test_frame_round_trip_and_cap():
    frame = encode_frame({"kind": "msg", "seq": 7})
    assert decode_frame_body(frame[4:]) == {"kind": "msg", "seq": 7}
    with pytest.raises(CodecError):
        encode_frame({"pad": "x" * (17 * 1024 * 1024)})
    with pytest.raises(CodecError):
        decode_frame_body(b"\xff\xfe not json")


def test_read_frame_streaming_and_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"a": 1}) +
                         encode_frame({"b": [1, 2]}))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        third = await read_frame(reader)
        return first, second, third

    first, second, third = asyncio.run(scenario())
    assert first == {"a": 1}
    assert second == {"b": [1, 2]}
    assert third is None


def test_read_frame_truncated_body_is_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"a": 1})[:-2])
        reader.feed_eof()
        return await read_frame(reader)

    assert asyncio.run(scenario()) is None
