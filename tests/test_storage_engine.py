"""Tests for the per-site storage engine (reads, writes, commit, abort,
history recording)."""

import pytest

from repro.errors import LockTimeout, PlacementError, TransactionAborted
from repro.sim import Environment
from repro.storage import StorageEngine, TransactionStatus
from repro.types import GlobalTransactionId, SubtransactionKind


def gid(seq, site=0):
    return GlobalTransactionId(site, seq)


def run_txn(env, generator):
    """Run a transaction generator to completion, returning its value."""
    process = env.process(generator)
    env.run()
    return process.value


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def engine(env):
    engine = StorageEngine(env, site_id=0, lock_timeout=None)
    engine.create_item("a", value=10)
    engine.create_item("b", value=20)
    return engine


def test_create_duplicate_item_rejected(engine):
    with pytest.raises(PlacementError):
        engine.create_item("a")


def test_read_returns_committed_value(env, engine):
    def txn_proc():
        txn = engine.begin(gid(1))
        value = yield from engine.read(txn, "a")
        engine.commit(txn)
        return value

    assert run_txn(env, txn_proc()) == 10


def test_write_then_commit_installs_value_and_version(env, engine):
    def txn_proc():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 99)
        engine.commit(txn)

    run_txn(env, txn_proc())
    record = engine.item("a")
    assert record.value == 99
    assert record.committed_version == 1
    assert record.writer_of(1) == gid(1)
    assert record.writer_of(0) is None


def test_read_your_own_write(env, engine):
    def txn_proc():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 77)
        value = yield from engine.read(txn, "a")
        engine.commit(txn)
        return value

    assert run_txn(env, txn_proc()) == 77


def test_own_write_read_not_recorded_as_dependency(env, engine):
    def txn_proc():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 77)
        yield from engine.read(txn, "a")
        engine.commit(txn)

    run_txn(env, txn_proc())
    entry = engine.history.entries[0]
    assert entry.reads == {}
    assert entry.writes == {"a": 1}


def test_abort_restores_previous_value(env, engine):
    def txn_proc():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 1)
        yield from engine.write(txn, "a", 2)
        yield from engine.write(txn, "b", 3)
        engine.abort(txn)
        return txn.status

    status = run_txn(env, txn_proc())
    assert status is TransactionStatus.ABORTED
    assert engine.item("a").value == 10
    assert engine.item("b").value == 20
    assert engine.item("a").committed_version == 0
    assert len(engine.history) == 0


def test_abort_is_idempotent(env, engine):
    txn = engine.begin(gid(1))
    engine.abort(txn)
    engine.abort(txn)
    assert txn.status is TransactionStatus.ABORTED


def test_abort_after_commit_rejected(env, engine):
    txn = engine.begin(gid(1))
    engine.commit(txn)
    with pytest.raises(TransactionAborted):
        engine.abort(txn)


def test_operation_after_abort_rejected(env, engine):
    txn = engine.begin(gid(1))
    engine.abort(txn)
    with pytest.raises(TransactionAborted):
        # Drive the generator to trigger the state check.
        list(engine.read(txn, "a"))


def test_commit_releases_locks(env, engine):
    def writer():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 5)
        engine.commit(txn)

    def reader():
        txn = engine.begin(gid(2))
        value = yield from engine.read(txn, "a")
        engine.commit(txn)
        return value

    run_txn(env, writer())
    assert run_txn(env, reader()) == 5


def test_writer_blocks_reader_until_commit(env, engine):
    log = []

    def writer():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 5)
        yield env.timeout(10.0)
        engine.commit(txn)
        log.append(("writer-commit", env.now))

    def reader():
        txn = engine.begin(gid(2))
        value = yield from engine.read(txn, "a")
        log.append(("reader-got", env.now, value))
        engine.commit(txn)

    env.process(writer())
    env.process(reader())
    env.run()
    assert log == [("writer-commit", 10.0), ("reader-got", 10.0, 5)]


def test_history_records_versions_read_and_written(env, engine):
    def t1():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 1)
        engine.commit(txn)

    def t2():
        txn = engine.begin(gid(2))
        value = yield from engine.read(txn, "a")
        yield from engine.write(txn, "b", value + 1)
        engine.commit(txn)

    run_txn(env, t1())
    run_txn(env, t2())
    first, second = engine.history.entries
    assert first.writes == {"a": 1}
    assert second.reads == {"a": 1}
    assert second.writes == {"b": 1}
    assert first.seq == 0 and second.seq == 1


def test_history_commit_order_is_site_local_order(env, engine):
    def make(seq, item):
        def proc():
            txn = engine.begin(gid(seq))
            yield from engine.write(txn, item, seq)
            yield env.timeout(seq)  # Commit later for larger seq.
            engine.commit(txn)
        return proc

    env.process(make(2, "a")())
    env.process(make(1, "b")())
    env.run()
    assert [entry.gid.seq for entry in engine.history] == [1, 2]


def test_lock_timeout_aborts_via_exception(env):
    engine = StorageEngine(env, site_id=0, lock_timeout=0.05)
    engine.create_item("a")
    outcome = []

    def holder():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 1)
        yield env.timeout(10.0)
        engine.commit(txn)

    def victim():
        txn = engine.begin(gid(2))
        try:
            yield from engine.read(txn, "a")
        except LockTimeout:
            engine.abort(txn)
            outcome.append(("aborted", env.now))

    env.process(holder())
    env.process(victim())
    env.run()
    assert outcome == [("aborted", 0.05)]


def test_prepared_transaction_keeps_locks_then_commits(env, engine):
    def coordinator():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 42)
        engine.prepare(txn)
        assert txn.status is TransactionStatus.PREPARED
        yield env.timeout(5.0)
        engine.commit(txn)

    def reader():
        txn = engine.begin(gid(2))
        value = yield from engine.read(txn, "a")
        engine.commit(txn)
        return (env.now, value)

    env.process(coordinator())
    reader_proc = env.process(reader())
    env.run()
    assert reader_proc.value == (5.0, 42)


def test_prepared_transaction_can_abort(env, engine):
    def coordinator():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 42)
        engine.prepare(txn)
        engine.abort(txn)

    run_txn(env, coordinator())
    assert engine.item("a").value == 10


def test_active_transactions_tracking(env, engine):
    txn = engine.begin(gid(1))
    assert txn in engine.active_transactions
    engine.commit(txn)
    assert txn not in engine.active_transactions


def test_wound_interrupts_controlling_process(env, engine):
    outcome = []

    def victim_proc():
        txn = engine.begin(gid(1))
        txn.process = process
        try:
            yield from engine.write(txn, "a", 1)
            yield env.timeout(100.0)
            engine.commit(txn)
        except TransactionAborted:
            engine.abort(txn)
            outcome.append(("wounded", env.now))
        except BaseException as exc:  # Interrupt carries the cause.
            engine.abort(txn)
            outcome.append((type(exc).__name__, env.now))
        return txn

    def wounder(env, victim_txn_proc):
        yield env.timeout(1.0)
        txn = None
        for candidate in engine.active_transactions:
            txn = candidate
        assert txn is not None
        txn.wound("test-wound")

    process = env.process(victim_proc())
    env.process(wounder(env, process))
    env.run()
    assert outcome[0][1] == 1.0
    txn = process.value
    assert txn.status is TransactionStatus.ABORTED
    assert engine.item("a").value == 10
    assert engine.locks.holders("a") == {}


def test_wound_finished_transaction_is_noop(env, engine):
    txn = engine.begin(gid(1))
    engine.commit(txn)
    assert txn.wound("late") is False
