"""Tests for write-ahead logging and crash recovery, including a
property test: recovered state always equals the pre-crash committed
state."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import TransactionAborted
from repro.sim import Environment
from repro.storage import StorageEngine
from repro.storage.log import (
    LogRecordKind,
    WriteAheadLog,
    recover,
)
from repro.types import GlobalTransactionId, SubtransactionKind


def gid(seq):
    return GlobalTransactionId(0, seq)


def run_txn(env, generator):
    process = env.process(generator)
    env.run()
    return process.value


def build_engine():
    env = Environment()
    wal = WriteAheadLog()
    engine = StorageEngine(env, site_id=0, lock_timeout=None, wal=wal)
    engine.create_item("a", value=10)
    engine.create_item("b", value=20)
    return env, wal, engine


def test_wal_records_lifecycle():
    env, wal, engine = build_engine()

    def txn_proc():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 1)
        engine.commit(txn)

    run_txn(env, txn_proc())
    kinds = [record.kind for record in wal]
    assert kinds == [LogRecordKind.CREATE, LogRecordKind.CREATE,
                     LogRecordKind.BEGIN, LogRecordKind.WRITE,
                     LogRecordKind.COMMIT]
    assert wal.records_of(gid(1))[0].txn_kind is \
        SubtransactionKind.PRIMARY


def test_recovery_restores_committed_state():
    env, wal, engine = build_engine()

    def workload():
        txn1 = engine.begin(gid(1))
        yield from engine.write(txn1, "a", 111)
        engine.commit(txn1)
        txn2 = engine.begin(gid(2))
        yield from engine.write(txn2, "b", 222)
        engine.abort(txn2)
        txn3 = engine.begin(gid(3))
        yield from engine.write(txn3, "a", 333)
        engine.commit(txn3)

    run_txn(env, workload())
    engine.crash()
    recovered = recover(env, 0, wal, lock_timeout=None)
    assert recovered.item("a").value == 333
    assert recovered.item("a").committed_version == 2
    assert recovered.item("a").writer_of(1) == gid(1)
    assert recovered.item("a").writer_of(2) == gid(3)
    assert recovered.item("b").value == 20  # The abort never happened.
    assert recovered.item("b").committed_version == 0
    assert [entry.gid for entry in recovered.history] == [gid(1), gid(3)]


def test_uncommitted_transaction_lost_on_crash():
    """A transaction with writes but no commit record is discarded —
    redo-only logging needs no undo at recovery."""
    env, wal, engine = build_engine()

    def workload():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 999)
        # Crash strikes before commit.

    run_txn(env, workload())
    engine.crash()
    recovered = recover(env, 0, wal, lock_timeout=None)
    assert recovered.item("a").value == 10
    assert recovered.item("a").committed_version == 0


def test_crashed_engine_refuses_new_transactions():
    env, wal, engine = build_engine()
    engine.crash()
    with pytest.raises(TransactionAborted):
        engine.begin(gid(1))


def test_recovered_engine_keeps_logging():
    env, wal, engine = build_engine()

    def first():
        txn = engine.begin(gid(1))
        yield from engine.write(txn, "a", 1)
        engine.commit(txn)

    run_txn(env, first())
    engine.crash()
    recovered = recover(env, 0, wal, lock_timeout=None)

    def second():
        txn = recovered.begin(gid(2))
        yield from recovered.write(txn, "a", 2)
        recovered.commit(txn)

    run_txn(env, second())
    # A second crash/recovery round sees both commits.
    recovered.crash()
    twice = recover(env, 0, wal, lock_timeout=None)
    assert twice.item("a").value == 2
    assert twice.item("a").committed_version == 2


def test_engine_without_wal_logs_nothing():
    env = Environment()
    engine = StorageEngine(env, site_id=0, lock_timeout=None)
    engine.create_item("a")
    assert engine.wal is None  # And no exception anywhere.


# ----------------------------------------------------------------------
# Property: recovery == pre-crash committed state
# ----------------------------------------------------------------------

action_strategy = st.lists(
    st.tuples(st.sampled_from(["w_a", "w_b"]), st.integers(0, 99),
              st.booleans()),
    max_size=25)


@settings(max_examples=80, deadline=None)
@given(actions=action_strategy, crash_point=st.integers(0, 25))
def test_property_recovery_equals_committed_state(actions, crash_point):
    env = Environment()
    wal = WriteAheadLog()
    engine = StorageEngine(env, site_id=0, lock_timeout=None, wal=wal)
    engine.create_item("a", value=0)
    engine.create_item("b", value=0)
    committed = {"a": 0, "b": 0}
    versions = {"a": 0, "b": 0}

    def workload():
        for index, (action, value, do_commit) in enumerate(actions):
            if index >= crash_point:
                return
            item = "a" if action == "w_a" else "b"
            txn = engine.begin(gid(index + 1))
            yield from engine.write(txn, item, value)
            if do_commit:
                engine.commit(txn)
                committed[item] = value
                versions[item] += 1
            else:
                engine.abort(txn)

    env.process(workload())
    env.run()
    engine.crash()
    recovered = recover(env, 0, wal, lock_timeout=None)
    for item in ("a", "b"):
        assert recovered.item(item).value == committed[item]
        assert recovered.item(item).committed_version == versions[item]
