"""Mixed-member wire interop: binary and JSON members, one cluster.

``wire_format`` is deliberately excluded from the cluster fingerprint
(it is negotiated per connection, and every receiver accepts both
encodings), so a cluster may mix binary-preferring and JSON-only
members.  These tests boot exactly that shape on real sockets:

* a 3-site DAG(WT) cluster with one JSON-only member converges and
  serializes under the standard workload, with the parallel apply
  scheduler on — and the servers' negotiation counters prove the
  cluster really ran mixed (the JSON member accepted zero binary
  connections while the binary members accepted some), and
* the same shape under chaos — link jitter plus an abrupt kill of a
  binary member mid-batched-run — passes the oracles and leaves the
  post-run watchdog critical-free.

Port plan: this file owns 7940-7990.
"""

import asyncio
import dataclasses
import os

import pytest

from repro.chaos.controller import ChaosScenario, run_chaos
from repro.chaos.plan import FaultPlan, KillFault, LinkFault
from repro.cluster.client import ClusterClient
from repro.cluster.loadgen import generate_load
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.workload.params import WorkloadParams

#: Seed 3 yields a DAG copy graph for these parameters (same pinning
#: as test_live_cluster).
PARAMS = WorkloadParams(n_sites=3, n_items=12,
                        replication_probability=0.8,
                        threads_per_site=2, transactions_per_thread=6,
                        read_txn_probability=0.3,
                        deadlock_timeout=0.05)

#: The JSON-only member in every mixed test below.
JSON_SITE = 1


def make_spec(base_port, **overrides):
    return ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                       base_port=base_port, wire_format="binary",
                       apply_workers=4, **overrides)


def test_mixed_member_cluster_converges_under_load(tmp_path):
    spec = make_spec(7940, batch=8)
    json_spec = dataclasses.replace(spec, wire_format="json")
    assert json_spec.fingerprint() == spec.fingerprint(), \
        "wire_format must stay out of the fingerprint"

    async def scenario():
        servers = {}
        for site in range(PARAMS.n_sites):
            member = json_spec if site == JSON_SITE else spec
            servers[site] = SiteServer(
                member, site,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(site)),
                anti_entropy_interval=0.3)
            await servers[site].start()
        client = ClusterClient(spec, timeout=5.0)
        try:
            await client.wait_ready()
            report = await generate_load(spec, client, verify=True)
        finally:
            await client.close()
            for server in servers.values():
                await server.stop()
        return report, servers

    report, servers = asyncio.run(scenario())
    expected = (PARAMS.n_sites * PARAMS.threads_per_site *
                PARAMS.transactions_per_thread)
    assert report.committed + report.aborted == expected
    assert report.unknown == 0
    assert report.committed > 0
    assert report.convergent, "divergent: {}".format(report.divergent)
    assert report.serializable

    def conns(server, name):
        return server.metrics.counter("server." + name).value

    # The JSON member negotiated every inbound connection down to JSON
    # (peers and client all offered bin1 and were declined) ...
    assert conns(servers[JSON_SITE], "conns_binary") == 0
    assert conns(servers[JSON_SITE], "conns_json") > 0
    # ... while the binary members accepted binary from their binary
    # peers and the client, AND at least one JSON connection from the
    # JSON member's outbound channels (it offers nothing).
    for site in range(PARAMS.n_sites):
        if site == JSON_SITE:
            continue
        assert conns(servers[site], "conns_binary") > 0
    assert sum(conns(servers[site], "conns_json")
               for site in range(PARAMS.n_sites)
               if site != JSON_SITE) > 0


def test_json_only_client_talks_to_binary_cluster(tmp_path):
    """A client that never offers bin1 must work against binary-
    preferring servers (the hello is byte-identical to the legacy
    JSON-only protocol)."""
    spec = make_spec(7955)
    json_client_spec = dataclasses.replace(spec, wire_format="json")

    async def scenario():
        servers = {}
        for site in range(PARAMS.n_sites):
            servers[site] = SiteServer(
                spec, site,
                wal_path=os.path.join(str(tmp_path),
                                      "site{}.wal".format(site)))
            await servers[site].start()
        client = ClusterClient(json_client_spec, timeout=5.0)
        try:
            await client.wait_ready()
            status = await client.status(0)
        finally:
            await client.close()
            for server in servers.values():
                await server.stop()
        return status

    status = asyncio.run(scenario())
    assert status["wire_format"] == "binary"
    assert status["apply_workers"] == 4


def test_mixed_member_chaos_kill_binary_member(tmp_path):
    """Link jitter everywhere plus a SIGKILL-style crash of a *binary*
    member mid-batched-run, with the JSON-only member alive throughout
    and ``apply_workers=4`` on every site: the oracles must hold and
    the post-run watchdog polls must be critical-free (the kill is
    out-of-model, so during-run alerts are reported, not charged)."""
    scenario = ChaosScenario(
        spec=make_spec(7965, batch=8),
        member_overrides={JSON_SITE: {"wire_format": "json"}},
        plan=FaultPlan(seed=9, events=(
            LinkFault(delay=0.001, jitter=0.004),
            KillFault(site=2, at=0.25, down_for=0.4),
        )),
        name="wire-interop/kill-binary-member")
    report = run_chaos(scenario, str(tmp_path / "wal"))
    assert report.ok, report.violations
    assert report.committed > 0
    assert report.convergent and report.serializable
    assert report.alerts_post.get("critical", 0) == 0
    assert report.kills, "the kill really happened"
    assert report.injections, "jitter really was on the wire"


def test_member_overrides_guard_the_fingerprint():
    """An override that would change the fingerprint is a config
    error, not a split-brain cluster."""
    scenario = ChaosScenario(
        spec=make_spec(7975),
        member_overrides={0: {"seed": 4}})
    with pytest.raises(ValueError):
        scenario.validate()
    # Round trip: overrides survive the replay artifact.
    good = ChaosScenario(
        spec=make_spec(7975),
        member_overrides={JSON_SITE: {"wire_format": "json"}})
    loaded = ChaosScenario.from_json(good.to_json())
    assert loaded.member_overrides == good.member_overrides
