"""Randomized cross-protocol stress tests.

The central claims of the paper are serializability guarantees; here we
hammer every protocol with randomized contended workloads and verify,
for each run:

- the global direct-serialization graph is acyclic (Theorems 2.1/3.1 and
  the BackEdge correctness argument),
- replicas converge to the primary values once quiescent (propagating
  protocols),
- no locks or active transactions leak.
"""

import dataclasses

import pytest

from repro.harness.convergence import check_convergence
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.workload.params import WorkloadParams

#: Small but contended: few items, many threads, short timeout.
CONTENDED = WorkloadParams(
    n_sites=4, n_items=24, threads_per_site=3,
    transactions_per_thread=15, replication_probability=0.6,
    site_probability=0.7, read_op_probability=0.5,
    read_txn_probability=0.3, deadlock_timeout=0.02)

#: Cheap cost model so the stress runs fast.
FAST_COSTS = dict(cpu_txn_setup=0.002, cpu_per_op=0.0003,
                  cpu_commit=0.0003, cpu_message=0.0002,
                  cpu_apply_write=0.0003, cpu_remote_read=0.0003)


def run(protocol, seed, **param_changes):
    params = CONTENDED.replaced(**param_changes)
    config = ExperimentConfig(protocol=protocol, params=params, seed=seed,
                              cost_overrides=dict(FAST_COSTS),
                              drain_time=2.0)
    return run_experiment(config)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("protocol", ["backedge", "psl", "eager"])
def test_cyclic_graph_protocols_serializable_under_contention(protocol,
                                                              seed):
    result = run(protocol, seed, backedge_probability=0.5)
    assert result.serializable is True
    assert result.committed > 0


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("protocol", ["dag_wt", "dag_t", "backedge"])
def test_dag_protocols_serializable_under_contention(protocol, seed):
    result = run(protocol, seed, backedge_probability=0.0)
    assert result.serializable is True
    assert result.committed > 0


@pytest.mark.parametrize("seed", range(3))
def test_backedge_strict_fifo_variant_serializable(seed):
    params = CONTENDED.replaced(backedge_probability=0.5)
    config = ExperimentConfig(
        protocol="backedge", params=params, seed=seed,
        protocol_options={"strict_fifo_commit": True},
        cost_overrides=dict(FAST_COSTS), drain_time=2.0)
    result = run_experiment(config)
    assert result.serializable is True


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("protocol,b", [
    ("dag_wt", 0.0), ("dag_t", 0.0), ("backedge", 0.5), ("eager", 0.5)])
def test_replicas_converge_after_quiescence(protocol, b, seed):
    """End state check: every replica equals its primary after drain."""
    from repro.harness.runner import build_system
    from repro.sim.events import AllOf
    from repro.errors import TransactionAborted

    params = CONTENDED.replaced(backedge_probability=b,
                                transactions_per_thread=10)
    config = ExperimentConfig(protocol=protocol, params=params, seed=seed,
                              cost_overrides=dict(FAST_COSTS))
    env, system, protocol_obj, generator = build_system(config)

    def client(site_id, specs, ref):
        for spec in specs:
            try:
                yield from protocol_obj.run_transaction(site_id, spec,
                                                        ref[0])
            except TransactionAborted:
                pass

    clients = []
    for site_id in range(params.n_sites):
        for thread in range(params.threads_per_site):
            ref = []
            process = env.process(
                client(site_id, generator.thread_stream(site_id, thread),
                       ref))
            ref.append(process)
            clients.append(process)
    env.run(until=AllOf(env, clients))
    env.run(until=env.now + 3.0)  # Drain.
    check_convergence(system)
    # Nothing should be left holding locks or running.
    for site in system.sites:
        assert not site.engine.active_transactions
        assert not site.engine.locks.waiting_requests()


@pytest.mark.parametrize("protocol", ["backedge", "psl"])
def test_extreme_write_heavy_workload_survives(protocol):
    result = run(protocol, 11, backedge_probability=1.0,
                 read_txn_probability=0.0, read_op_probability=0.0)
    assert result.serializable is True
    assert result.committed + result.aborted == \
        CONTENDED.n_sites * CONTENDED.threads_per_site \
        * CONTENDED.transactions_per_thread


def test_single_site_degenerate_system():
    params = WorkloadParams(n_sites=1, n_items=10, threads_per_site=2,
                            transactions_per_thread=10,
                            replication_probability=0.5)
    for protocol in ("dag_wt", "dag_t", "backedge", "psl", "eager"):
        config = ExperimentConfig(protocol=protocol, params=params,
                                  seed=1, cost_overrides=dict(FAST_COSTS))
        result = run_experiment(config)
        assert result.serializable is True
        assert result.total_messages == 0  # One site: nothing to send.


def test_no_dead_letters_in_any_protocol():
    for protocol in ("dag_wt", "dag_t", "backedge", "psl", "eager"):
        from repro.harness.runner import build_system
        b = 0.0 if protocol in ("dag_wt", "dag_t") else 0.4
        params = CONTENDED.replaced(backedge_probability=b,
                                    transactions_per_thread=5)
        config = ExperimentConfig(protocol=protocol, params=params,
                                  seed=5, cost_overrides=dict(FAST_COSTS))
        result = run_experiment(config)
        assert result.serializable is True
        del result
