"""Cross-site postmortem forensics: clock alignment from hop pairs,
fault localization over synthetic incident bundles, and the end-to-end
chaos → bundles → ``repro postmortem`` loop.

The synthetic tests write bundles with controlled span timestamps
(including injected clock skew) and assert the analyzer recovers the
skew, names the dark site, and localizes the stalled hop.  The e2e
test runs the committed known-bad chaos fixture with ``bundle_dir``
armed and proves a failing verdict leaves one bundle per member plus
the injection log, and that the analysis localizes the regression
site.
"""

import json

import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.flight import BUNDLE_NAME, write_bundle
from repro.obs.postmortem import (
    Bundle,
    analysis_json,
    analyze,
    chrome_export,
    collect_bundles,
    estimate_offsets,
    format_report,
)


def span(site, t, event, trace, **fields):
    record = {"site": site, "t": t, "event": event, "trace": trace}
    record.update(fields)
    return record


def make_bundle(directory, site, wall_t, spans=(), events=(),
                n_sites=3, trigger="test", sequence=1, obs=True,
                epoch=0):
    records = [dict(record, type="span") for record in spans]
    records += [dict(record, type="event") for record in events]
    counts = {}
    for record in records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    manifest = {"type": "manifest", "version": 1, "site": site,
                "epoch": epoch, "git_sha": "cafecafecafe",
                "trigger": trigger, "wall_t": wall_t, "mono_t": 0.0,
                "obs": obs, "cluster": {"n_sites": n_sites},
                "sequence": sequence, "dropped_spans": 0,
                "counts": counts}
    path = str(directory / BUNDLE_NAME.format(site, sequence))
    write_bundle(path, manifest, records)
    return path


# ----------------------------------------------------------------------
# Clock alignment
# ----------------------------------------------------------------------

def test_bidirectional_hop_pairs_recover_injected_skew():
    """Traffic both ways between two sites: the one-way latencies
    cancel and the estimated offset is the injected skew exactly."""
    base = 1000.0
    skew = 0.5      # site 1's clock runs half a second ahead
    latency = 0.01  # symmetric one-way network latency
    spans0 = [span(0, base + 0.00, "forwarded", "t0.1", peer=1),
              span(0, base + 0.10 + latency, "received", "t1.1")]
    spans1 = [span(1, base + latency + skew, "received", "t0.1"),
              span(1, base + 0.10 + skew, "forwarded", "t1.1",
                   peer=0)]
    clock = estimate_offsets({0: spans0, 1: spans1})
    assert clock["reference"] == 0
    assert clock["methods"] == {0: "reference", 1: "bidirectional"}
    assert clock["pairs"] == 2
    assert clock["offsets"][0] == 0.0
    assert clock["offsets"][1] == pytest.approx(skew)


def test_one_way_traffic_bounds_skew_within_latency():
    base = 1000.0
    skew = -0.2
    latency = 0.02
    spans0 = [span(0, base, "forwarded", "t0.1", peer=2)]
    spans2 = [span(2, base + latency + skew, "received", "t0.1")]
    clock = estimate_offsets({0: spans0, 2: spans2})
    assert clock["methods"][2] == "one-way"
    # One-way estimates are biased by the (unknowable) latency.
    assert abs(clock["offsets"][2] - skew) <= latency + 1e-9
    assert clock["pairs"] == 1


def test_site_with_no_hop_pairs_stays_unaligned():
    spans0 = [span(0, 1000.0, "committed", "t0.1", expected=[1])]
    spans1 = [span(1, 1000.5, "applied", "t9.9")]
    clock = estimate_offsets({0: spans0, 1: spans1})
    assert clock["methods"] == {0: "reference", 1: "unaligned"}
    assert clock["offsets"][1] == 0.0
    assert clock["pairs"] == 0


# ----------------------------------------------------------------------
# Collection and analysis over synthetic bundles
# ----------------------------------------------------------------------

def test_collect_bundles_reports_damage_without_raising(tmp_path):
    good = make_bundle(tmp_path, 0, 1000.0)
    bad = tmp_path / "flight-s1-001.jsonl"
    bad.write_text('{"type": "span", "t": 1.0}\n')
    bundles, problems = collect_bundles([str(tmp_path)])
    assert [bundle.path for bundle in bundles] == [good]
    assert len(problems) == 1
    assert "manifest" in problems[0]


def test_latest_bundle_per_site_wins(tmp_path):
    make_bundle(tmp_path, 0, 1000.0, sequence=1)
    newer = make_bundle(tmp_path, 0, 1050.0, sequence=2,
                        trigger="manual")
    bundles, _ = collect_bundles([str(tmp_path)])
    analysis = analyze(bundles)
    assert len(analysis["bundles"]) == 1
    assert analysis["bundles"][0]["path"] == newer
    assert analysis["bundles"][0]["trigger"] == "manual"


def incident_bundles(tmp_path):
    """A 3-site incident: site 2 went dark.  Sites 0 and 1 dumped;
    trace t0.5 committed at s0 expecting {1, 2} but only s1 applied."""
    base = 2000.0
    spans0 = [
        span(0, base + 0.000, "committed", "t0.5", expected=[1, 2]),
        span(0, base + 0.001, "forwarded", "t0.5", peer=1),
        span(0, base + 0.001, "forwarded", "t0.5", peer=2),
    ]
    events0 = [
        {"t": base + 1.0, "mono": 1.0, "kind": "alert",
         "rule": "site-down", "severity": "critical", "alert_site": 2,
         "message": "site s2 unreachable for 2 consecutive polls"},
    ]
    spans1 = [
        span(1, base + 0.010, "received", "t0.5"),
        span(1, base + 0.015, "journaled", "t0.5"),
        span(1, base + 0.020, "applied", "t0.5"),
    ]
    make_bundle(tmp_path, 0, base + 2.0, spans=spans0, events=events0,
                trigger="watchdog:site-down")
    make_bundle(tmp_path, 1, base + 2.0, spans=spans1,
                trigger="watchdog:site-down")
    return base


def test_analyze_localizes_dark_site_and_stalled_hop(tmp_path):
    incident_bundles(tmp_path)
    bundles, problems = collect_bundles([str(tmp_path)])
    assert problems == []
    analysis = analyze(bundles)

    assert analysis["sites"] == [0, 1]
    assert analysis["missing_sites"] == [2]  # from the manifest facts

    kinds = [finding["kind"] for finding in analysis["findings"]]
    assert "site-down" in kinds and "stall" in kinds
    assert kinds.index("site-down") < kinds.index("stall")
    down = next(finding for finding in analysis["findings"]
                if finding["kind"] == "site-down")
    assert down["site"] == 2
    assert "no bundle recovered" in down["summary"]
    assert "site-down critical fired 1 time(s)" in down["summary"]
    stall = next(finding for finding in analysis["findings"]
                 if finding["kind"] == "stall")
    assert stall["site"] == 2
    assert "s0→s2" in stall["summary"]

    # One complete tree (s0 → s1), one permanently incomplete hop.
    assert analysis["propagation"]["count"] == 1
    assert analysis["propagation"]["complete"] == 0

    # The merged timeline carries the dump markers, the alert, and
    # the stall, causally ordered.
    kinds = [entry["kind"] for entry in analysis["timeline"]]
    assert kinds.index("stall") < kinds.index("alert")
    assert kinds.count("dump") == 2


def test_report_renders_localization_and_degraded_bundles(tmp_path):
    base = incident_bundles(tmp_path)
    make_bundle(tmp_path, 2, base + 1.5, obs=False, trigger="sigterm",
                sequence=1)
    bundles, _ = collect_bundles([str(tmp_path)])
    analysis = analyze(
        bundles,
        injections=[{"t": 0.4, "kind": "kill", "site": 2}])
    report = format_report(analysis)
    assert "postmortem: 3 bundle(s) from s0, s1, s2" in report
    assert "[degraded: obs off]" in report
    assert "clock alignment:" in report
    assert "fault localization:" in report
    assert "s2 dark" in report
    assert "fault script (1 injection decision(s)" in report
    assert '"kind": "kill"' in report
    assert "timeline" in report

    # With a bundle recovered from s2 the dark finding keeps only the
    # alert evidence.
    down = next(finding for finding in analysis["findings"]
                if finding["kind"] == "site-down")
    assert "no bundle recovered" not in down["summary"]

    encoded = analysis_json(analysis)
    assert not any(key.startswith("_") for key in encoded)
    json.dumps(encoded)  # machine-readable view must serialize


def test_chrome_export_overlays_incident_instants(tmp_path):
    incident_bundles(tmp_path)
    bundles, _ = collect_bundles([str(tmp_path)])
    analysis = analyze(bundles)
    document = chrome_export(analysis)
    assert validate_chrome_trace(document) == []
    instants = [event for event in document["traceEvents"]
                if event.get("ph") == "i"]
    assert any(event["name"].startswith("alert:")
               for event in instants)
    assert any(event["name"].startswith("stall:")
               for event in instants)
    assert any(event["name"].startswith("dump:")
               for event in instants)


def test_skewed_bundles_align_back_into_one_timeline(tmp_path):
    """Site 1's bundle carries a +2 s clock skew; alignment must fold
    its spans back so the s0→s1 hop delay is physical again."""
    base, skew, latency = 3000.0, 2.0, 0.005
    spans0 = [
        span(0, base + 0.000, "committed", "t0.7", expected=[1]),
        span(0, base + 0.001, "forwarded", "t0.7", peer=1),
        span(0, base + 0.050 + latency, "received", "t1.9"),
    ]
    spans1 = [
        span(1, base + 0.001 + latency + skew, "received", "t0.7"),
        span(1, base + 0.010 + skew, "applied", "t0.7"),
        span(1, base + 0.050 + skew, "forwarded", "t1.9", peer=0),
    ]
    make_bundle(tmp_path, 0, base + 1.0, spans=spans0)
    make_bundle(tmp_path, 1, base + 1.0 + skew, spans=spans1)
    bundles, _ = collect_bundles([str(tmp_path)])
    analysis = analyze(bundles)
    assert analysis["clock"]["methods"]["1"] == "bidirectional"
    assert analysis["clock"]["offsets_ms"]["1"] == \
        pytest.approx(skew * 1000.0)
    assert analysis["propagation"]["complete"] == 1
    # Without alignment the hop delay would read as ~2 s.
    assert analysis["propagation"]["max"] < 0.5


# ----------------------------------------------------------------------
# End to end: chaos verdict failure → bundles → localization
# ----------------------------------------------------------------------

def test_chaos_verdict_failure_leaves_forensic_bundles(tmp_path):
    """The committed known-bad scenario (forward-before-wal + crash)
    must fail its oracles, dump one bundle per member into
    ``bundle_dir`` with the injection log, and the postmortem analysis
    over those bundles must localize the incident."""
    from repro.chaos.controller import ChaosScenario, run_chaos

    scenario = ChaosScenario.load("tests/data/chaos_known_bad.json")
    bundle_dir = tmp_path / "bundles"
    report = run_chaos(scenario, wal_dir=str(tmp_path / "wal"),
                       bundle_dir=str(bundle_dir))
    assert not report.ok
    assert report.violations
    n_sites = scenario.spec.params.n_sites
    assert len(report.bundles) == n_sites
    assert (bundle_dir / "injections.json").exists()
    assert "flight bundles: {} dumped".format(n_sites) in \
        report.format()

    bundles, problems = collect_bundles([str(bundle_dir)])
    assert problems == []
    assert len(bundles) == n_sites
    for bundle in bundles:
        assert bundle.manifest["trigger"] == "chaos-verdict"
    injections = json.loads(
        (bundle_dir / "injections.json").read_text())
    analysis = analyze(bundles, injections=injections)
    assert analysis["missing_sites"] == []
    # The injected faults were broadcast into every recorder, so the
    # merged timeline shows the kill the moment it happened.
    faults = [entry for entry in analysis["timeline"]
              if entry["kind"] == "fault"]
    assert any(entry.get("fault") == "kill" for entry in faults)
    report_text = format_report(analysis)
    assert "fault localization:" in report_text
    assert "bundle dumped (trigger chaos-verdict)" in report_text


def test_analyze_of_no_bundles_is_empty_but_renders():
    analysis = analyze([])
    assert analysis["sites"] == []
    assert analysis["findings"] == []
    report = format_report(analysis)
    assert "no site" in report
    assert "no anomaly localized" in report


def test_bundle_accessors():
    bundle = Bundle("x.jsonl",
                    {"site": 2, "wall_t": 5.0},
                    [{"type": "span", "t": 1.0, "site": 2,
                      "event": "applied"},
                     {"type": "event", "t": 2.0, "kind": "alert"},
                     {"type": "state", "name": "wal",
                      "state": {"synced": 3}}])
    assert bundle.site == 2
    assert bundle.wall_t == 5.0
    assert len(bundle.spans()) == 1
    assert len(bundle.events()) == 1
    assert bundle.states() == {"wal": {"synced": 3}}
