"""Tests for the discrete-event simulation kernel (events, environment,
processes)."""

import pytest

from repro.errors import ReproError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 2.5
    assert env.now == 2.5


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(42)
    with pytest.raises(RuntimeError):
        event.succeed(43)
    with pytest.raises(RuntimeError):
        event.fail(ValueError("nope"))


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_events_processed_in_time_then_fifo_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 1.0, "b1"))
    env.process(waiter(env, 0.5, "a"))
    env.process(waiter(env, 1.0, "b2"))
    env.run()
    assert order == ["a", "b1", "b2"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def producer(env, event):
        yield env.timeout(1.0)
        event.succeed("payload")

    event = env.event()
    env.process(producer(env, event))
    assert env.run(until=event) == "payload"
    assert env.now == 1.0


def test_run_until_failed_event_raises():
    env = Environment()

    def producer(env, event):
        yield env.timeout(1.0)
        event.fail(ReproError("boom"))

    event = env.event()
    env.process(producer(env, event))
    with pytest.raises(ReproError):
        env.run(until=event)


def test_run_until_earlier_than_now_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_process_receives_event_value():
    env = Environment()

    def proc(env, event):
        value = yield event
        return value * 2

    event = env.event()
    process = env.process(proc(env, event))
    event.succeed(21)
    env.run()
    assert process.value == 42


def test_process_waits_on_already_processed_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()  # Process the event with no listeners.

    def late(env, ev):
        value = yield ev
        return value

    process = env.process(late(env, event))
    env.run()
    assert process.value == "early"


def test_failed_event_thrown_into_process():
    env = Environment()

    def proc(env, event):
        try:
            yield event
        except ReproError:
            return "handled"

    event = env.event()
    process = env.process(proc(env, event))
    event.fail(ReproError("kaput"))
    env.run()
    assert process.value == "handled"


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("exploded")

    env.process(bad(env))
    with pytest.raises(ValueError):
        env.run()


def test_unhandled_failed_event_raises_in_run():
    env = Environment()
    event = env.event()
    event.fail(ReproError("lost failure"))
    with pytest.raises(ReproError):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    event = env.event()
    event.fail(ReproError("quiet"))
    event.defuse()
    env.run()  # No exception.


def test_yielding_non_event_raises_in_process():
    env = Environment()

    def bad(env):
        yield 42

    process = env.process(bad(env))
    process.defuse()
    env.run()
    assert not process.ok
    assert isinstance(process.value, RuntimeError)


def test_process_is_event_waitable_by_other_process():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    parent_proc = env.process(parent(env))
    env.run()
    assert parent_proc.value == (3.0, "done")


def test_interrupt_wakes_waiting_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            return "overslept"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", "wakeup", 1.0)


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_interrupted_wait_leaves_event_usable_by_others():
    env = Environment()
    event = env.event()

    def waiter(env, ev):
        value = yield ev
        return value

    def doomed(env, ev):
        try:
            yield ev
        except Interrupt:
            return "gone"

    survivor = env.process(waiter(env, event))
    victim = env.process(doomed(env, event))

    def driver(env, victim, event):
        yield env.timeout(1.0)
        victim.interrupt()
        yield env.timeout(1.0)
        event.succeed("payload")

    env.process(driver(env, victim, event))
    env.run()
    assert victim.value == "gone"
    assert survivor.value == "payload"


def test_allof_collects_all_values():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    process = env.process(proc(env))
    env.run()
    assert process.value == (2.0, ["a", "b"])


def test_allof_empty_succeeds_immediately():
    env = Environment()
    condition = AllOf(env, [])
    assert condition.triggered
    assert condition.value == {}


def test_allof_fails_if_any_child_fails():
    env = Environment()

    def proc(env, event):
        try:
            yield AllOf(env, [env.timeout(5.0), event])
        except ReproError:
            return env.now

    event = env.event()
    process = env.process(proc(env, event))
    event.fail(ReproError("child failed"))
    env.run()
    assert process.value == 0.0


def test_anyof_fires_on_first_event():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(9.0, value="slow")
        results = yield AnyOf(env, [fast, slow])
        return (env.now, list(results.values()))

    process = env.process(proc(env))
    env.run(until=20)
    assert process.value == (1.0, ["fast"])


def test_condition_rejects_foreign_events():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(ValueError):
        AllOf(env_a, [env_b.event()])


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_step_on_empty_schedule_raises():
    from repro.sim.environment import EmptySchedule
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_with_empty_schedule_returns_immediately():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0
    assert env.run(until=5.0) is None
    assert env.now == 5.0


def test_events_processed_counter():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.events_processed == 2


def test_run_until_untriggered_event_returns_none_when_quiescent():
    env = Environment()
    pending = env.event()
    env.timeout(1.0)
    assert env.run(until=pending) is None  # Queue drained, never fired.
    assert env.now == 1.0


def test_urgent_interrupt_processed_before_same_time_events():
    env = Environment()
    order = []

    def sleeper():
        try:
            yield env.timeout(1.0)
            order.append("timeout")
        except Interrupt:
            order.append("interrupt")

    def interrupter(victim):
        yield env.timeout(1.0)
        order.append("interrupter-awake")
        if victim.is_alive:
            victim.interrupt()

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    # Whichever same-time ordering occurs, the result is deterministic
    # and the interrupt (urgent) cannot be starved by normal events.
    assert order in (["timeout", "interrupter-awake"],
                     ["interrupter-awake", "interrupt"])
