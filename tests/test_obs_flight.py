"""Flight recorder: bounded rings, atomic bundle IO, schema
validation, and the ``dump`` wire op on a live cluster.

The unit tests drive :class:`~repro.obs.flight.FlightRecorder`
directly — ring bounds, checkpoint deltas, degraded (obs-off) and
damaged bundles.  The live tests boot a real 3-site cluster and prove
the acceptance property: a dump taken *under load* runs off the event
loop, so every transaction still gets its ack and the convergence /
serializability oracles stay green while bundles land on disk.
"""

import asyncio
import os
import re

from repro.cluster.client import ClusterClient
from repro.cluster.loadgen import generate_load
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.obs.flight import (
    BUNDLE_VERSION,
    FlightRecorder,
    bundle_paths,
    load_bundle,
    repo_git_sha,
    validate_bundle,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceSink
from repro.workload.params import WorkloadParams

PARAMS = WorkloadParams(n_sites=3, n_items=12,
                        replication_probability=0.8,
                        threads_per_site=2, transactions_per_thread=6,
                        read_txn_probability=0.3,
                        deadlock_timeout=0.05)


def make_spec(base_port):
    return ClusterSpec(params=PARAMS, protocol="dag_wt", seed=3,
                       base_port=base_port)


# ----------------------------------------------------------------------
# Rings and checkpoints
# ----------------------------------------------------------------------

def test_event_ring_keeps_only_the_recent_past():
    recorder = FlightRecorder(0, max_events=8)
    for index in range(20):
        recorder.record_event("tick", n=index)
    manifest, records = recorder.gather("test")
    events = [record for record in records
              if record["type"] == "event"]
    assert len(events) == 8
    assert [event["n"] for event in events] == list(range(12, 20))
    assert manifest["counts"]["event"] == 8
    assert all("t" in event and "mono" in event for event in events)


def test_checkpoint_records_counter_deltas_and_gauges():
    metrics = MetricsRegistry()
    counter = metrics.counter("txn.committed")
    metrics.gauge("server.apply_queue").set(7)
    recorder = FlightRecorder(1, metrics=metrics, max_checkpoints=4)
    counter.inc(5)
    first = recorder.checkpoint()
    assert first["counters_delta"]["txn.committed"] == 5
    assert first["gauges"]["server.apply_queue"] == 7
    counter.inc(3)
    second = recorder.checkpoint()
    assert second["counters_delta"] == {"txn.committed": 3}
    # An unchanged counter leaves the delta entirely.
    third = recorder.checkpoint()
    assert third["counters_delta"] == {}
    for _ in range(10):
        recorder.checkpoint()
    _, records = recorder.gather("test")
    checkpoints = [record for record in records
                   if record["type"] == "checkpoint"]
    assert len(checkpoints) == 4


def test_checkpoint_is_noop_without_live_metrics():
    assert FlightRecorder(0).checkpoint() is None
    disabled = MetricsRegistry(enabled=False)
    assert FlightRecorder(0, metrics=disabled).checkpoint() is None


# ----------------------------------------------------------------------
# Bundle IO
# ----------------------------------------------------------------------

def test_dump_writes_valid_bundle_atomically(tmp_path):
    trace = TraceSink(0, capacity=64)
    for index in range(5):
        trace.emit("applied", trace="t0.{}".format(index), peer=1)
    metrics = MetricsRegistry()
    metrics.counter("txn.committed").inc(5)
    metrics.histogram("server.apply_s").observe(0.001)
    recorder = FlightRecorder(
        0, trace=trace, metrics=metrics, epoch=lambda: 2,
        cluster={"n_sites": 3, "protocol": "dag_wt"})
    recorder.add_source("watermarks", lambda: {"3": 4})
    recorder.record_event("server-start", epoch=2)
    recorder.checkpoint()

    path = recorder.dump("unit-test", out_dir=str(tmp_path))
    assert os.path.basename(path) == "flight-s0-001.jsonl"
    assert validate_bundle(path) == []
    assert list(tmp_path.glob("*.tmp")) == []  # atomic: no orphan
    manifest, records = load_bundle(path)
    assert manifest["version"] == BUNDLE_VERSION
    assert manifest["site"] == 0
    assert manifest["epoch"] == 2
    assert manifest["trigger"] == "unit-test"
    assert manifest["obs"] is True
    assert manifest["cluster"]["protocol"] == "dag_wt"
    assert sum(manifest["counts"].values()) == len(records)
    assert len([r for r in records if r["type"] == "span"]) == 5
    assert len([r for r in records if r["type"] == "stage"]) == 1
    states = {record["name"]: record for record in records
              if record["type"] == "state"}
    assert states["watermarks"]["state"] == {"3": 4}
    assert recorder.last_dump_path == path
    assert recorder.last_dump_records == len(records)

    # A second dump gets the next sequence; the first stays intact.
    path2 = recorder.dump("unit-test", out_dir=str(tmp_path))
    assert os.path.basename(path2) == "flight-s0-002.jsonl"
    assert bundle_paths(str(tmp_path)) == [path, path2]
    assert validate_bundle(path) == []


def test_raising_source_degrades_to_error_record(tmp_path):
    recorder = FlightRecorder(2)

    def broken():
        raise RuntimeError("disk gone")

    recorder.add_source("wal", broken)
    recorder.add_source("watermarks", lambda: {"0": 1})
    path = recorder.dump("unit-test", out_dir=str(tmp_path))
    assert validate_bundle(path) == []
    _, records = load_bundle(path)
    states = {record["name"]: record for record in records
              if record["type"] == "state"}
    assert states["wal"]["error"] == "RuntimeError: disk gone"
    assert "state" not in states["wal"]
    assert states["watermarks"]["state"] == {"0": 1}


def test_no_obs_bundle_is_degraded_but_valid(tmp_path):
    recorder = FlightRecorder(1, trace=None,
                              metrics=MetricsRegistry(enabled=False),
                              cluster={"n_sites": 3, "obs": False})
    recorder.add_source("watermarks", lambda: {"5": 9})
    path = recorder.dump("no-obs", out_dir=str(tmp_path))
    assert validate_bundle(path) == []
    manifest, records = load_bundle(path)
    assert manifest["obs"] is False
    assert "span" not in manifest["counts"]
    states = {record["name"]: record for record in records
              if record["type"] == "state"}
    assert states["watermarks"]["state"] == {"5": 9}


def test_foreign_objects_degrade_to_repr(tmp_path):
    recorder = FlightRecorder(0)
    recorder.record_event("alert", payload=object())
    path = recorder.dump("unit-test", out_dir=str(tmp_path))
    assert validate_bundle(path) == []
    _, records = load_bundle(path)
    event = next(record for record in records
                 if record["type"] == "event")
    assert event["payload"].startswith("<object object")


def test_truncated_bundle_loads_but_fails_check(tmp_path):
    recorder = FlightRecorder(0)
    for index in range(3):
        recorder.record_event("tick", n=index)
    path = recorder.dump("unit-test", out_dir=str(tmp_path))
    torn_path = str(tmp_path / "flight-s0-900.jsonl")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(torn_path, "w", encoding="utf-8") as handle:
        handle.write(text[:-15])  # tear the last record mid-line
    manifest, records = load_bundle(torn_path)
    assert manifest["site"] == 0
    assert len(records) == 2  # torn line skipped
    problems = validate_bundle(torn_path)
    assert any("counts" in problem for problem in problems)


def test_repo_git_sha_resolves_this_checkout(tmp_path):
    assert re.fullmatch(r"[0-9a-f]{12}", repo_git_sha())
    assert repo_git_sha(str(tmp_path)) == "unknown"


# ----------------------------------------------------------------------
# Live cluster: the dump wire op, and dumping under load
# ----------------------------------------------------------------------

async def start_cluster(spec):
    servers = {}
    for site in range(spec.params.n_sites):
        servers[site] = SiteServer(spec, site)
        await servers[site].start()
    client = ClusterClient(spec, timeout=2.0, retries=1)
    await client.wait_ready()
    return servers, client


def test_dump_wire_op_on_live_cluster(tmp_path):
    spec = make_spec(7775)

    async def scenario():
        servers, client = await start_cluster(spec)
        try:
            report = await generate_load(spec, client, verify=True)
            single = await client.dump(0, trigger="wire-test",
                                       out_dir=str(tmp_path))
            fanned, unreachable = await client.try_each(
                "dump", trigger="wire-fan", dir=str(tmp_path))
            return report, single, fanned, unreachable
        finally:
            await client.close()
            for server in servers.values():
                await server.stop()

    report, single, fanned, unreachable = asyncio.run(scenario())
    assert report.convergent and report.serializable

    assert single["ok"] and single["site"] == 0
    manifest, records = load_bundle(single["path"])
    assert manifest["trigger"] == "wire-test"
    assert manifest["site"] == 0
    assert manifest["cluster"]["n_sites"] == 3
    assert single["records"] == len(records)
    assert any(record["type"] == "span"
               and record["event"] == "committed"
               for record in records)
    assert any(record["type"] == "event"
               and record["kind"] == "server-start"
               for record in records)
    states = {record["name"] for record in records
              if record["type"] == "state"}
    assert {"wal", "journal", "watermarks"} <= states

    # The fan-out reached every member; site 0's second dump got the
    # next sequence, and every bundle passes the schema check.
    assert unreachable == []
    assert sorted(fanned) == [0, 1, 2]
    paths = bundle_paths(str(tmp_path))
    assert len(paths) == 4
    for path in paths:
        assert validate_bundle(path) == [], path


def test_dump_under_load_drops_no_acks(tmp_path):
    """Dumps fired while the workload runs: gathering happens on the
    loop but the file write is in the executor, so every transaction
    still gets a decision and the oracles stay green."""
    spec = make_spec(7780)

    async def scenario():
        servers, client = await start_cluster(spec)
        try:
            async def dumper():
                paths = []
                for _ in range(5):
                    responses, _ = await client.try_each(
                        "dump", trigger="under-load",
                        dir=str(tmp_path))
                    paths.extend(response["path"]
                                 for response in responses.values()
                                 if response.get("ok"))
                    await asyncio.sleep(0.05)
                return paths
            report, paths = await asyncio.gather(
                generate_load(spec, client, verify=True), dumper())
            return report, paths
        finally:
            await client.close()
            for server in servers.values():
                await server.stop()

    report, paths = asyncio.run(scenario())
    assert report.convergent and report.serializable
    assert report.committed > 0
    assert report.unknown == 0  # no ack was dropped by the dumps
    assert len(paths) == 15  # 5 rounds x 3 sites all answered
    for path in sorted(set(paths)):
        assert validate_bundle(path) == [], path
