"""The transport seam: protocols talk to the fabric only through
``send``/``set_handler``, so the simulated Network and the live TCP
transport are interchangeable behind :class:`ReplicatedSystem`.

Covers the three seam properties the live runtime depends on:

- injecting an explicit transport (and a subset of hosted sites)
  changes nothing about a protocol's behaviour;
- the live transport honours the Network counter contract and its
  receiver-side dedup;
- the live channel delivers FIFO with acknowledged, gap-free resend
  across connection loss — the property replica serializability rests
  on.
"""

import asyncio

from repro.cluster.codec import read_frame, write_frame
from repro.cluster.transport import LiveTransport
from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.graph.placement import DataPlacement
from repro.harness.convergence import divergent_replicas
from repro.network.message import Message, MessageType
from repro.network.network import Network
from repro.sim.environment import Environment
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)

import pytest


def tiny_placement():
    placement = DataPlacement(3)
    placement.add_item(0, primary=0, replicas=[1, 2])
    placement.add_item(1, primary=1, replicas=[2])
    placement.add_item(2, primary=2)
    return placement


def txn(site, seq, *ops):
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def run_workload(system):
    protocol = system.protocol

    def submit(spec):
        holder = []

        def body():
            yield from protocol.run_transaction(spec.origin, spec,
                                                holder[0])

        holder.append(system.env.process(body()))

    submit(txn(0, 1, ("w", 0)))
    submit(txn(1, 1, ("w", 1)))
    submit(txn(2, 1, ("r", 0), ("w", 2)))
    system.env.run()


def test_explicit_network_transport_is_identical_to_default():
    placement = tiny_placement()

    def build(explicit):
        env = Environment()
        config = SystemConfig()
        transport = (Network(env, placement.n_sites,
                             latency=config.network_latency)
                     if explicit else None)
        system = ReplicatedSystem(env, placement, config,
                                  transport=transport)
        system.use_protocol(make_protocol("dag_wt", system))
        run_workload(system)
        return system

    default, injected = build(False), build(True)
    assert divergent_replicas(default) == []
    assert divergent_replicas(injected) == []
    for site_id in range(3):
        engine_a = default.site_of(site_id).engine
        engine_b = injected.site_of(site_id).engine
        for item in engine_a.item_ids():
            assert engine_a.item(item).value == \
                engine_b.item(item).value
            assert engine_a.item(item).writers == \
                engine_b.item(item).writers
    assert default.network.total_sent == injected.network.total_sent


def test_partial_hosting_only_touches_local_sites():
    placement = tiny_placement()
    env = Environment()
    network = Network(env, placement.n_sites)
    system = ReplicatedSystem(env, placement, SystemConfig(),
                              transport=network, local_sites=[1])
    system.use_protocol(make_protocol("dag_wt", system))
    assert [site.site_id for site in system.local_sites] == [1]
    assert system.site_of(1).engine.has_item(1)
    with pytest.raises(Exception):
        system.site_of(0)
    # Only the hosted site registered a message handler.
    assert sorted(network._handlers) == [1]


def test_live_transport_counters_and_dedup():
    async def scenario():
        transport = LiveTransport(0, {0: ("127.0.0.1", 1),
                                      1: ("127.0.0.1", 2)})
        delivered = []
        transport.set_handler(0, delivered.append)

        message = Message(MessageType.SECONDARY, 1, 0,
                          {"gid": GlobalTransactionId(1, 1),
                           "writes": {0: 5}})
        assert transport.accept(1, "inc-a", 1, message)
        assert not transport.accept(1, "inc-a", 1, message)  # resend
        assert not transport.fresh(1, "inc-a", 1)
        assert transport.fresh(1, "inc-a", 2)
        assert transport.fresh(1, "inc-b", 1)  # new incarnation
        assert len(delivered) == 1

        transport.mark_seen(1, "inc-c", 7)  # journal replay preload
        assert not transport.fresh(1, "inc-c", 3)
        assert transport.fresh(1, "inc-c", 8)

        # Counter contract parity with the simulated Network.
        with pytest.raises(ValueError):
            transport.send(MessageType.WOUND, 0, 0)
        with pytest.raises(ValueError):
            transport.send(MessageType.WOUND, 0, 99)
        transport.send(MessageType.WOUND, 0, 1,
                       gid=GlobalTransactionId(0, 1), reason="x")
        assert transport.total_sent == 1
        assert transport.sent_by_type[MessageType.WOUND] == 1
        assert transport.pending_out == 1  # nothing listening yet
        await transport.close()

    asyncio.run(scenario())


def test_batching_preserves_the_network_counter_contract():
    """``total_sent``/``sent_by_type`` count *messages* (the simulated
    Network's units), never wire frames — batching must not leak into
    the metrics the harness compares against the simulator."""

    async def scenario():
        frames = []

        async def on_connect(reader, writer):
            await read_frame(reader)                      # hello
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                frames.append(frame)

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=16)
        for seq in range(1, 25):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        deadline = asyncio.get_event_loop().time() + 5.0
        while transport.batched_messages < 24:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.01)

        assert transport.total_sent == 24                 # messages
        assert transport.sent_by_type[MessageType.SECONDARY] == 24
        assert transport.pending_out == 24                # none acked
        assert transport.frames_sent == len(frames) < 24  # amortized
        assert transport.batched_messages == 24
        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_live_channel_fifo_with_ack_and_resend_after_reconnect():
    """Kill the receiving end mid-stream without acking everything: on
    reconnect the channel must resend the unacked tail, in order, with
    the same sequence numbers (the receiver dedups, never re-orders)."""

    async def scenario():
        connections = []
        accepting = asyncio.Event()

        async def on_connect(reader, writer):
            record = {"frames": [], "writer": writer}
            connections.append(record)
            accepting.set()
            hello = await read_frame(reader)
            assert hello["kind"] == "hello" and hello["role"] == "peer"
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                record["frames"].append(frame)

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)})
        for seq in range(1, 11):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})

        async def wait_until(predicate, timeout=5.0):
            deadline = asyncio.get_event_loop().time() + timeout
            while not predicate():
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.01)

        await wait_until(lambda: connections and
                         len(connections[0]["frames"]) == 10)
        first = connections[0]["frames"]
        assert [frame["seq"] for frame in first] == list(range(1, 11))
        assert all(frame["kind"] == "msg" for frame in first)
        assert transport.pending_out == 10  # written, none acked

        # Ack the first three, then cut the connection.
        await write_frame(connections[0]["writer"], {"kind": "ack",
                                                     "seq": 3})
        await wait_until(lambda: transport.pending_out == 7)
        connections[0]["writer"].transport.abort()

        # The channel reconnects and resends exactly the unacked tail.
        await wait_until(lambda: len(connections) == 2 and
                         len(connections[1]["frames"]) >= 7)
        resent = connections[1]["frames"]
        assert [frame["seq"] for frame in resent[:7]] == \
            list(range(4, 11))
        await write_frame(connections[1]["writer"], {"kind": "ack",
                                                     "seq": 10})
        await wait_until(lambda: transport.pending_out == 0)

        # New messages continue the same gap-free sequence.
        transport.send(MessageType.SECONDARY, 0, 1,
                       gid=GlobalTransactionId(0, 11), writes={0: 11})
        await wait_until(lambda: len(connections[1]["frames"]) == 8)
        assert connections[1]["frames"][-1]["seq"] == 11

        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())
