"""The transport seam: protocols talk to the fabric only through
``send``/``set_handler``, so the simulated Network and the live TCP
transport are interchangeable behind :class:`ReplicatedSystem`.

Covers the three seam properties the live runtime depends on:

- injecting an explicit transport (and a subset of hosted sites)
  changes nothing about a protocol's behaviour;
- the live transport honours the Network counter contract and its
  receiver-side dedup;
- the live channel delivers FIFO with acknowledged, gap-free resend
  across connection loss — the property replica serializability rests
  on.
"""

import asyncio

from repro.cluster.codec import read_frame, write_frame
from repro.cluster.transport import LiveTransport
from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.graph.placement import DataPlacement
from repro.harness.convergence import divergent_replicas
from repro.network.message import Message, MessageType
from repro.network.network import Network
from repro.sim.environment import Environment
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)

import pytest


def tiny_placement():
    placement = DataPlacement(3)
    placement.add_item(0, primary=0, replicas=[1, 2])
    placement.add_item(1, primary=1, replicas=[2])
    placement.add_item(2, primary=2)
    return placement


def txn(site, seq, *ops):
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def run_workload(system):
    protocol = system.protocol

    def submit(spec):
        holder = []

        def body():
            yield from protocol.run_transaction(spec.origin, spec,
                                                holder[0])

        holder.append(system.env.process(body()))

    submit(txn(0, 1, ("w", 0)))
    submit(txn(1, 1, ("w", 1)))
    submit(txn(2, 1, ("r", 0), ("w", 2)))
    system.env.run()


def test_explicit_network_transport_is_identical_to_default():
    placement = tiny_placement()

    def build(explicit):
        env = Environment()
        config = SystemConfig()
        transport = (Network(env, placement.n_sites,
                             latency=config.network_latency)
                     if explicit else None)
        system = ReplicatedSystem(env, placement, config,
                                  transport=transport)
        system.use_protocol(make_protocol("dag_wt", system))
        run_workload(system)
        return system

    default, injected = build(False), build(True)
    assert divergent_replicas(default) == []
    assert divergent_replicas(injected) == []
    for site_id in range(3):
        engine_a = default.site_of(site_id).engine
        engine_b = injected.site_of(site_id).engine
        for item in engine_a.item_ids():
            assert engine_a.item(item).value == \
                engine_b.item(item).value
            assert engine_a.item(item).writers == \
                engine_b.item(item).writers
    assert default.network.total_sent == injected.network.total_sent


def test_partial_hosting_only_touches_local_sites():
    placement = tiny_placement()
    env = Environment()
    network = Network(env, placement.n_sites)
    system = ReplicatedSystem(env, placement, SystemConfig(),
                              transport=network, local_sites=[1])
    system.use_protocol(make_protocol("dag_wt", system))
    assert [site.site_id for site in system.local_sites] == [1]
    assert system.site_of(1).engine.has_item(1)
    with pytest.raises(Exception):
        system.site_of(0)
    # Only the hosted site registered a message handler.
    assert sorted(network._handlers) == [1]


def test_live_transport_counters_and_dedup():
    async def scenario():
        transport = LiveTransport(0, {0: ("127.0.0.1", 1),
                                      1: ("127.0.0.1", 2)})
        delivered = []
        transport.set_handler(0, delivered.append)

        message = Message(MessageType.SECONDARY, 1, 0,
                          {"gid": GlobalTransactionId(1, 1),
                           "writes": {0: 5}})
        assert transport.accept(1, "inc-a", 1, message)
        assert not transport.accept(1, "inc-a", 1, message)  # resend
        assert not transport.fresh(1, "inc-a", 1)
        assert transport.fresh(1, "inc-a", 2)
        assert transport.fresh(1, "inc-b", 1)  # new incarnation
        assert len(delivered) == 1

        transport.mark_seen(1, "inc-c", 7)  # journal replay preload
        assert not transport.fresh(1, "inc-c", 3)
        assert transport.fresh(1, "inc-c", 8)

        # Counter contract parity with the simulated Network.
        with pytest.raises(ValueError):
            transport.send(MessageType.WOUND, 0, 0)
        with pytest.raises(ValueError):
            transport.send(MessageType.WOUND, 0, 99)
        transport.send(MessageType.WOUND, 0, 1,
                       gid=GlobalTransactionId(0, 1), reason="x")
        assert transport.total_sent == 1
        assert transport.sent_by_type[MessageType.WOUND] == 1
        assert transport.pending_out == 1  # nothing listening yet
        await transport.close()

    asyncio.run(scenario())


def test_batching_preserves_the_network_counter_contract():
    """``total_sent``/``sent_by_type`` count *messages* (the simulated
    Network's units), never wire frames — batching must not leak into
    the metrics the harness compares against the simulator."""

    async def scenario():
        frames = []

        async def on_connect(reader, writer):
            await read_frame(reader)                      # hello
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                frames.append(frame)

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  max_batch=16)
        for seq in range(1, 25):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        deadline = asyncio.get_event_loop().time() + 5.0
        while transport.batched_messages < 24:
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.01)

        assert transport.total_sent == 24                 # messages
        assert transport.sent_by_type[MessageType.SECONDARY] == 24
        assert transport.pending_out == 24                # none acked
        assert transport.frames_sent == len(frames) < 24  # amortized
        assert transport.batched_messages == 24
        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_live_channel_fifo_with_ack_and_resend_after_reconnect():
    """Kill the receiving end mid-stream without acking everything: on
    reconnect the channel must resend the unacked tail, in order, with
    the same sequence numbers (the receiver dedups, never re-orders)."""

    async def scenario():
        connections = []
        accepting = asyncio.Event()

        async def on_connect(reader, writer):
            record = {"frames": [], "writer": writer}
            connections.append(record)
            accepting.set()
            hello = await read_frame(reader)
            assert hello["kind"] == "hello" and hello["role"] == "peer"
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                record["frames"].append(frame)

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)})
        for seq in range(1, 11):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})

        async def wait_until(predicate, timeout=5.0):
            deadline = asyncio.get_event_loop().time() + timeout
            while not predicate():
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.01)

        await wait_until(lambda: connections and
                         len(connections[0]["frames"]) == 10)
        first = connections[0]["frames"]
        assert [frame["seq"] for frame in first] == list(range(1, 11))
        assert all(frame["kind"] == "msg" for frame in first)
        assert transport.pending_out == 10  # written, none acked

        # Ack the first three, then cut the connection.
        await write_frame(connections[0]["writer"], {"kind": "ack",
                                                     "seq": 3})
        await wait_until(lambda: transport.pending_out == 7)
        connections[0]["writer"].transport.abort()

        # The channel reconnects and resends exactly the unacked tail.
        await wait_until(lambda: len(connections) == 2 and
                         len(connections[1]["frames"]) >= 7)
        resent = connections[1]["frames"]
        assert [frame["seq"] for frame in resent[:7]] == \
            list(range(4, 11))
        await write_frame(connections[1]["writer"], {"kind": "ack",
                                                     "seq": 10})
        await wait_until(lambda: transport.pending_out == 0)

        # New messages continue the same gap-free sequence.
        transport.send(MessageType.SECONDARY, 0, 1,
                       gid=GlobalTransactionId(0, 11), writes={0: 11})
        await wait_until(lambda: len(connections[1]["frames"]) == 8)
        assert connections[1]["frames"][-1]["seq"] == 11

        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# The chaos fault seam (repro.chaos plugs in here)
# ----------------------------------------------------------------------

class ScriptedFaults:
    """Deterministic stand-in for a LinkFaultInjector: a fixed verdict
    per (seq, attempt), None otherwise."""

    def __init__(self, verdicts):
        self.verdicts = dict(verdicts)
        self.log = []

    def on_frame(self, src, dst, seq, count):
        attempt = sum(1 for (s, _a) in self.log if s == seq)
        self.log.append((seq, attempt))
        return self.verdicts.get((seq, attempt))


async def _wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        assert asyncio.get_event_loop().time() < deadline
        await asyncio.sleep(0.01)


async def _frame_server(connections, accept_hello=True):
    async def on_connect(reader, writer):
        record = {"frames": [], "writer": writer}
        connections.append(record)
        if accept_hello:
            hello = await read_frame(reader)
            assert hello["kind"] == "hello"
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            record["frames"].append(frame)
            await write_frame(writer, {"kind": "ack",
                                       "seq": frame["seq"]})

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def test_fault_delay_preserves_fifo_order():
    """Injected per-frame delays are head-of-line in the single sender
    task, so they slow the channel but can never reorder it."""
    from repro.chaos.plan import FaultPlan, LinkFault, LinkFaultInjector

    async def scenario():
        connections = []
        server, port = await _frame_server(connections)
        injector = LinkFaultInjector(FaultPlan(seed=11, events=(
            LinkFault(delay=0.001, jitter=0.004),)))
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  faults=injector)
        for seq in range(1, 9):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        await _wait_until(lambda: connections and
                          len(connections[0]["frames"]) == 8)
        assert [frame["seq"] for frame in connections[0]["frames"]] == \
            list(range(1, 9))
        assert len(connections) == 1  # delays never sever
        assert len(injector.log) == 8
        assert all(entry["delay"] > 0 for entry in injector.log)
        await _wait_until(lambda: transport.pending_out == 0)
        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_fault_drop_severs_then_resends_gap_free():
    """A dropped frame is "lost in transit": the connection severs
    before the write, and the reconnect resends the exact sequence —
    the receiver sees a gap-free FIFO stream, just later."""
    from repro.chaos.plan import FaultVerdict

    async def scenario():
        connections = []
        server, port = await _frame_server(connections)
        faults = ScriptedFaults({
            (1, 0): FaultVerdict(delay=0.0, drop=True, ack_loss=False,
                                 reorder=False),
        })
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  faults=faults)
        for seq in range(1, 6):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        await _wait_until(lambda: sum(len(c["frames"])
                                      for c in connections) >= 5)
        assert len(connections) == 2  # the drop severed once
        assert connections[0]["frames"] == []  # seq 1 never hit the wire
        resent = [frame["seq"] for frame in connections[1]["frames"]]
        assert resent == list(range(1, 6))
        await _wait_until(lambda: transport.pending_out == 0)
        await transport.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_fault_ack_loss_resends_and_receiver_dedups():
    """Ack loss severs *after* the write: the receiver holds the frame,
    the sender resends it, and the (src, incarnation, seq) dedup drops
    the duplicate — at-least-once delivery stays exactly-once at the
    protocol queue."""
    from repro.chaos.plan import FaultVerdict

    async def scenario():
        connections = []
        server, port = await _frame_server(connections)
        faults = ScriptedFaults({
            (2, 0): FaultVerdict(delay=0.0, drop=False, ack_loss=True,
                                 reorder=False),
        })
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  faults=faults)
        for seq in range(1, 5):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        await _wait_until(lambda: transport.pending_out == 0 and
                          len(connections) >= 2)
        arrived = [frame["seq"] for record in connections
                   for frame in record["frames"]]
        # Seq 2 reached the wire twice (original + resend) ...
        assert arrived.count(2) == 2
        resent = [frame["seq"] for frame in connections[1]["frames"]]
        # ... via a contiguous resend tail (acks may race the sever, so
        # the tail starts at the lowest unacked seq, at most 2).
        assert resent[0] <= 2
        assert resent == list(range(resent[0], 5))
        # ... but receiver-side dedup admits each seq exactly once.
        receiver = LiveTransport(1, {1: ("127.0.0.1", port + 1)})
        incarnation = transport.incarnation
        assert [seq for seq in arrived
                if receiver.fresh(0, incarnation, seq)] == [1, 2, 3, 4]
        await transport.close()
        await receiver.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


def test_empty_fault_plan_is_byte_identical_to_no_plan():
    """A FaultPlan with no events must be invisible: the byte stream on
    the wire is identical to running without any injector, and the
    injection log stays empty."""
    import itertools

    import repro.network.message as message_module
    from repro.chaos.plan import FaultPlan, LinkFaultInjector

    async def run_once(faults):
        # Pin the two process-wide sources of wire variation: the
        # message id counter and the transport incarnation.
        message_module._msg_counter = itertools.count(1)
        blobs = []
        done = asyncio.Event()

        async def on_connect(reader, writer):
            chunks = []
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            blobs.append(b"".join(chunks))
            done.set()

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        transport = LiveTransport(0, {0: ("127.0.0.1", port - 1),
                                      1: ("127.0.0.1", port)},
                                  faults=faults)
        transport.incarnation = "pinned-incarnation"
        for seq in range(1, 7):
            transport.send(MessageType.SECONDARY, 0, 1,
                           gid=GlobalTransactionId(0, seq),
                           writes={0: seq})
        # No acks come back, so pending_out stays put; wait until the
        # sender has written everything, then close to EOF the server.
        await _wait_until(lambda: transport.frames_sent == 6)
        await asyncio.sleep(0.05)
        await transport.close()
        await done.wait()
        server.close()
        await server.wait_closed()
        return blobs[0]

    async def scenario():
        injector = LinkFaultInjector(FaultPlan(seed=99))
        with_empty_plan = await run_once(injector)
        without_plan = await run_once(None)
        assert with_empty_plan == without_plan
        assert with_empty_plan  # sanity: the stream is non-trivial
        assert injector.log == []

    asyncio.run(scenario())
