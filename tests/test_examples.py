"""Smoke tests: every shipped example runs cleanly, in-process.

The examples are deliverables — regressions here are user-visible.
Running them in-process (``runpy`` with captured stdout) instead of as
subprocesses keeps the whole suite's wall clock low while still
executing each script exactly as ``python examples/<name>.py`` would,
including its ``__main__`` guard.
"""

import contextlib
import io
import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["BackEdge/PSL speedup", "serializable"],
    "data_warehouse.py": ["Global serializability verified",
                          "headquarters"],
    "network_management.py": ["Serializability verified",
                              "Backedges chosen"],
    "anomaly_demo.py": ["checker found the cycle",
                        "global deadlock detected"],
    "protocol_comparison.py": ["All runs passed",
                               "dag_t"],
    "site_recovery.py": ["Recovered site caught up"],
    "live_cluster.py": ["cluster up", "killed", "restarted",
                        "Recovered site caught up"],
}

ARGS = {
    # Keep the slowest example quick in CI.
    "protocol_comparison.py": ["25"],
}


def run_example(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), "missing example {}".format(script)
    stdout = io.StringIO()
    argv = [str(path)] + ARGS.get(script, [])
    saved_argv = sys.argv
    sys.argv = argv
    try:
        with contextlib.redirect_stdout(stdout):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return stdout.getvalue()


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_prints_expected_output(script):
    output = run_example(script)
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in output, (
            "{} output missing {!r}:\n{}".format(script, snippet,
                                                 output))


def test_every_example_file_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
