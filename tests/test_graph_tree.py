"""Tests for propagation-tree construction (paper Sec. 2 property)."""

import pytest

from repro.errors import GraphError
from repro.graph import CopyGraph, PropagationTree, build_propagation_tree
from repro.graph.tree import chain_tree


def diamond_graph():
    graph = CopyGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    return graph


def test_chain_tree_structure():
    tree = chain_tree([0, 1, 2])
    assert tree.parent == {0: None, 1: 0, 2: 1}
    assert tree.roots() == [0]
    assert tree.children(0) == (1,)
    assert tree.depth(2) == 2
    assert tree.root_path(2) == [0, 1, 2]


def test_chain_tree_satisfies_property_for_any_dag():
    graph = diamond_graph()
    tree = chain_tree(graph.topological_order())
    assert tree.satisfies_property_for(graph)


def test_greedy_tree_on_paper_example():
    """Example 1.1's copy graph forces the chain s0-s1-s2 (the paper's own
    argument: s2 is a child of s1 which is a child of s0 in T)."""
    graph = CopyGraph(3)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 2)
    tree = build_propagation_tree(graph)
    assert tree.satisfies_property_for(graph)
    assert tree.parent[1] == 0
    assert tree.parent[2] == 1


def test_greedy_tree_falls_back_to_chain_on_diamond():
    graph = diamond_graph()
    tree = build_propagation_tree(graph)
    assert tree.satisfies_property_for(graph)
    # s3 needs both s1 and s2 as ancestors, impossible without a chain.
    assert tree.depth(3) == 3


def test_greedy_tree_keeps_independent_branches_shallow():
    graph = CopyGraph(5)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 4)
    tree = build_propagation_tree(graph)
    assert tree.satisfies_property_for(graph)
    # No constraint links {1,3} to {2,4}: the tree can branch.
    assert tree.depth(3) == 2
    assert tree.depth(4) == 2


def test_tree_with_multiple_roots_for_disconnected_sites():
    graph = CopyGraph(3)
    graph.add_edge(0, 1)
    # Site 2 holds no replicas of anything and nothing of its own.
    tree = build_propagation_tree(graph)
    assert tree.satisfies_property_for(graph)
    assert 2 in tree.parent


def test_prefer_chain_forces_chain():
    graph = CopyGraph(4)
    graph.add_edge(0, 1)
    tree = build_propagation_tree(graph, prefer_chain=True)
    order = graph.topological_order()
    for earlier, later in zip(order, order[1:]):
        assert tree.parent[later] == earlier


def test_non_topological_order_rejected():
    graph = CopyGraph(2)
    graph.add_edge(0, 1)
    with pytest.raises(GraphError):
        build_propagation_tree(graph, order=[1, 0])


def test_path_down():
    tree = chain_tree([0, 1, 2, 3])
    assert tree.path_down(0, 3) == [1, 2, 3]
    assert tree.path_down(2, 3) == [3]
    with pytest.raises(GraphError):
        tree.path_down(3, 0)


def test_is_ancestor_is_strict():
    tree = chain_tree([0, 1, 2])
    assert tree.is_ancestor(0, 2)
    assert tree.is_ancestor(1, 2)
    assert not tree.is_ancestor(2, 2)
    assert not tree.is_ancestor(2, 0)


def test_subtree():
    tree = PropagationTree({0: None, 1: 0, 2: 0, 3: 1})
    assert tree.subtree(0) == {0, 1, 2, 3}
    assert tree.subtree(1) == {1, 3}
    assert tree.subtree(2) == {2}


def test_tree_rejects_cyclic_parent_map():
    with pytest.raises(GraphError):
        PropagationTree({0: 1, 1: 0})


def test_tree_rejects_unknown_parent():
    with pytest.raises(GraphError):
        PropagationTree({0: 7})
