#!/usr/bin/env python3
"""A live DAG(WT) cluster surviving a site crash, on real sockets.

The simulator's protocol classes run here unchanged, but over TCP: each
site of the copy graph becomes a :class:`SiteServer` process-in-miniature
(own engine, WAL, discrete-event clock pinned to wall time), and updates
propagate through the acknowledged, journalled transport instead of the
simulated network.  The demo

1. starts a 3-site cluster with durable WALs,
2. commits a first wave of transactions through the cluster client,
3. **kills** one replica site abruptly (volatile state gone, WAL and
   message journal survive),
4. keeps committing at the surviving sites while the victim is down,
5. restarts the victim, which recovers from its WAL, replays its inbox
   journal, and pulls the rest via catch-up, and
6. verifies the paper's two global oracles — replica convergence and an
   acyclic dynamic serialization graph — over the live histories.

Usage::

    python examples/live_cluster.py
"""

import asyncio
import os
import tempfile

from repro.cluster.client import ClusterClient
from repro.cluster.codec import decode_value
from repro.cluster.loadgen import history_from_status, wait_quiescent
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.harness.convergence import divergent_copies
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)
from repro.workload.params import WorkloadParams

VICTIM = 2


def txn(site, seq, *ops):
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


async def commit_wave(client, placement, first_seq, n_per_site):
    """Each site updates a few of its own primary items."""
    committed = 0
    for site in range(placement.n_sites):
        primaries = sorted(placement.primary_items_at(site))
        if not primaries:
            continue
        for offset in range(n_per_site):
            item = primaries[offset % len(primaries)]
            spec = txn(site, first_seq + offset, ("r", item),
                       ("w", item))
            outcome = await client.run_transaction(spec)
            if outcome["status"] == "committed":
                committed += 1
    return committed


async def main() -> None:
    params = WorkloadParams(n_sites=3, n_items=12,
                            replication_probability=0.8,
                            deadlock_timeout=0.05)
    spec = ClusterSpec(params=params, protocol="dag_wt", seed=3,
                       base_port=7470)
    placement = spec.build_placement()
    wal_dir = tempfile.mkdtemp(prefix="live-cluster-")

    def wal_path(site):
        return os.path.join(wal_dir, "site{}.wal".format(site))

    servers = {}
    for site in range(3):
        servers[site] = SiteServer(spec, site, wal_path=wal_path(site),
                                   anti_entropy_interval=0.3)
        await servers[site].start()
    client = ClusterClient(spec, timeout=5.0)
    await client.wait_ready()
    print("3-site DAG(WT) cluster up on ports {}..{}".format(
        spec.base_port, spec.base_port + 2))

    committed = await commit_wave(client, placement, first_seq=0,
                                  n_per_site=4)
    print("wave 1: {} transactions committed cluster-wide".format(
        committed))

    servers[VICTIM].kill()
    print("site s{} killed (volatile state dropped; WAL + inbox "
          "journal survive)".format(VICTIM))

    survivors = [s for s in range(3) if s != VICTIM]
    committed = 0
    for site in survivors:
        primaries = sorted(placement.primary_items_at(site))
        for seq in range(4, 8):
            item = primaries[seq % len(primaries)]
            outcome = await client.run_transaction(
                txn(site, seq, ("w", item)))
            if outcome["status"] == "committed":
                committed += 1
    print("wave 2 (victim down): {} transactions committed at the "
          "survivors".format(committed))

    servers[VICTIM] = SiteServer(spec, VICTIM,
                                 wal_path=wal_path(VICTIM),
                                 anti_entropy_interval=0.3)
    await servers[VICTIM].start()
    assert servers[VICTIM].recovered, "restart should replay the WAL"
    print("site s{} restarted: WAL replayed, inbox journal "
          "re-delivered, catch-up requested".format(VICTIM))

    statuses = await wait_quiescent(client, timeout=20.0,
                                    settle_polls=3)
    state = {site: decode_value(status["items"])
             for site, status in statuses.items()}
    divergent = divergent_copies(placement, state)
    histories = [history_from_status(status)
                 for status in statuses.values()]
    cycle = find_dsg_cycle(build_serialization_graph(histories))

    assert not divergent, "replicas diverged: {}".format(divergent)
    assert cycle is None, "DSG cycle: {}".format(cycle)
    print("Recovered site caught up: all replicas convergent, "
          "serialization graph acyclic")

    for server in servers.values():
        await server.stop()
    await client.close()


if __name__ == "__main__":
    asyncio.run(main())
