#!/usr/bin/env python3
"""The paper's two worked anomalies, demonstrated live.

**Example 1.1** — with a DAG copy graph, propagating replica updates
*indiscriminately* can interleave so that T1 is serialized before T2 at
one site and after it at another.  We first replay that broken
interleaving through the serializability checker (it finds the cycle),
then run the same scenario under DAG(WT), DAG(T) and BackEdge and show
the cycle cannot occur.

**Example 4.1** — with a cyclic copy graph, *no* lazy propagation order
can serialize two concurrent read-write transactions; the BackEdge
protocol resolves the resulting global deadlock by aborting one of them.

Usage::

    python examples/anomaly_demo.py
"""

from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.errors import SerializabilityViolation, TransactionAborted
from repro.graph.placement import DataPlacement
from repro.harness.serializability import check_serializable
from repro.sim.environment import Environment
from repro.storage.history import SiteHistory
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    SubtransactionKind,
    TransactionSpec,
)


def spec(site, seq, *ops):
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def replay_example_11_anomaly() -> None:
    """Hand-build the broken interleaving of Example 1.1 and let the
    checker catch it."""
    print("Example 1.1 — the anomaly under indiscriminate propagation")
    print("-" * 60)
    t1, t2, t3 = (GlobalTransactionId(0, 1), GlobalTransactionId(1, 1),
                  GlobalTransactionId(2, 1))
    s1 = SiteHistory(1)
    s1.record(t1, SubtransactionKind.SECONDARY, 1.0, {}, {"a": 1})
    s1.record(t2, SubtransactionKind.PRIMARY, 2.0, {"a": 1}, {"b": 1})
    s2 = SiteHistory(2)
    s2.record(t2, SubtransactionKind.SECONDARY, 3.0, {}, {"b": 1})
    s2.record(t3, SubtransactionKind.PRIMARY, 4.0, {"a": 0, "b": 1}, {})
    s2.record(t1, SubtransactionKind.SECONDARY, 5.0, {}, {"a": 1})
    try:
        check_serializable([s1, s2])
        raise AssertionError("the planted anomaly went undetected!")
    except SerializabilityViolation as violation:
        print("  checker found the cycle: {}".format(
            " -> ".join(str(g) for g in violation.cycle)))
    print()


def run_example_11_under(protocol_name: str) -> None:
    placement = DataPlacement(3)
    placement.add_item("a", primary=0, replicas=[1, 2])
    placement.add_item("b", primary=1, replicas=[2])
    env = Environment()
    system = ReplicatedSystem(env, placement, SystemConfig())
    protocol = make_protocol(protocol_name, system)
    system.use_protocol(protocol)

    def client(delay, transaction):
        ref = []

        def body():
            yield env.timeout(delay)
            yield from protocol.run_transaction(
                transaction.origin, transaction, ref[0])

        ref.append(env.process(body()))

    client(0.00, spec(0, 1, ("w", "a")))                  # T1
    client(0.08, spec(1, 1, ("r", "a"), ("w", "b")))      # T2
    client(0.16, spec(2, 1, ("r", "a"), ("r", "b")))      # T3
    env.run(until=2.0)
    check_serializable(site.engine.history for site in system.sites)
    print("  {:>8}: serializable (T1 -> T2 order enforced at every "
          "site)".format(protocol_name))


def run_example_41() -> None:
    print("Example 4.1 — cyclic copy graph, concurrent cross updates")
    print("-" * 60)
    placement = DataPlacement(2)
    placement.add_item("a", primary=0, replicas=[1])
    placement.add_item("b", primary=1, replicas=[0])
    env = Environment()
    system = ReplicatedSystem(env, placement, SystemConfig())
    protocol = make_protocol("backedge", system)
    system.use_protocol(protocol)

    outcomes = {}

    def client(transaction):
        ref = []

        def body():
            try:
                yield from protocol.run_transaction(
                    transaction.origin, transaction, ref[0])
                outcomes[transaction.gid] = "committed"
            except TransactionAborted as exc:
                outcomes[transaction.gid] = "aborted ({})".format(
                    exc.reason.split(" ")[0])

        ref.append(env.process(body()))

    client(spec(0, 1, ("r", "b"), ("w", "a")))   # T1 at s0
    client(spec(1, 1, ("r", "a"), ("w", "b")))   # T2 at s1
    env.run(until=3.0)

    for gid, outcome in sorted(outcomes.items()):
        print("  {} -> {}".format(gid, outcome))
    check_serializable(site.engine.history for site in system.sites)
    print("  global deadlock detected via the lock timeout; the "
          "surviving schedule is serializable")
    print()


def main() -> None:
    replay_example_11_anomaly()
    print("Example 1.1 — the same scenario under the paper's protocols")
    print("-" * 60)
    for protocol_name in ("dag_wt", "dag_t", "backedge"):
        run_example_11_under(protocol_name)
    print()
    run_example_41()


if __name__ == "__main__":
    main()
