#!/usr/bin/env python3
"""Site crash and log-based recovery inside a replicated system.

The paper's substrate, DataBlitz, is a recoverable main-memory storage
manager, and replication is motivated by reliability (Sec. 1).  This
example equips every site engine with a write-ahead log, runs a DAG(WT)
workload, *crashes* one replica site (volatile state wiped), recovers it
from its log, and continues the workload — verifying that the recovered
site holds exactly its pre-crash committed state and that post-recovery
propagation brings every replica back in sync.

Usage::

    python examples/site_recovery.py
"""

from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.errors import TransactionAborted
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.sim.environment import Environment
from repro.storage.log import WriteAheadLog, recover
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)


def txn(site, seq, *ops):
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def main() -> None:
    placement = DataPlacement(3)
    placement.add_item("stock", primary=0, replicas=[1, 2])
    placement.add_item("price", primary=1, replicas=[2])
    placement.add_item("note", primary=2)

    env = Environment()
    system = ReplicatedSystem(env, placement, SystemConfig())
    protocol = make_protocol("dag_wt", system)
    system.use_protocol(protocol)

    # Equip every engine with a write-ahead log, replaying the schema
    # CREATEs that already happened into it.
    logs = {}
    for site in system.sites:
        wal = WriteAheadLog()
        site.engine.attach_wal(wal)
        for item_id in sorted(site.engine.item_ids()):
            from repro.storage.log import LogRecordKind
            wal.append(LogRecordKind.CREATE, item=item_id,
                       value=site.engine.item(item_id).value,
                       time=env.now)
        logs[site.site_id] = wal

    def run_txn(spec, delay):
        ref = []

        def body():
            yield env.timeout(delay)
            try:
                yield from protocol.run_transaction(spec.origin, spec,
                                                    ref[0])
            except TransactionAborted as exc:
                print("  {} aborted: {}".format(spec.gid, exc.reason))

        ref.append(env.process(body()))

    print("Phase 1: updates flow to all replicas")
    run_txn(txn(0, 1, ("w", "stock")), 0.00)
    run_txn(txn(1, 1, ("r", "stock"), ("w", "price")), 0.10)
    env.run(until=1.0)
    victim = system.site_of(2)
    print("  site 2 before crash: stock=v{}, price=v{}".format(
        victim.engine.item("stock").committed_version,
        victim.engine.item("price").committed_version))

    print("Phase 2: site 2 crashes; volatile state is gone")
    victim.engine.crash()
    assert not victim.engine.has_item("stock")

    print("Phase 3: recovery replays the redo log")
    victim.engine = recover(env, 2, logs[2],
                            lock_timeout=system.config.lock_timeout)
    protocol.install_lazy_timeout_policy(victim.engine.locks)
    print("  site 2 after recovery: stock=v{} (value preserved), "
          "price=v{}".format(
              victim.engine.item("stock").committed_version,
              victim.engine.item("price").committed_version))
    assert victim.engine.item("stock").committed_version == 1
    assert victim.engine.item("price").committed_version == 1

    print("Phase 4: the workload continues through the recovered site")
    run_txn(txn(0, 2, ("w", "stock")), 0.00)
    run_txn(txn(2, 1, ("r", "stock"), ("r", "price"), ("w", "note")),
            0.40)
    env.run(until=env.now + 2.0)

    check_convergence(system)
    graph = build_serialization_graph(
        site.engine.history for site in system.sites)
    assert find_dsg_cycle(graph) is None
    print("Recovered site caught up; all replicas convergent; the "
          "post-crash execution is serializable.")


if __name__ == "__main__":
    main()
