#!/usr/bin/env python3
"""Telecom network management on a *cyclic* copy graph — BackEdge demo.

The paper's introduction motivates strong consistency for "network
management applications [that] require real-time dissemination of
updates to replicas".  Here three regional network-operation centres
(NOCs) each master their own region's device state but mirror their
neighbours' state for cross-region diagnostics — a fully cyclic copy
graph, where no purely lazy protocol can guarantee serializability
(paper Example 4.1 / Sec. 4).

The BackEdge protocol handles it: it removes a minimal set of backedges,
propagates those updates eagerly (locks + 2PC) and everything else
lazily.  The demo runs concurrent cross-region updates, prints which
edges became backedges, and verifies serializability plus replica
convergence.

Usage::

    python examples/network_management.py
"""

import random

from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.errors import TransactionAborted
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.sim.environment import Environment
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)

NOC = {0: "noc-east", 1: "noc-central", 2: "noc-west"}
DEVICES_PER_REGION = 6


def build_placement() -> DataPlacement:
    """Each NOC masters its region's device records; the other NOCs hold
    replicas — every ordered pair of sites gets a copy edge."""
    placement = DataPlacement(3)
    for region in range(3):
        others = [site for site in range(3) if site != region]
        for device in range(DEVICES_PER_REGION):
            item = "r{}-dev{}".format(region, device)
            placement.add_item(item, primary=region, replicas=others)
    return placement


def main() -> None:
    placement = build_placement()
    env = Environment()
    system = ReplicatedSystem(env, placement, SystemConfig())
    protocol = make_protocol("backedge", system)
    system.use_protocol(protocol)

    print("Copy graph: every NOC replicates every other NOC's devices.")
    print("Cycle found: {}".format(
        " -> ".join(NOC[s] for s in system.copy_graph.find_cycle())))
    print("Backedges chosen (eager propagation): {}".format(
        ", ".join("{}->{}".format(NOC[src], NOC[dst])
                  for src, dst in sorted(protocol.backedges))))
    print("Propagation chain (lazy propagation): {}".format(
        " -> ".join(NOC[s] for s in protocol.site_order)))
    print()

    rng = random.Random(11)
    outcomes = []

    def operator(site, count):
        """An operator session at one NOC: updates local devices after
        consulting mirrored state of the neighbours."""
        ref = []

        def body():
            for seq in range(1, count + 1):
                yield env.timeout(rng.uniform(0.0, 0.02))
                neighbour = rng.choice(
                    [s for s in range(3) if s != site])
                ops = (
                    Operation(OpType.READ, "r{}-dev{}".format(
                        neighbour, rng.randrange(DEVICES_PER_REGION))),
                    Operation(OpType.WRITE, "r{}-dev{}".format(
                        site, rng.randrange(DEVICES_PER_REGION))),
                    Operation(OpType.WRITE, "r{}-dev{}".format(
                        site, rng.randrange(DEVICES_PER_REGION))),
                )
                spec = TransactionSpec(GlobalTransactionId(site, seq),
                                       site, ops)
                try:
                    yield from protocol.run_transaction(site, spec,
                                                        ref[0])
                    outcomes.append((spec.gid, "committed"))
                except TransactionAborted as exc:
                    outcomes.append((spec.gid, exc.reason.split(" ")[0]))

        ref.append(env.process(body()))

    for site in range(3):
        operator(site, count=25)
    env.run(until=30.0)
    env.run(until=env.now + 2.0)  # Drain lazy propagation.

    committed = sum(1 for _gid, status in outcomes
                    if status == "committed")
    print("Operator transactions: {} committed, {} aborted "
          "(global deadlocks resolved by the 50 ms timeout)".format(
              committed, len(outcomes) - committed))

    check_serializable(site.engine.history for site in system.sites)
    check_convergence(system)
    print("Serializability verified across all three NOCs; every mirror "
          "converged to its master's state.")


if __name__ == "__main__":
    main()
