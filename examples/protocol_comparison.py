#!/usr/bin/env python3
"""Compare all five protocols on one workload — a miniature of the
paper's Sec. 5 study plus the eager baseline.

Runs DAG(WT), DAG(T), BackEdge (chain + tree variants), PSL and eager
2PC on the identical seeded workload (acyclic copy graph so the DAG
protocols qualify) and prints a side-by-side table of the Sec. 5.3
metrics: throughput, abort rate, response time, propagation delay and
message counts.

Usage::

    python examples/protocol_comparison.py [txns_per_thread]
"""

import sys

from repro import ExperimentConfig, WorkloadParams, run_experiment

CONTENDERS = [
    ("dag_wt", {}),
    ("dag_t", {}),
    ("backedge", {}),
    ("backedge-tree", {"variant": "tree"}),
    ("psl", {}),
    ("eager", {}),
]


def main() -> None:
    txns = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    params = WorkloadParams(backedge_probability=0.0,
                            transactions_per_thread=txns)
    print("Workload: {} sites, {} items, r={}, b=0 (DAG), "
          "{} txns/thread, {} threads/site".format(
              params.n_sites, params.n_items,
              params.replication_probability, txns,
              params.threads_per_site))
    print()
    header = "{:<15}{:>12}{:>10}{:>10}{:>12}{:>10}".format(
        "protocol", "txn/s/site", "abort %", "resp ms", "propag ms",
        "messages")
    print(header)
    print("-" * len(header))

    for label, options in CONTENDERS:
        protocol = label.split("-")[0]
        config = ExperimentConfig(protocol=protocol, params=params,
                                  seed=21, protocol_options=dict(options),
                                  drain_time=2.0)
        result = run_experiment(config)
        assert result.serializable
        print("{:<15}{:>12.2f}{:>10.1f}{:>10.1f}{:>12.1f}{:>10}".format(
            label, result.average_throughput, result.abort_rate,
            result.mean_response_time * 1000.0,
            result.mean_propagation_delay * 1000.0,
            result.total_messages))

    print()
    print("All runs passed the global serializability check.")
    print("Note how PSL trades propagation (none) for remote-read "
          "messages, and eager trades messages for lock-hold time.")


if __name__ == "__main__":
    main()
