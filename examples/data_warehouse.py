#!/usr/bin/env python3
"""Distributed data warehouse on a DAG copy graph — the paper's
motivating deployment ("in many real life situations, for example, a
data warehousing environment, the copy graph is naturally a DAG").

Topology: one operational headquarters site feeds two regional warehouse
sites, which in turn feed three departmental data marts.  Reference data
is mastered at headquarters and replicated downstream; each region also
masters its own regional aggregates, replicated into its marts.

The example builds this placement explicitly (no random workload
generator), runs it under the DAG(T) protocol — updates flow directly
along copy-graph edges, ordered by vector timestamps — and shows that
every downstream copy converges while analysts' read-only transactions
run purely locally.

Usage::

    python examples/data_warehouse.py
"""

from repro.core.base import ReplicatedSystem, SystemConfig, make_protocol
from repro.errors import TransactionAborted
from repro.graph.placement import DataPlacement
from repro.harness.convergence import check_convergence
from repro.harness.serializability import check_serializable
from repro.network.message import MessageType
from repro.sim.environment import Environment
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    TransactionSpec,
)

HEADQUARTERS = 0
REGION_EAST, REGION_WEST = 1, 2
MART_SALES, MART_FINANCE, MART_OPS = 3, 4, 5

SITE_NAMES = {
    HEADQUARTERS: "headquarters",
    REGION_EAST: "region-east",
    REGION_WEST: "region-west",
    MART_SALES: "mart-sales",
    MART_FINANCE: "mart-finance",
    MART_OPS: "mart-ops",
}


def build_placement() -> DataPlacement:
    placement = DataPlacement(6)
    # Reference data mastered at HQ, replicated everywhere downstream.
    for item in ("products", "customers", "fx-rates"):
        placement.add_item(item, primary=HEADQUARTERS,
                           replicas=[REGION_EAST, REGION_WEST,
                                     MART_SALES, MART_FINANCE, MART_OPS])
    # Regional aggregates, replicated into that region's marts.
    placement.add_item("east-sales", primary=REGION_EAST,
                       replicas=[MART_SALES, MART_FINANCE])
    placement.add_item("west-sales", primary=REGION_WEST,
                       replicas=[MART_SALES, MART_OPS])
    # Purely local scratch items at the marts.
    placement.add_item("sales-dashboard", primary=MART_SALES)
    placement.add_item("finance-ledger", primary=MART_FINANCE)
    placement.add_item("ops-report", primary=MART_OPS)
    return placement


def txn(site, seq, *ops) -> TransactionSpec:
    operations = tuple(
        Operation(OpType.READ if kind == "r" else OpType.WRITE, item)
        for kind, item in ops)
    return TransactionSpec(GlobalTransactionId(site, seq), site,
                           operations)


def main() -> None:
    placement = build_placement()
    env = Environment()
    system = ReplicatedSystem(env, placement, SystemConfig())
    protocol = make_protocol("dag_t", system)
    system.use_protocol(protocol)

    print("Copy graph edges (all point downstream -> a DAG):")
    for src, dst in sorted(system.copy_graph.edges):
        print("  {} -> {} via {}".format(
            SITE_NAMES[src], SITE_NAMES[dst],
            sorted(system.copy_graph.edge_items(src, dst))))
    print()

    workload = [
        # HQ refreshes the product catalogue and FX rates.
        (0.00, txn(HEADQUARTERS, 1, ("w", "products"),
                   ("w", "fx-rates"))),
        # Regions post aggregates derived from the reference data.
        (0.05, txn(REGION_EAST, 1, ("r", "products"),
                   ("w", "east-sales"))),
        (0.06, txn(REGION_WEST, 1, ("r", "products"),
                   ("w", "west-sales"))),
        # Another HQ refresh races the regional loads.
        (0.07, txn(HEADQUARTERS, 2, ("w", "customers"))),
        # Analysts at the marts: read-only, fully local transactions.
        (0.30, txn(MART_SALES, 1, ("r", "east-sales"),
                   ("r", "west-sales"), ("w", "sales-dashboard"))),
        (0.30, txn(MART_FINANCE, 1, ("r", "fx-rates"),
                   ("r", "east-sales"), ("w", "finance-ledger"))),
        (0.30, txn(MART_OPS, 1, ("r", "customers"),
                   ("r", "west-sales"), ("w", "ops-report"))),
    ]

    outcomes = []

    def client(delay, spec):
        ref = []

        def body():
            yield env.timeout(delay)
            try:
                yield from protocol.run_transaction(spec.origin, spec,
                                                    ref[0])
                outcomes.append((spec.gid, "committed", env.now))
            except TransactionAborted as exc:
                outcomes.append((spec.gid, exc.reason, env.now))

        ref.append(env.process(body()))

    for delay, spec in workload:
        client(delay, spec)
    env.run(until=3.0)

    print("Transaction outcomes:")
    for gid, status, when in sorted(outcomes, key=lambda o: o[2]):
        print("  {} at {:<13} -> {} (t={:.3f}s)".format(
            gid, SITE_NAMES[gid.site], status, when))
    print()

    check_serializable(site.engine.history for site in system.sites)
    check_convergence(system)
    print("Global serializability verified; every warehouse/mart copy "
          "converged to the headquarters values.")
    print("Messages sent: {} ({} secondaries, {} dummies)".format(
        system.network.total_sent,
        system.network.sent_by_type[MessageType.SECONDARY],
        system.network.sent_by_type[MessageType.DUMMY]))


if __name__ == "__main__":
    main()
