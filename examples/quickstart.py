#!/usr/bin/env python3
"""Quickstart: run one replicated-database experiment end to end.

Builds the paper's default 9-site system (Table 1 parameters), runs the
BackEdge protocol and the primary-site-locking baseline on the identical
workload, and prints the headline metrics of Sec. 5.3.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, WorkloadParams, run_experiment


def main() -> None:
    # The paper's Table 1 defaults, scaled to 100 transactions per
    # thread so the example finishes in seconds (the paper runs 1000).
    params = WorkloadParams(transactions_per_thread=100)

    print("Running the default workload under two protocols...")
    print("  sites={}, items={}, r={}, b={}, threads/site={}".format(
        params.n_sites, params.n_items, params.replication_probability,
        params.backedge_probability, params.threads_per_site))
    print()

    results = {}
    for protocol in ("backedge", "psl"):
        config = ExperimentConfig(protocol=protocol, params=params,
                                  seed=7)
        result = run_experiment(config)
        results[protocol] = result
        print(result.summary())
        assert result.serializable, "protocol produced a non-serializable run!"

    speedup = (results["backedge"].average_throughput
               / results["psl"].average_throughput)
    print()
    print("BackEdge/PSL speedup: {:.2f}x "
          "(paper: 2-3x at the default settings)".format(speedup))
    print("Every execution was verified globally serializable via the "
          "direct-serialization-graph checker.")


if __name__ == "__main__":
    main()
