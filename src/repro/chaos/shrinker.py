"""Shrink a failing chaos scenario to a minimal fault script.

A chaos script that trips an oracle is usually noisy: background
jitter rules, drops and kills that played no part in the actual
failure.  :func:`shrink_scenario` minimises the *fault events* with
the explorer's :func:`~repro.explorer.shrink.ddmin` — every probe is a
full fresh chaos run (new WAL directory, same workload seed), so the
surviving script is a self-contained reproducer, not a snapshot.

Only the plan's events shrink; the cluster spec, fault seed and any
injected regression are part of the scenario's identity and stay
fixed.  The common shape after shrinking a regression scenario is a
single ``kill`` event — the crash that turns the neutered durability
barrier into observable divergence.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import typing

from repro.chaos.controller import ChaosRunReport, ChaosScenario, \
    run_chaos
from repro.explorer.shrink import ddmin


def shrink_scenario(scenario: ChaosScenario, work_dir: str,
                    quiesce_timeout: float = 30.0,
                    txn_timeout: float = 30.0,
                    monitor: bool = True,
                    log: typing.Optional[
                        typing.Callable[[str], None]] = None
                    ) -> typing.Tuple[ChaosScenario, ChaosRunReport]:
    """Minimise ``scenario``'s fault events while the run still fails.

    ``scenario`` must currently fail (``run_chaos(...).ok is False``)
    — probes run under ``work_dir`` (one fresh subdirectory each).
    Returns the minimal scenario and its (still-failing) report.
    """
    os.makedirs(work_dir, exist_ok=True)
    counter = itertools.count()
    cache: typing.Dict[tuple, ChaosRunReport] = {}

    def probe(events: typing.Sequence) -> ChaosRunReport:
        key = tuple(events)
        if key not in cache:
            candidate = scenario.replaced(plan=dataclasses.replace(
                scenario.plan, events=tuple(events)))
            wal_dir = os.path.join(
                work_dir, "probe{}".format(next(counter)))
            report = run_chaos(candidate, wal_dir,
                               quiesce_timeout=quiesce_timeout,
                               txn_timeout=txn_timeout,
                               monitor=monitor)
            cache[key] = report
            if log is not None:
                log("shrink probe {}: {} event(s) -> {}".format(
                    len(cache), len(key),
                    "still fails" if not report.ok else "passes"))
        return cache[key]

    baseline = probe(scenario.plan.events)
    if baseline.ok:
        raise ValueError(
            "shrink_scenario needs a failing scenario (baseline run "
            "was clean)")

    minimal_events = ddmin(list(scenario.plan.events),
                           lambda events: not probe(events).ok)
    minimal = scenario.replaced(plan=dataclasses.replace(
        scenario.plan, events=tuple(minimal_events)))
    return minimal, cache[tuple(minimal_events)]
