"""Parallel chaos sweep: a protocol × seed × fault-profile matrix.

The sweep is the chaos harness's breadth axis: where one
:func:`~repro.chaos.controller.run_chaos` call answers "does *this*
script break *this* cluster", the sweep answers "does any cell of the
matrix" — every propagation protocol, over copy graphs drawn from
different workload seeds (seeds select the placement, hence DAG vs
back-edge shape), under every fault profile.

Runner/Worker shape: the runner enumerates cells, gives each a
disjoint TCP port range and WAL directory, and fans them out to
``parallel`` worker *processes* (a live cluster is an asyncio loop +
real sockets — processes, not threads, are the isolation unit).
Workers post one JSON verdict each onto a shared queue; the runner
aggregates them into a :class:`ChaosSweepReport`.  Workers are spawned
(not forked) so each child owns a pristine interpreter with no
inherited event-loop state.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import queue as queue_module
import typing

from repro.chaos.controller import ChaosScenario, run_chaos
from repro.chaos.plan import PROFILES, profile_plan
from repro.cluster.spec import ClusterSpec


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One matrix cell: a protocol on a seed under a fault profile."""

    protocol: str
    seed: int
    profile: str

    @property
    def key(self) -> str:
        return "{}/seed{}/{}".format(self.protocol, self.seed,
                                     self.profile)


def _cell_scenario(cell: SweepCell, template: ClusterSpec,
                   base_port: int, port_stride: int, index: int,
                   fault_seed: int) -> ChaosScenario:
    spec = dataclasses.replace(
        template, protocol=cell.protocol, seed=cell.seed,
        base_port=base_port + index * port_stride)
    plan = profile_plan(cell.profile, seed=fault_seed,
                        n_sites=spec.params.n_sites)
    return ChaosScenario(spec=spec, plan=plan, name=cell.key)


def _worker_main(payload_json: str, results) -> None:
    """Run one cell in its own process; post a single verdict."""
    from repro.errors import ConfigurationError

    payload = json.loads(payload_json)
    key = payload["key"]
    try:
        scenario = ChaosScenario.from_json(payload["scenario"])
        report = run_chaos(
            scenario, payload["wal_dir"],
            quiesce_timeout=payload["quiesce_timeout"],
            txn_timeout=payload["txn_timeout"],
            monitor=payload["monitor"])
        results.put({"key": key, "report": report.to_json()})
    except ConfigurationError as exc:
        # A structurally impossible cell (e.g. DAG(WT) over a seed
        # whose copy graph has back edges) is skipped, not failed —
        # the matrix is allowed to be rectangular.
        results.put({"key": key, "skipped": str(exc)})
    except BaseException as exc:  # the verdict must always arrive
        results.put({"key": key, "error": "{}: {}".format(
            type(exc).__name__, exc)})


@dataclasses.dataclass
class ChaosSweepReport:
    """Aggregated verdict of a sweep."""

    #: ``key -> {"cell", "ok", "violations", ...}`` per matrix cell.
    cells: typing.Dict[str, typing.Dict[str, typing.Any]] = \
        dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        judged = [cell for cell in self.cells.values()
                  if not cell.get("skipped")]
        return bool(judged) and all(cell.get("ok") for cell in judged)

    @property
    def failed(self) -> typing.List[str]:
        return sorted(key for key, cell in self.cells.items()
                      if not cell.get("ok") and not cell.get("skipped"))

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {"version": 1, "ok": self.ok, "cells": self.cells}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def format(self) -> str:
        lines = ["chaos sweep: {}/{} cell(s) OK".format(
            sum(1 for cell in self.cells.values() if cell.get("ok")),
            len(self.cells))]
        for key in sorted(self.cells):
            cell = self.cells[key]
            if cell.get("skipped"):
                verdict = "skipped: {}".format(cell["skipped"])
            elif cell.get("error"):
                verdict = "ERROR: {}".format(cell["error"])
            elif cell.get("ok"):
                verdict = "ok ({} committed, {:.2f} s)".format(
                    cell.get("committed", 0),
                    cell.get("duration", 0.0))
            else:
                verdict = "FAIL: " + "; ".join(
                    cell.get("violations", ["?"]))
            lines.append("  {:<32} {}".format(key, verdict))
        return "\n".join(lines)


def run_sweep(template: ClusterSpec,
              protocols: typing.Sequence[str],
              seeds: typing.Sequence[int],
              profiles: typing.Sequence[str],
              wal_root: str,
              parallel: int = 2,
              base_port: typing.Optional[int] = None,
              port_stride: typing.Optional[int] = None,
              fault_seed: int = 0,
              quiesce_timeout: float = 30.0,
              txn_timeout: float = 30.0,
              monitor: bool = True,
              cell_timeout: float = 180.0,
              log: typing.Optional[
                  typing.Callable[[str], None]] = None
              ) -> ChaosSweepReport:
    """Fan the matrix out to ``parallel`` worker processes.

    ``template`` supplies everything the matrix does not vary
    (workload params, durability, batch, host).  Each cell gets
    ``base_port + index * port_stride`` so concurrent clusters never
    share a socket, and its own WAL directory under ``wal_root``.
    """
    for profile in profiles:
        if profile not in PROFILES:
            raise ValueError("unknown fault profile {!r} (known: {})"
                             .format(profile,
                                     ", ".join(sorted(PROFILES))))
    cells = [SweepCell(protocol, seed, profile)
             for protocol in protocols
             for seed in seeds
             for profile in profiles]
    if not cells:
        raise ValueError("empty sweep matrix")
    if base_port is None:
        base_port = template.base_port
    if port_stride is None:
        port_stride = template.params.n_sites + 2

    os.makedirs(wal_root, exist_ok=True)
    context = multiprocessing.get_context("spawn")
    results: typing.Any = context.Queue()
    report = ChaosSweepReport()
    pending = list(enumerate(cells))
    active: typing.Dict[str, typing.Any] = {}

    def launch(index: int, cell: SweepCell) -> None:
        scenario = _cell_scenario(cell, template, base_port,
                                  port_stride, index, fault_seed)
        payload = json.dumps({
            "key": cell.key,
            "scenario": scenario.to_json(),
            "wal_dir": os.path.join(
                wal_root, cell.key.replace("/", "_")),
            "quiesce_timeout": quiesce_timeout,
            "txn_timeout": txn_timeout,
            "monitor": monitor,
        })
        process = context.Process(target=_worker_main,
                                  args=(payload, results))
        process.start()
        active[cell.key] = process
        if log is not None:
            log("sweep: started {} (pid {})".format(
                cell.key, process.pid))

    while pending or active:
        while pending and len(active) < max(1, parallel):
            index, cell = pending.pop(0)
            launch(index, cell)
        try:
            message = results.get(timeout=cell_timeout)
        except queue_module.Empty:
            for key, process in active.items():
                process.terminate()
                report.cells[key] = {
                    "cell": key, "ok": False,
                    "error": "timed out after {:.0f} s".format(
                        cell_timeout)}
            for process in active.values():
                process.join()
            active.clear()
            continue
        key = message["key"]
        process = active.pop(key)
        process.join()
        if "skipped" in message:
            report.cells[key] = {"cell": key, "ok": False,
                                 "skipped": message["skipped"]}
        elif "error" in message:
            report.cells[key] = {"cell": key, "ok": False,
                                 "error": message["error"]}
        else:
            body = message["report"]
            report.cells[key] = {
                "cell": key,
                "ok": body["ok"],
                "violations": body["violations"],
                "committed": body["committed"],
                "aborted": body["aborted"],
                "unknown": body["unknown"],
                "duration": body["duration"],
                "kills": len(body["kills"]),
                "injections": len(body["injections"]),
            }
        if log is not None:
            cell = report.cells[key]
            log("sweep: finished {} -> {}".format(
                key, "skipped" if cell.get("skipped")
                else "ok" if cell["ok"] else "FAIL"))
    return report
