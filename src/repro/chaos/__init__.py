"""Chaos harness: seeded fault schedules against the live cluster.

The simulator's explorer (:mod:`repro.explorer`) perturbs *virtual*
schedules; this package perturbs the *real* asyncio/TCP cluster — link
delay/jitter/drop at the transport seam, site kill/restart through the
server lifecycle, WAL/journal corruption between restarts — from a
seeded, serializable :class:`~repro.chaos.plan.FaultPlan`, then judges
the run with the same offline oracles plus the live watchdog.  Failing
scripts shrink to minimal replayable JSON artifacts with the explorer's
``ddmin``; a Runner/Worker sweep fans a protocol × copy-graph × fault
matrix out to parallel processes.  See ``docs/CHAOS.md``.
"""

from repro.chaos.controller import (
    REGRESSIONS,
    ChaosRunReport,
    ChaosScenario,
    run_chaos,
)
from repro.chaos.plan import (
    PROFILES,
    CorruptFault,
    FaultPlan,
    FaultVerdict,
    KillFault,
    LinkFault,
    LinkFaultInjector,
    profile_plan,
)
from repro.chaos.shrinker import shrink_scenario
from repro.chaos.sweep import ChaosSweepReport, SweepCell, run_sweep

__all__ = [
    "ChaosRunReport",
    "ChaosScenario",
    "ChaosSweepReport",
    "CorruptFault",
    "FaultPlan",
    "FaultVerdict",
    "KillFault",
    "LinkFault",
    "LinkFaultInjector",
    "PROFILES",
    "REGRESSIONS",
    "SweepCell",
    "profile_plan",
    "run_chaos",
    "run_sweep",
    "shrink_scenario",
]
