"""The chaos controller: script -> workload -> oracle verdict.

One :func:`run_chaos` call boots the scenario's cluster in-process
(every site a :class:`~repro.cluster.server.SiteServer` sharing one
event loop, exactly the ``loadgen --spawn`` shape), arms the fault
plan — a shared :class:`~repro.chaos.plan.LinkFaultInjector` on every
transport, one asyncio task per ``kill`` event driving the crash /
corrupt / restart lifecycle — and drives the spec's matched workload
through a :class:`~repro.cluster.client.ClusterClient` while a light
watchdog rides along.  After the schedule completes and the cluster
quiesces, the verdict runs the offline oracles (replica convergence,
DSG acyclicity) plus a fresh post-run watchdog whose polls must be
critical-free.

Tolerance policy: faults within the paper's model (delays, jitter,
drops repaired by resend — everything the reliable-FIFO assumption of
Sec. 1.1 absorbs) must leave the run clean *including* zero during-run
monitor criticals.  Kill/corrupt events and injected regressions are
out-of-model: their during-run alerts (site-down while a site is down)
are reported, not charged, and the verdict rests on the oracles and
the post-run polls.

Protocol regressions (``REGRESSIONS``) are injected from the outside —
the controller neuters one durability barrier on the target site, the
server code itself stays honest:

``forward-before-wal``
    The target's WAL appender never reaches stable storage, so commit
    responses and forwarded updates leave ahead of their commit
    records — the exact promise :meth:`SiteServer._sync_wal` exists to
    keep.  A kill then drops everything the site ever promised; its
    replicas keep the forwarded updates, recovery cannot restore the
    primaries, and the convergence oracle flags the divergence.
    Catch-up cannot mask it (replicas pull *from* the primary).
``ack-before-journal``
    The target's inbox journal never reaches stable storage, so
    inbound batches are acked — and retired by their senders — while
    the journal holds the only durable copy.  The loss window is
    updates acked but not yet applied+WAL-synced at the kill, so
    detection wants ``catchup_on_start=False`` and anti-entropy off
    (otherwise the pull plane repairs the gap, which is the point of
    having it).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import time
import typing

from repro.chaos.plan import FaultPlan, KillFault, LinkFaultInjector
from repro.cluster.client import ClusterClient, ClusterError
from repro.cluster.codec import decode_value
from repro.cluster.loadgen import history_from_status, wait_quiescent
from repro.cluster.server import SiteServer
from repro.cluster.spec import ClusterSpec
from repro.cluster.wal import CorruptLogError
from repro.harness.convergence import divergent_copies
from repro.harness.serializability import (
    build_serialization_graph,
    find_dsg_cycle,
)
from repro.graph.placement import DataPlacement
from repro.obs.monitor import MonitorConfig, Watchdog
from repro.reconfig import (PlacementChange, ReconfigCoordinator,
                            ReconfigError)
from repro.sim.rng import RngRegistry
from repro.workload.generator import TransactionGenerator

#: Protocol regressions the controller can inject (see module docs).
REGRESSIONS = ("forward-before-wal", "ack-before-journal")


@dataclasses.dataclass
class ChaosScenario:
    """Everything one chaos run needs: cluster + script + switches."""

    spec: ClusterSpec
    plan: FaultPlan = dataclasses.field(default_factory=FaultPlan)
    #: Injected protocol regression (``None`` = honest servers).
    regression: typing.Optional[str] = None
    #: Which site the regression neuters (default: the first kill's
    #: victim, else site 0).
    regression_site: typing.Optional[int] = None
    #: Start-time catch-up pull.  Off when studying regressions that
    #: the anti-entropy plane would repair.
    catchup_on_start: bool = True
    #: Periodic anti-entropy interval, seconds (0 disables).
    anti_entropy_interval: float = 0.5
    #: Timed epoch transitions driven during the run: each entry is
    #: ``{"at": seconds, "change": PlacementChange JSON}``.  A kill
    #: scheduled inside a transition window is the reconfiguration
    #: crash test — the driver retries until the change lands, and the
    #: verdict checks the epoch-recovery invariant (every member in
    #: the same final epoch) plus the oracles on the *final* placement.
    reconfig: typing.Tuple[typing.Dict[str, typing.Any], ...] = ()
    #: Per-site spec overrides for mixed-member runs — maps a site id
    #: to replaced :class:`ClusterSpec` fields, e.g. ``{1:
    #: {"wire_format": "json"}}`` boots site 1 as a JSON-only member.
    #: Only per-process knobs are admissible: an override that changes
    #: the cluster fingerprint would just be a member of a different
    #: cluster, so ``validate`` rejects it.
    member_overrides: typing.Dict[int, typing.Dict[str, typing.Any]] \
        = dataclasses.field(default_factory=dict)
    name: str = ""

    def validate(self) -> "ChaosScenario":
        self.spec.validate()
        self.plan.validate(self.spec.params.n_sites)
        if self.regression is not None and \
                self.regression not in REGRESSIONS:
            raise ValueError(
                "unknown regression {!r} (known: {})".format(
                    self.regression, ", ".join(REGRESSIONS)))
        for entry in self.reconfig:
            if float(entry.get("at", -1)) < 0:
                raise ValueError("reconfig entry needs 'at' >= 0")
            PlacementChange.from_json(entry["change"])
        for site, overrides in self.member_overrides.items():
            if not 0 <= int(site) < self.spec.params.n_sites:
                raise ValueError(
                    "member_overrides site {} out of range".format(site))
            member = self.member_spec(int(site)).validate()
            if member.fingerprint() != self.spec.fingerprint():
                raise ValueError(
                    "member_overrides for site {} change the cluster "
                    "fingerprint ({!r})".format(site, overrides))
        return self

    def member_spec(self, site: int) -> ClusterSpec:
        """The spec site ``site`` boots with (overrides applied)."""
        overrides = self.member_overrides.get(site)
        if not overrides:
            return self.spec
        return dataclasses.replace(self.spec, **overrides)

    @property
    def target_site(self) -> int:
        """The regression's victim site."""
        if self.regression_site is not None:
            return self.regression_site
        kills = self.plan.kill_events()
        return kills[0].site if kills else 0

    @property
    def out_of_model(self) -> bool:
        """True when the scenario exceeds the paper's fault tolerance
        (crashes, corruption or an injected regression) — during-run
        monitor criticals are then expected, not charged."""
        return bool(self.plan.kill_events() or
                    self.plan.corrupt_events() or
                    self.regression is not None)

    def replaced(self, **changes) -> "ChaosScenario":
        return dataclasses.replace(self, **changes)

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {
            "version": 1,
            "name": self.name,
            "spec": self.spec.to_json(),
            "plan": self.plan.to_json(),
            "regression": self.regression,
            "regression_site": self.regression_site,
            "catchup_on_start": self.catchup_on_start,
            "anti_entropy_interval": self.anti_entropy_interval,
            "reconfig": list(self.reconfig),
            "member_overrides": {str(site): dict(overrides)
                                 for site, overrides
                                 in self.member_overrides.items()},
        }

    @classmethod
    def from_json(cls, obj: typing.Mapping[str, typing.Any]
                  ) -> "ChaosScenario":
        return cls(
            spec=ClusterSpec.from_json(obj["spec"]),
            plan=FaultPlan.from_json(obj.get("plan", {})),
            regression=obj.get("regression"),
            regression_site=obj.get("regression_site"),
            catchup_on_start=bool(obj.get("catchup_on_start", True)),
            anti_entropy_interval=float(
                obj.get("anti_entropy_interval", 0.5)),
            reconfig=tuple(obj.get("reconfig", ())),
            member_overrides={int(site): dict(overrides)
                              for site, overrides
                              in obj.get("member_overrides",
                                         {}).items()},
            name=obj.get("name", ""),
        ).validate()

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ChaosScenario":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


@dataclasses.dataclass
class ChaosRunReport:
    """Verdict of one chaos run."""

    scenario: typing.Dict[str, typing.Any]
    ok: bool = True
    #: Human-readable oracle/verdict violations (empty on a clean run).
    violations: typing.List[str] = dataclasses.field(
        default_factory=list)
    duration: float = 0.0
    committed: int = 0
    aborted: int = 0
    unknown: int = 0
    convergent: bool = True
    divergent: int = 0
    serializable: bool = True
    dsg_nodes: int = 0
    #: Site kills executed: ``{"site", "at", "down_for"}`` each.
    kills: typing.List[typing.Dict[str, typing.Any]] = \
        dataclasses.field(default_factory=list)
    #: Corruption events applied and how each was caught
    #: (``via`` = ``"error"`` | ``"torn-repair"`` | ``"silent"``).
    corruption: typing.List[typing.Dict[str, typing.Any]] = \
        dataclasses.field(default_factory=list)
    #: During-run watchdog summary (kills make these expected).
    alerts_during: typing.Dict[str, typing.Any] = dataclasses.field(
        default_factory=dict)
    #: Post-quiesce watchdog summary (criticals here always fail).
    alerts_post: typing.Dict[str, typing.Any] = dataclasses.field(
        default_factory=dict)
    #: Epoch transitions completed: ``{"change", "epoch", "attempts"}``.
    reconfigs: typing.List[typing.Dict[str, typing.Any]] = \
        dataclasses.field(default_factory=list)
    #: Final configuration epoch (0 when the run never reconfigured).
    final_epoch: int = 0
    #: The injector's canonical (sorted) injection log.
    injections: typing.List[typing.Dict[str, typing.Any]] = \
        dataclasses.field(default_factory=list)
    #: Flight-recorder bundles dumped on a failing verdict (paths).
    bundles: typing.List[str] = dataclasses.field(default_factory=list)

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return dataclasses.asdict(self)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def format(self) -> str:
        lines = [
            "chaos run: {} ({:.2f} s) — {}".format(
                self.scenario.get("name") or "unnamed", self.duration,
                "OK" if self.ok else "FAIL"),
            "workload: {} committed, {} aborted, {} unknown".format(
                self.committed, self.aborted, self.unknown),
            "oracles: convergent={} serializable={} ({} DSG "
            "nodes)".format(
                "yes" if self.convergent else
                "NO ({} divergent)".format(self.divergent),
                "yes" if self.serializable else "NO", self.dsg_nodes),
            "faults: {} injection decision(s), {} kill(s), {} "
            "corruption(s)".format(
                len(self.injections), len(self.kills),
                len(self.corruption)),
        ]
        if self.reconfigs or self.final_epoch:
            lines.append(
                "reconfig: {} transition(s), final epoch {}".format(
                    len(self.reconfigs), self.final_epoch))
        if self.alerts_during:
            lines.append("monitor during run: {} critical, {} warning "
                         "over {} poll(s)".format(
                             self.alerts_during.get("critical", 0),
                             self.alerts_during.get("warning", 0),
                             self.alerts_during.get("polls", 0)))
        if self.alerts_post:
            lines.append("monitor post-quiesce: {} critical, {} "
                         "warning over {} poll(s)".format(
                             self.alerts_post.get("critical", 0),
                             self.alerts_post.get("warning", 0),
                             self.alerts_post.get("polls", 0)))
        if self.bundles:
            lines.append(
                "flight bundles: {} dumped under {}".format(
                    len(self.bundles),
                    os.path.dirname(self.bundles[0]) or "."))
        for violation in self.violations:
            lines.append("VIOLATION: " + violation)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Corruption plumbing
# ----------------------------------------------------------------------

def _corrupt_path(scenario: ChaosScenario, wal_dir: str,
                  site: int, target: str) -> str:
    base = os.path.join(wal_dir, "site{}.wal".format(site))
    return base if target == "wal" else base + ".inbox"


def _apply_corruption(event, path: str,
                      pristine: typing.Dict[str, bytes]) -> bool:
    """Damage ``path`` per ``event``; returns False when the file is
    missing/empty (nothing to damage).  The pristine bytes are kept so
    a detected bit flip can be healed and the run completed."""
    if not os.path.exists(path):
        return False
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return False
    pristine[path] = data
    if event.mode == "bitflip":
        offset = event.offset if event.offset >= 0 \
            else len(data) + event.offset
        offset = max(0, min(len(data) - 1, offset))
        damaged = bytearray(data)
        damaged[offset] ^= (1 << event.bit)
        with open(path, "wb") as handle:
            handle.write(bytes(damaged))
        return True
    # Torn tail: cut strictly inside the final record, simulating an
    # OS crash that tore the last page mid-line.  Reload must repair
    # to the last complete record boundary, never error.
    boundary = data.rfind(b"\n", 0, len(data) - 1) + 1
    cut = len(data) + event.offset if event.offset < 0 else event.offset
    cut = max(boundary + 1, min(len(data) - 1, cut))
    if cut >= len(data):
        return False
    os.truncate(path, cut)
    return True


def _lying_sync(appender) -> typing.Callable[[], int]:
    """A lying fsync for ``appender``: drops the pending records and
    advances the durability watermark as if they reached disk.  The
    lie must cover the watermark too — the server's group-commit
    barrier re-checks ``synced_records`` before releasing responses
    and acks, so a sync that merely does nothing turns the regression
    into (honest) unavailability instead of the silent loss under
    test."""
    def sync() -> int:
        with appender._io_lock:
            with appender._buf_lock:
                count = len(appender._pending)
                appender._pending = []
                appender.synced_records = appender.appended
        return count
    return sync


def _inject_regression(server: SiteServer,
                       regression: typing.Optional[str]) -> None:
    """Neuter one durability barrier on ``server`` (the server code
    itself stays honest — the regression lives in the harness)."""
    if regression == "forward-before-wal" and server.wal is not None:
        server.wal._out.sync = _lying_sync(server.wal._out)
    elif regression == "ack-before-journal" and \
            server.journal is not None:
        server.journal._out.sync = _lying_sync(server.journal._out)


def _change_applied(change: PlacementChange,
                    placement: DataPlacement) -> bool:
    """Whether ``placement`` already reflects ``change`` — a retried
    transition may find its work done (committed just before a crash,
    then healed by gossip)."""
    try:
        if change.kind == "add-replica":
            return change.site in placement.sites_of(change.item)
        if change.kind == "drop-replica":
            return change.site not in placement.sites_of(change.item)
        if change.kind == "migrate-primary":
            return placement.primary_site(change.item) == change.site
        return not placement.items_at(change.site)  # remove-site
    except Exception:  # noqa: BLE001 - unknown item etc.
        return False


async def _drive_reconfigs(scenario: ChaosScenario, client,
                           report: ChaosRunReport,
                           deadline_s: float) -> None:
    """Run the scenario's timed epoch transitions, retrying each across
    member crashes until it lands (or the deadline charges a
    violation)."""
    coordinator = ReconfigCoordinator(client, timeout=10.0)
    started = time.monotonic()
    for entry in scenario.reconfig:
        delay = float(entry["at"]) - (time.monotonic() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        change = PlacementChange.from_json(entry["change"])
        attempts = 0
        while True:
            attempts += 1
            try:
                done = await coordinator.execute(change)
                report.reconfigs.append({
                    "change": change.to_json(), "epoch": done.epoch,
                    "attempts": attempts})
                break
            except (ReconfigError, ClusterError, OSError) as exc:
                # A member died mid-transition (the scenario's kill):
                # the transition aborted cleanly.  Wait for the
                # restart, then retry — unless a prior attempt's
                # commit actually landed and was healed outward.
                if time.monotonic() - started > deadline_s:
                    report.violations.append(
                        "reconfig: {} never committed: {}".format(
                            change.describe(), exc))
                    return
                await asyncio.sleep(0.5)
                try:
                    epoch, placement = \
                        await coordinator.current_placement()
                except (ReconfigError, ClusterError, OSError):
                    continue
                if _change_applied(change, placement):
                    report.reconfigs.append({
                        "change": change.to_json(), "epoch": epoch,
                        "attempts": attempts})
                    break


# ----------------------------------------------------------------------
# The controller
# ----------------------------------------------------------------------

def _broadcast_event(servers: typing.Dict[int, SiteServer],
                     kind: str, **fields) -> None:
    """Stamp a wall-clock event into every site's flight recorder —
    faults and alerts are cluster-level facts, and carrying them in
    each bundle is what lets the postmortem align them against the
    per-site spans.  Recording into a killed server's recorder is
    harmless (pure memory on a dead object)."""
    for server in servers.values():
        server.flight.record_event(kind, **fields)


async def _start_site(scenario: ChaosScenario, wal_dir: str, site: int,
                      injector: LinkFaultInjector) -> SiteServer:
    server = SiteServer(
        scenario.member_spec(site), site,
        wal_path=os.path.join(wal_dir, "site{}.wal".format(site)),
        anti_entropy_interval=scenario.anti_entropy_interval,
        faults=injector,
        catchup_on_start=scenario.catchup_on_start)
    try:
        await server.start()
    except BaseException:
        server.kill()
        raise
    return server


async def _site_schedule(scenario: ChaosScenario, wal_dir: str,
                         kill: KillFault,
                         servers: typing.Dict[int, SiteServer],
                         injector: LinkFaultInjector,
                         report: ChaosRunReport) -> None:
    """One kill event's lifecycle: crash, corrupt, restart, verify the
    corruption was not silently accepted."""
    await asyncio.sleep(kill.at)
    servers[kill.site].kill()
    report.kills.append({"site": kill.site, "at": kill.at,
                         "down_for": kill.down_for})
    _broadcast_event(servers, "fault", fault="kill", victim=kill.site,
                     down_for=kill.down_for)
    pristine: typing.Dict[str, bytes] = {}
    applied = []
    for event in scenario.plan.corrupt_events(kill.site):
        path = _corrupt_path(scenario, wal_dir, kill.site, event.target)
        if _apply_corruption(event, path, pristine):
            applied.append((event, path))
            _broadcast_event(servers, "fault", fault="corrupt",
                             victim=kill.site, target=event.target,
                             mode=event.mode)
    await asyncio.sleep(kill.down_for)

    detected_error: typing.Optional[str] = None
    try:
        replacement = await _start_site(scenario, wal_dir, kill.site,
                                        injector)
    except CorruptLogError as exc:
        detected_error = str(exc)
        # Heal the damage and restart for real so the run completes
        # (the detection itself is the result being tested).
        for path, data in pristine.items():
            with open(path, "wb") as handle:
                handle.write(data)
        replacement = await _start_site(scenario, wal_dir, kill.site,
                                        injector)
    servers[kill.site] = replacement

    for event, path in applied:
        record = dict(event.to_json(), via="silent")
        if event.mode == "bitflip":
            if detected_error is not None:
                record["via"] = "error"
                record["detail"] = detected_error
            else:
                torn = (replacement.wal.torn_tail
                        if event.target == "wal"
                        else replacement.journal.torn_tail)
                if torn:
                    record["via"] = "torn-repair"
                else:
                    report.violations.append(
                        "silent-corruption: s{} restarted over a "
                        "flipped bit in its {} without error or "
                        "repair".format(kill.site, event.target))
        else:  # torn
            if detected_error is not None:
                report.violations.append(
                    "unrepaired-torn-tail: s{} raised on a torn {} "
                    "tail instead of repairing it: {}".format(
                        kill.site, event.target, detected_error))
                record["via"] = "error"
            else:
                record["via"] = "torn-repair"
        report.corruption.append(record)


async def _run_chaos(scenario: ChaosScenario, wal_dir: str,
                     quiesce_timeout: float, txn_timeout: float,
                     monitor: bool,
                     monitor_config: typing.Optional[MonitorConfig],
                     bundle_dir: typing.Optional[str] = None
                     ) -> ChaosRunReport:
    spec = scenario.spec
    injector = LinkFaultInjector(scenario.plan)
    report = ChaosRunReport(scenario=scenario.to_json())
    servers: typing.Dict[int, SiteServer] = {}
    client: typing.Optional[ClusterClient] = None
    watchdog: typing.Optional[Watchdog] = None
    watchdog_task: typing.Optional[asyncio.Task] = None
    started = time.monotonic()
    try:
        for site in range(spec.params.n_sites):
            servers[site] = await _start_site(scenario, wal_dir, site,
                                              injector)
        if scenario.regression is not None:
            _inject_regression(servers[scenario.target_site],
                               scenario.regression)
        client = ClusterClient(spec, timeout=txn_timeout)
        await client.wait_ready()
        if monitor and spec.obs:
            config = monitor_config if monitor_config is not None \
                else MonitorConfig(interval=0.25, convergence_every=0,
                                   trace_limit=0)
            watchdog = Watchdog(
                spec, client, config=config,
                on_alert=lambda alert: _broadcast_event(
                    servers, "alert", rule=alert.rule,
                    severity=alert.severity, alert_site=alert.site,
                    message=alert.message))
            watchdog_task = asyncio.get_running_loop().create_task(
                watchdog.run())

        schedule = [
            asyncio.get_running_loop().create_task(
                _site_schedule(scenario, wal_dir, kill, servers,
                               injector, report))
            for kill in scenario.plan.kill_events()]
        reconfig_task: typing.Optional[asyncio.Task] = None
        if scenario.reconfig:
            reconfig_task = asyncio.get_running_loop().create_task(
                _drive_reconfigs(scenario, client, report,
                                 deadline_s=quiesce_timeout))

        generator = TransactionGenerator(
            spec.params, spec.build_placement(),
            RngRegistry(spec.seed).stream("workload"))

        async def worker(site: int, thread: int) -> None:
            for txn_spec in generator.thread_stream(site, thread):
                outcome = await client.run_transaction(txn_spec)
                status = outcome["status"]
                if status == "committed":
                    report.committed += 1
                elif status == "aborted":
                    report.aborted += 1
                else:
                    report.unknown += 1

        await asyncio.gather(*(
            worker(site, thread)
            for site in range(spec.params.n_sites)
            for thread in range(spec.params.threads_per_site)))
        for task in schedule:
            await task
        if reconfig_task is not None:
            await reconfig_task

        if watchdog is not None:
            watchdog.request_stop()
            await watchdog_task
            watchdog_task = None
            summary = watchdog.summary()
            report.alerts_during = summary
            if summary["critical"] and not scenario.out_of_model:
                report.violations.append(
                    "monitor-critical: {} critical alert(s) in a "
                    "within-tolerance run ({})".format(
                        summary["critical"],
                        ", ".join(sorted(summary["by_rule"]))))

        try:
            statuses = await wait_quiescent(client,
                                            timeout=quiesce_timeout)
        except (TimeoutError, ClusterError, OSError) as exc:
            report.violations.append(
                "quiesce: cluster did not settle: {}".format(exc))
            statuses = {}

        final_placement = spec.build_placement()
        if statuses:
            report.final_epoch = max(
                int(status.get("epoch", 0))
                for status in statuses.values())
            if scenario.reconfig:
                # The epoch-recovery invariant: every member (including
                # any that crashed and recovered from its WAL) must end
                # the run in one agreed epoch, and the oracles below
                # judge against that epoch's placement, not genesis.
                epochs = {site: int(status.get("epoch", 0))
                          for site, status in statuses.items()}
                if len(set(epochs.values())) > 1:
                    report.violations.append(
                        "epoch-divergence: members ended in different "
                        "epochs {}".format(epochs))
                if report.final_epoch > 0:
                    try:
                        _, final_placement = await ReconfigCoordinator(
                            client).current_placement()
                    except (ReconfigError, ClusterError, OSError) as exc:
                        report.violations.append(
                            "reconfig: cannot read the final placement: "
                            "{}".format(exc))
        if statuses:
            state = {site: decode_value(status["items"])
                     for site, status in statuses.items()}
            problems = divergent_copies(final_placement, state)
            report.convergent = not problems
            report.divergent = len(problems)
            if problems:
                report.violations.append(
                    "convergence: {} divergent cop{} (e.g. {})".format(
                        len(problems),
                        "y" if len(problems) == 1 else "ies",
                        problems[0]))
            histories = [history_from_status(status)
                         for status in statuses.values()]
            graph = build_serialization_graph(histories)
            report.dsg_nodes = len(graph)
            cycle = find_dsg_cycle(graph)
            report.serializable = cycle is None
            if cycle is not None:
                report.violations.append(
                    "serializability: DSG cycle {}".format(
                        " -> ".join(str(gid) for gid in cycle)))

        # Post-quiesce polls from a fresh watchdog: every site must be
        # up and answering, replicas current, no divergence — even for
        # crash scenarios, this is the "recovered" assertion.
        if monitor and spec.obs and statuses:
            post = Watchdog(spec, client, config=MonitorConfig(
                interval=0.1, convergence_every=1, trace_limit=0,
                down_polls=1))
            for _ in range(2):
                await post.poll_once()
            post.close()
            report.alerts_post = post.summary()
            if report.alerts_post["critical"]:
                report.violations.append(
                    "post-monitor-critical: {} critical alert(s) "
                    "after quiesce ({})".format(
                        report.alerts_post["critical"],
                        ", ".join(sorted(
                            report.alerts_post["by_rule"]))))

        # Failing verdict: dump every member's flight recorder before
        # teardown so the postmortem has a bundle per surviving site.
        # A crashed-and-restarted member's recorder only spans its
        # current incarnation — the previous life's black box is its
        # WAL and trace file on disk.
        if bundle_dir is not None and report.violations:
            os.makedirs(bundle_dir, exist_ok=True)
            for site in sorted(servers):
                try:
                    report.bundles.append(
                        await servers[site].flight.dump_async(
                            "chaos-verdict", out_dir=bundle_dir))
                except OSError:
                    pass
    finally:
        if watchdog is not None:
            watchdog.request_stop()
            if watchdog_task is not None:
                try:
                    await watchdog_task
                except Exception:
                    pass
            watchdog.close()
        if client is not None:
            await client.close()
        for server in servers.values():
            try:
                await server.stop()
            except Exception:
                pass

    report.duration = time.monotonic() - started
    report.injections = injector.sorted_log()
    report.ok = not report.violations
    return report


def run_chaos(scenario: ChaosScenario, wal_dir: str,
              quiesce_timeout: float = 30.0, txn_timeout: float = 30.0,
              monitor: bool = True,
              monitor_config: typing.Optional[MonitorConfig] = None,
              bundle_dir: typing.Optional[str] = None
              ) -> ChaosRunReport:
    """Execute one chaos scenario end to end (synchronous entry point).

    ``wal_dir`` must be a fresh directory per run — the WALs are both
    the crash-recovery substrate and the corruption target.
    ``monitor_config`` overrides the during-run watchdog config (e.g.
    to turn on stuck-propagation localisation via ``trace_limit``).
    ``bundle_dir`` arms the chaos-verdict flight-recorder trigger: a
    run with violations dumps one incident bundle per member there,
    plus the injection log as ``injections.json`` for
    ``repro postmortem --injections``.
    """
    scenario.validate()
    os.makedirs(wal_dir, exist_ok=True)
    report = asyncio.run(_run_chaos(scenario, wal_dir,
                                    quiesce_timeout=quiesce_timeout,
                                    txn_timeout=txn_timeout,
                                    monitor=monitor,
                                    monitor_config=monitor_config,
                                    bundle_dir=bundle_dir))
    if bundle_dir is not None and report.bundles:
        path = os.path.join(bundle_dir, "injections.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.injections, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    return report
