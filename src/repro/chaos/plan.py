"""Seeded, serializable fault scripts and their live injector.

A :class:`FaultPlan` is a JSON-serializable script of three event
kinds:

``link``
    A standing perturbation of outbound frames on matching channels:
    fixed ``delay`` plus seeded ``jitter``, probabilistic ``drop``
    (frame lost before its bytes are written; the connection is
    severed and the reconnect machinery resends), ``ack_loss`` (frame
    written, then the connection severed so the ack is lost; the
    resend is dropped by receiver dedup) and ``reorder`` (an extra,
    larger delay that perturbs *inter-channel* arrival order —
    within-channel order is untouchable by construction, because the
    paper's Sec. 1.1 fault model assumes reliable FIFO channels and
    the transport's dedup would turn a within-channel swap into
    message loss).
``kill``
    SIGKILL-equivalent crash of one site at ``at`` seconds into the
    workload, restarted ``down_for`` seconds later from its WAL.
``corrupt``
    Damage to the killed site's WAL or inbox journal while it is down:
    a single-bit flip at a chosen offset (out-of-model damage — the
    record checksums must refuse the file) or a torn tail (in-model
    crash damage — reload must silently repair it).  A ``corrupt``
    event applies at the next ``kill`` of the same site and is a no-op
    without one.

Every probabilistic decision is a pure function of ``(plan seed, kind,
src, dst, seq, attempt)``, so the same seed and script replay the same
injections — byte for byte in the recorded injection log — regardless
of wall-clock timing.  The injector never touches frame contents: an
empty plan leaves the wire byte-identical to running with no plan.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

#: Smallest extra delay a reorder decision adds (seconds) — enough to
#: overtake same-instant frames on sibling channels.
REORDER_FLOOR_S = 0.02


@dataclasses.dataclass(frozen=True)
class LinkFault:
    """Standing perturbation of channels matching ``src -> dst``
    (``None`` is a wildcard)."""

    src: typing.Optional[int] = None
    dst: typing.Optional[int] = None
    #: Fixed per-frame delay, seconds.
    delay: float = 0.0
    #: Seeded uniform extra delay in ``[0, jitter)``, seconds.
    jitter: float = 0.0
    #: Probability a frame attempt is dropped before its write.
    drop: float = 0.0
    #: Probability a written frame's ack is lost.
    ack_loss: float = 0.0
    #: Probability of an extra inter-channel reorder delay.
    reorder: float = 0.0

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and \
            (self.dst is None or self.dst == dst)

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {"kind": "link", "src": self.src, "dst": self.dst,
                "delay": self.delay, "jitter": self.jitter,
                "drop": self.drop, "ack_loss": self.ack_loss,
                "reorder": self.reorder}


@dataclasses.dataclass(frozen=True)
class KillFault:
    """Crash ``site`` at ``at`` seconds, restart ``down_for`` later."""

    site: int
    at: float
    down_for: float = 0.5

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {"kind": "kill", "site": self.site, "at": self.at,
                "down_for": self.down_for}


@dataclasses.dataclass(frozen=True)
class CorruptFault:
    """Damage ``site``'s log while it is down (at its next kill)."""

    site: int
    #: ``"wal"`` or ``"journal"`` (the ``.inbox`` file).
    target: str = "wal"
    #: ``"bitflip"`` (must be detected) or ``"torn"`` (must repair).
    mode: str = "bitflip"
    #: Byte offset of the damage; negative counts from the end.
    offset: int = -4
    #: Bit to flip (``bitflip`` mode only).
    bit: int = 2

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {"kind": "corrupt", "site": self.site,
                "target": self.target, "mode": self.mode,
                "offset": self.offset, "bit": self.bit}


def event_from_json(obj: typing.Mapping[str, typing.Any]):
    kind = obj.get("kind")
    if kind == "link":
        return LinkFault(
            src=obj.get("src"), dst=obj.get("dst"),
            delay=float(obj.get("delay", 0.0)),
            jitter=float(obj.get("jitter", 0.0)),
            drop=float(obj.get("drop", 0.0)),
            ack_loss=float(obj.get("ack_loss", 0.0)),
            reorder=float(obj.get("reorder", 0.0)))
    if kind == "kill":
        return KillFault(site=int(obj["site"]), at=float(obj["at"]),
                         down_for=float(obj.get("down_for", 0.5)))
    if kind == "corrupt":
        return CorruptFault(site=int(obj["site"]),
                            target=obj.get("target", "wal"),
                            mode=obj.get("mode", "bitflip"),
                            offset=int(obj.get("offset", -4)),
                            bit=int(obj.get("bit", 2)))
    raise ValueError("unknown fault event kind {!r}".format(kind))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable fault script."""

    seed: int = 0
    events: typing.Tuple = ()

    def validate(self, n_sites: typing.Optional[int] = None
                 ) -> "FaultPlan":
        for event in self.events:
            if isinstance(event, LinkFault):
                for name in ("drop", "ack_loss", "reorder"):
                    p = getattr(event, name)
                    if not 0.0 <= p <= 1.0:
                        raise ValueError(
                            "link {} probability {} outside [0, 1]"
                            .format(name, p))
                if event.delay < 0 or event.jitter < 0:
                    raise ValueError("negative link delay/jitter")
            elif isinstance(event, KillFault):
                if event.at < 0 or event.down_for < 0:
                    raise ValueError("negative kill timing")
                if n_sites is not None and not \
                        0 <= event.site < n_sites:
                    raise ValueError("kill site {} outside the "
                                     "cluster".format(event.site))
            elif isinstance(event, CorruptFault):
                if event.target not in ("wal", "journal"):
                    raise ValueError("corrupt target must be wal or "
                                     "journal, got {!r}".format(
                                         event.target))
                if event.mode not in ("bitflip", "torn"):
                    raise ValueError("corrupt mode must be bitflip or "
                                     "torn, got {!r}".format(event.mode))
                if not 0 <= event.bit <= 7:
                    raise ValueError("corrupt bit must be 0..7")
            else:
                raise ValueError("unknown event {!r}".format(event))
        return self

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def link_events(self) -> typing.List[LinkFault]:
        return [e for e in self.events if isinstance(e, LinkFault)]

    def kill_events(self) -> typing.List[KillFault]:
        return sorted((e for e in self.events
                       if isinstance(e, KillFault)),
                      key=lambda e: e.at)

    def corrupt_events(self, site: typing.Optional[int] = None
                       ) -> typing.List[CorruptFault]:
        return [e for e in self.events
                if isinstance(e, CorruptFault) and
                (site is None or e.site == site)]

    # ------------------------------------------------------------------
    # Serialisation (the replayable script artifact)
    # ------------------------------------------------------------------

    def to_json(self) -> typing.Dict[str, typing.Any]:
        return {"version": 1, "seed": self.seed,
                "events": [event.to_json() for event in self.events]}

    @classmethod
    def from_json(cls, obj: typing.Mapping[str, typing.Any]
                  ) -> "FaultPlan":
        return cls(seed=int(obj.get("seed", 0)),
                   events=tuple(event_from_json(e)
                                for e in obj.get("events", ()))
                   ).validate()

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


class FaultVerdict(typing.NamedTuple):
    """One frame attempt's injection decision (the transport reads
    ``delay``/``drop``/``ack_loss``; ``reorder`` is log colour)."""

    delay: float
    drop: bool
    ack_loss: bool
    reorder: bool


class LinkFaultInjector:
    """The transport-facing side of a plan: deterministic per-frame
    decisions plus the recorded injection log.

    Decisions are keyed by ``(src, dst, seq, attempt)`` where ``seq``
    is the frame's first per-channel sequence number and ``attempt``
    counts this frame's delivery attempts — so a dropped frame's
    *resend* re-rolls (a deterministic drop cannot repeat forever) and
    a replay with the same seed rolls the same values in the same
    places regardless of wall-clock interleaving.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan.validate()
        self.rules = plan.link_events()
        self._attempts: typing.Dict[typing.Tuple[int, int, int], int] = {}
        #: Every decision taken, in decision order.  Sort by
        #: ``(src, dst, seq, attempt)`` before comparing two runs —
        #: decision *order* is scheduling-dependent, the decisions
        #: themselves are not.
        self.log: typing.List[typing.Dict[str, typing.Any]] = []

    def on_frame(self, src: int, dst: int, seq: int, count: int
                 ) -> typing.Optional[FaultVerdict]:
        key = (src, dst, seq)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        delay = jitter = drop_p = ack_p = reorder_p = 0.0
        matched = False
        for rule in self.rules:
            if not rule.matches(src, dst):
                continue
            matched = True
            delay += rule.delay
            jitter += rule.jitter
            drop_p = max(drop_p, rule.drop)
            ack_p = max(ack_p, rule.ack_loss)
            reorder_p = max(reorder_p, rule.reorder)
        if not matched:
            return None
        if jitter > 0.0:
            delay += jitter * self._roll("jitter", src, dst, seq,
                                         attempt)
        reorder = reorder_p > 0.0 and \
            self._roll("reorder", src, dst, seq, attempt) < reorder_p
        if reorder:
            delay += max(4.0 * jitter, REORDER_FLOOR_S)
        drop = drop_p > 0.0 and \
            self._roll("drop", src, dst, seq, attempt) < drop_p
        ack_loss = not drop and ack_p > 0.0 and \
            self._roll("ack", src, dst, seq, attempt) < ack_p
        self.log.append({
            "src": src, "dst": dst, "seq": seq, "attempt": attempt,
            "count": count, "delay": round(delay, 9), "drop": drop,
            "ack_loss": ack_loss, "reorder": reorder})
        return FaultVerdict(delay=delay, drop=drop, ack_loss=ack_loss,
                            reorder=reorder)

    def sorted_log(self) -> typing.List[typing.Dict[str, typing.Any]]:
        """The injection log in its canonical (replay-comparable)
        order."""
        return sorted(self.log, key=lambda entry: (
            entry["src"], entry["dst"], entry["seq"],
            entry["attempt"]))

    def _roll(self, kind: str, src: int, dst: int, seq: int,
              attempt: int) -> float:
        material = "{}:{}:{}:{}:{}:{}".format(
            self.plan.seed, kind, src, dst, seq, attempt)
        digest = hashlib.sha256(material.encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64


# ----------------------------------------------------------------------
# Named fault profiles (the sweep matrix's third axis)
# ----------------------------------------------------------------------

def _calm(_victim: int) -> typing.Tuple:
    return ()


def _jitter(_victim: int) -> typing.Tuple:
    return (LinkFault(delay=0.002, jitter=0.01),)


def _lossy(_victim: int) -> typing.Tuple:
    return (LinkFault(delay=0.002, jitter=0.01, drop=0.08,
                      ack_loss=0.08, reorder=0.1),)


def _crash(victim: int) -> typing.Tuple:
    return (LinkFault(delay=0.001, jitter=0.005),
            KillFault(site=victim, at=0.4, down_for=0.4))


def _torn_journal(victim: int) -> typing.Tuple:
    return _crash(victim) + (
        CorruptFault(site=victim, target="journal", mode="torn",
                     offset=-2),)


def _bitflip_wal(victim: int) -> typing.Tuple:
    return _crash(victim) + (
        CorruptFault(site=victim, target="wal", mode="bitflip",
                     offset=-10, bit=3),)


#: Named profiles: name -> events builder taking the victim site.
#: ``calm``/``jitter``/``lossy`` are faults within the paper's
#: tolerance (reliable eventual FIFO delivery) and must come out
#: oracle-clean with zero monitor criticals; ``crash`` adds one
#: kill/restart; the corruption profiles damage the victim's logs
#: while it is down.
PROFILES: typing.Dict[str, typing.Callable[[int], typing.Tuple]] = {
    "calm": _calm,
    "jitter": _jitter,
    "lossy": _lossy,
    "crash": _crash,
    "torn-journal": _torn_journal,
    "bitflip-wal": _bitflip_wal,
}


def profile_plan(name: str, seed: int = 0,
                 n_sites: int = 3) -> FaultPlan:
    """Build a named profile's plan; the victim of kill/corrupt events
    is the middle site (a mid-tree member on small copy graphs)."""
    try:
        builder = PROFILES[name]
    except KeyError:
        raise ValueError("unknown fault profile {!r} (known: {})"
                         .format(name, ", ".join(sorted(PROFILES))))
    victim = min(1, n_sites - 1)
    return FaultPlan(seed=seed,
                     events=builder(victim)).validate(n_sites)
