"""The explorer's test-oracle suite.

An oracle states an execution property the protocols must uphold under
*every* legal schedule.  Oracles are pluggable: each declares which
protocols it applies to, may install instrumentation before the run
(``attach``), and reports zero or more :class:`OracleFailure` afterwards
(``check``).

Built-in oracles
----------------

``acyclicity``
    The merged direct-serialization graph has no cycle (the paper's
    Theorems 2.1/3.1/4.1).  This is the oracle that flags the
    indiscriminate baseline.
``convergence``
    After quiescence every replica equals its primary copy (skipped for
    PSL, which never pushes updates).
``fifo``
    Per-channel delivery order equals send order — the Sec. 1.1 network
    assumption DAG(WT) correctness rests on, re-checked end-to-end.
``timestamps``
    DAG(T) only: each site adopts secondary/dummy timestamps in
    non-decreasing order (Sec. 3.2.3's commit-order invariant).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.base import ReplicatedSystem, ReplicationProtocol
from repro.harness.convergence import divergent_replicas
from repro.harness.serializability import (
    build_serialization_graph,
    explain_cycle,
    find_dsg_cycle,
)


@dataclasses.dataclass(frozen=True)
class OracleFailure:
    """One property violation found after a schedule run."""

    oracle: str
    detail: str
    #: For serializability failures: the DSG cycle as ``(site, seq)``
    #: pairs (JSON-friendly, first == last).
    cycle: typing.Optional[typing.Tuple[typing.Tuple[int, int], ...]] = \
        None

    def to_dict(self) -> dict:
        data: dict = {"oracle": self.oracle, "detail": self.detail}
        if self.cycle is not None:
            data["cycle"] = [list(node) for node in self.cycle]
        return data


class Oracle:
    """Base class: a checkable execution property."""

    name = "oracle"

    def applies_to(self, protocol_name: str) -> bool:
        return True

    def attach(self, system: ReplicatedSystem) -> None:
        """Install pre-run instrumentation (optional)."""

    def check(self, system: ReplicatedSystem,
              protocol: ReplicationProtocol
              ) -> typing.List[OracleFailure]:
        raise NotImplementedError


class AcyclicityOracle(Oracle):
    """The merged DSG must be acyclic."""

    name = "acyclicity"

    def check(self, system, protocol):
        histories = [site.engine.history for site in system.sites]
        graph = build_serialization_graph(histories)
        cycle = find_dsg_cycle(graph)
        if cycle is None:
            return []
        return [OracleFailure(
            oracle=self.name,
            detail=explain_cycle(histories, cycle),
            cycle=tuple((gid.site, gid.seq) for gid in cycle))]


class ConvergenceOracle(Oracle):
    """Replicas must equal their primary copies after quiescence."""

    name = "convergence"

    def applies_to(self, protocol_name):
        return protocol_name != "psl"  # PSL refreshes on access only.

    def check(self, system, protocol):
        problems = divergent_replicas(system)
        return [OracleFailure(
            oracle=self.name,
            detail="item {} primary s{} (v{}) != replica s{} (v{})".format(
                item, primary, p_version, replica, r_version))
            for item, primary, replica, p_version, r_version in problems]


class FifoOracle(Oracle):
    """Per-channel delivery order must equal send order.

    Message ids are assigned at send time from a global counter, so
    within one channel they increase in send order; the network's
    delivery log records actual delivery order.
    """

    name = "fifo"

    def attach(self, system):
        system.network.record_deliveries = True

    def check(self, system, protocol):
        last_seen: typing.Dict[typing.Tuple[int, int], int] = {}
        failures = []
        for message in system.network.delivery_log:
            channel = (message.src, message.dst)
            previous = last_seen.get(channel)
            if previous is not None and message.msg_id < previous:
                failures.append(OracleFailure(
                    oracle=self.name,
                    detail="channel s{}->s{} delivered #{} after "
                           "#{}".format(message.src, message.dst,
                                        message.msg_id, previous)))
            last_seen[channel] = message.msg_id
        return failures


class TimestampMonotonicityOracle(Oracle):
    """DAG(T): per-site adopted timestamps never go backwards."""

    name = "timestamps"

    def __init__(self):
        self._adopted: typing.Dict[int, list] = {}

    def applies_to(self, protocol_name):
        return protocol_name in ("dag_t", "backedge_t")

    def attach(self, system):
        system.observers.append(self)

    def on_timestamp_adopted(self, site, ts, gid, time, **_details):
        self._adopted.setdefault(site, []).append((time, gid, ts))

    def check(self, system, protocol):
        failures = []
        for site, adoptions in sorted(self._adopted.items()):
            for (_t0, _g0, previous), (t1, gid, current) in zip(
                    adoptions, adoptions[1:]):
                if current < previous:
                    failures.append(OracleFailure(
                        oracle=self.name,
                        detail="s{} adopted {} after {} (t={:.4f}, "
                               "gid={})".format(site, current, previous,
                                                t1, gid)))
        return failures


def default_oracles() -> typing.List[Oracle]:
    """A fresh instance of the full built-in suite."""
    return [AcyclicityOracle(), ConvergenceOracle(), FifoOracle(),
            TimestampMonotonicityOracle()]
