"""Adversarial schedule-space exploration.

The paper's theorems quantify over *all* interleavings, but a single
deterministic simulation run exercises exactly one.  This package
perturbs executions through three controlled, replayable knobs:

1. a seeded :class:`~repro.sim.environment.SchedulePolicy` that reorders
   same-time, same-priority simulation events;
2. a delivery-perturbation hook on the network channels that jitters
   per-message latency (the FIFO clamp keeps per-channel order legal);
3. crash/latency-stall fault injection at commit boundaries
   (:mod:`repro.explorer.faults`).

The :func:`explore` driver generates small scenarios, runs them under
perturbed schedules across any registered protocol, checks a pluggable
oracle suite (DSG acyclicity, replica convergence, channel FIFO order,
DAG(T) timestamp monotonicity) and, on failure, *shrinks* the schedule
with delta debugging — first over transactions, then over perturbation
decisions — into a minimal reproducer saved as a replayable JSON trace.
"""

from repro.explorer.decisions import PerturbationPlan
from repro.explorer.explorer import (
    ExplorationConfig,
    ExplorationReport,
    explore,
)
from repro.explorer.faults import CrashFault, FaultInjector, StallFault
from repro.explorer.generator import (
    ScenarioSpec,
    build_scenario,
    generate_scenario,
)
from repro.explorer.oracles import OracleFailure, default_oracles
from repro.explorer.runner import ScheduleOutcome, run_schedule
from repro.explorer.shrink import ddmin, shrink_failure
from repro.explorer.trace import load_trace, replay_trace, save_trace

__all__ = [
    "CrashFault",
    "ExplorationConfig",
    "ExplorationReport",
    "FaultInjector",
    "OracleFailure",
    "PerturbationPlan",
    "ScenarioSpec",
    "ScheduleOutcome",
    "StallFault",
    "build_scenario",
    "ddmin",
    "default_oracles",
    "explore",
    "generate_scenario",
    "load_trace",
    "replay_trace",
    "run_schedule",
    "save_trace",
    "shrink_failure",
]
