"""The exploration driver: generate, perturb, check, shrink.

``explore`` walks a budgeted slice of schedule space.  Each iteration
derives a scenario seed and a perturbation seed from the run index (so
several perturbations are tried per generated scenario), runs the
schedule, and evaluates the oracle suite.  The first failure is shrunk
to a minimal reproducer and returned as a replayable trace document.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.explorer.decisions import PerturbationPlan, stable_u64
from repro.explorer.generator import generate_scenario
from repro.explorer.runner import ScheduleOutcome, run_schedule
from repro.explorer.shrink import shrink_failure
from repro.explorer.trace import trace_dict


@dataclasses.dataclass
class ExplorationConfig:
    """Knobs of one exploration campaign."""

    protocol: str = "dag_wt"
    #: Number of perturbed schedules to run.
    budget: int = 100
    seed: int = 0
    min_sites: int = 2
    max_sites: int = 6
    #: Maximum extra per-message delay (multiple of the base latency).
    latency_scale: float = 300.0
    #: Reorder same-time simulation events.
    schedule_noise: bool = True
    #: Distinct perturbation seeds tried per generated scenario.
    perturbations_per_scenario: int = 4
    #: Shrink the first failure into a minimal reproducer.
    shrink: bool = True
    max_shrink_runs: int = 400
    #: Stop at the first failure (otherwise keep counting).
    stop_on_failure: bool = True


@dataclasses.dataclass
class ExplorationReport:
    """Aggregate result of one exploration campaign."""

    config: ExplorationConfig
    schedules_run: int
    failures_found: int
    #: Shrunken first failure (None when the campaign was clean).
    failure: typing.Optional[ScheduleOutcome]
    #: Replayable trace document for :attr:`failure`.
    trace: typing.Optional[dict]
    committed_total: int
    events_total: int
    #: Probe runs spent shrinking.
    shrink_runs: int = 0

    @property
    def clean(self) -> bool:
        return self.failures_found == 0

    def summary(self) -> str:
        lines = ["explored {} schedules ({} events, {} commits): "
                 "{} oracle failure(s)".format(
                     self.schedules_run, self.events_total,
                     self.committed_total, self.failures_found)]
        if self.failure is not None:
            lines.append("minimal reproducer: {} transaction(s), "
                         "{} perturbation decision(s) enabled".format(
                             len(self.failure.spec.transactions),
                             len(self.failure.plan.queried
                                 - self.failure.plan.disabled)))
            for failure in self.failure.failures:
                lines.append("  [{}] {}".format(
                    failure.oracle, failure.detail.splitlines()[0]))
        return "\n".join(lines)


def explore(config: ExplorationConfig,
            progress: typing.Optional[typing.Callable[[str], None]]
            = None) -> ExplorationReport:
    """Run one exploration campaign."""

    def report_progress(message: str) -> None:
        if progress is not None:
            progress(message)

    per_scenario = max(1, config.perturbations_per_scenario)
    schedules_run = 0
    failures_found = 0
    committed_total = 0
    events_total = 0
    shrink_runs = 0
    first_failure: typing.Optional[ScheduleOutcome] = None
    first_trace: typing.Optional[dict] = None

    for index in range(config.budget):
        scenario_seed = stable_u64(config.seed, "scenario",
                                   index // per_scenario)
        spec = generate_scenario(scenario_seed, config.protocol,
                                 min_sites=config.min_sites,
                                 max_sites=config.max_sites)
        plan = PerturbationPlan(
            seed=stable_u64(config.seed, "plan", index),
            latency_scale=config.latency_scale,
            schedule_noise=config.schedule_noise)
        outcome = run_schedule(spec, plan)
        schedules_run += 1
        committed_total += outcome.committed
        events_total += outcome.events_processed
        if not outcome.failed:
            continue
        failures_found += 1
        report_progress("schedule {}: {} oracle failure(s)".format(
            index, len(outcome.failures)))
        if first_failure is None:
            if config.shrink:
                report_progress("shrinking ...")
                stats: dict = {}
                spec, plan, outcome = shrink_failure(
                    spec, plan, max_runs=config.max_shrink_runs,
                    stats=stats)
                shrink_runs = stats.get("runs", 0)
            first_failure = outcome
            first_trace = trace_dict(
                spec, plan, outcome,
                meta={"protocol": config.protocol,
                      "explore_seed": config.seed,
                      "schedule_index": index})
        if config.stop_on_failure:
            break

    return ExplorationReport(
        config=config, schedules_run=schedules_run,
        failures_found=failures_found, failure=first_failure,
        trace=first_trace, committed_total=committed_total,
        events_total=events_total, shrink_runs=shrink_runs)
