"""Addressable perturbation decisions.

Every perturbation the explorer applies is a pure function of a seed and
a stable *decision key* — never of wall-clock state or call order.  That
buys two properties the whole subsystem rests on:

- **Replayability.**  Re-running a scenario with the same plan applies
  byte-identical perturbations, so a saved trace reproduces exactly.
- **Shrinkability.**  A decision can be *disabled* (reverting it to the
  unperturbed default) independently of every other decision, so delta
  debugging can search for the minimal set of perturbations that still
  triggers a failure.

Decision keys are bucketed (``sched:<bucket>`` for event tie-breaks,
``net:<src>:<dst>:<bucket>`` for message delays) to keep the key space
small enough for cheap delta debugging while retaining enough resolution
to isolate, say, "the s0->s2 channel was slow" — which is the shape of
most real reorderings (cf. the paper's Example 1.1).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.sim.environment import SchedulePolicy

#: Number of tie-break buckets for schedule decisions (prime, so bucket
#: membership is not correlated with common event-id strides).
SCHED_BUCKETS = 31
#: Per-channel buckets for message-delay decisions.
NET_BUCKETS = 4


def stable_u64(seed: int, *key) -> int:
    """A 64-bit hash of ``(seed, *key)`` stable across runs/processes."""
    digest = hashlib.sha256(
        repr((seed,) + key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class _PlanPolicy(SchedulePolicy):
    """Schedule tie-breaks drawn from a :class:`PerturbationPlan`."""

    def __init__(self, plan: "PerturbationPlan"):
        self.plan = plan

    def tie_break(self, time: float, priority: int, eid: int) -> int:
        plan = self.plan
        key = "sched:{}".format(eid % SCHED_BUCKETS)
        plan.queried.add(key)
        if key in plan.disabled:
            return 0
        # Vary per event within the bucket; disabling the bucket restores
        # insertion order for all of its events at once.
        return stable_u64(plan.seed, key, eid) & 0xFFFF


@dataclasses.dataclass
class PerturbationPlan:
    """One replayable point in perturbation space.

    Parameters
    ----------
    seed:
        Drives every decision hash.
    latency_scale:
        Maximum extra per-message delay, as a multiple of the scenario's
        base network latency (0 disables delivery perturbation).
    schedule_noise:
        Enable same-time event reordering.
    disabled:
        Decision keys reverted to their unperturbed default — grown by
        the shrinker, empty for a fresh exploration run.
    """

    seed: int = 0
    latency_scale: float = 0.0
    schedule_noise: bool = True
    disabled: typing.Set[str] = dataclasses.field(default_factory=set)

    def __post_init__(self):
        self.disabled = set(self.disabled)
        #: Decision keys actually consulted during the last run — the
        #: shrinker's search space.
        self.queried: typing.Set[str] = set()

    # -- knob factories -------------------------------------------------

    def schedule_policy(self) -> typing.Optional[SchedulePolicy]:
        """The seeded tie-break policy (None when noise is off)."""
        if not self.schedule_noise:
            return None
        return _PlanPolicy(self)

    def latency_perturb(self, base_latency: float
                        ) -> typing.Optional[typing.Callable]:
        """Per-message extra-delay hook for
        :meth:`repro.network.network.Network.set_perturbation`."""
        if self.latency_scale <= 0:
            return None

        def perturb(src: int, dst: int, seq: int) -> float:
            key = "net:{}:{}:{}".format(src, dst, seq % NET_BUCKETS)
            self.queried.add(key)
            if key in self.disabled:
                return 0.0
            fraction = stable_u64(self.seed, key) / 2.0 ** 64
            return base_latency * self.latency_scale * fraction

        return perturb

    # -- (de)serialisation ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "latency_scale": self.latency_scale,
            "schedule_noise": self.schedule_noise,
            "disabled": sorted(self.disabled),
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "PerturbationPlan":
        return cls(seed=int(data["seed"]),
                   latency_scale=float(data.get("latency_scale", 0.0)),
                   schedule_noise=bool(data.get("schedule_noise", True)),
                   disabled=set(data.get("disabled", ())))

    def replaced(self, **changes) -> "PerturbationPlan":
        """A copy with ``changes`` applied (shrinker helper)."""
        base = self.to_dict()
        base.update({key: value for key, value in changes.items()})
        return PerturbationPlan.from_dict(base)
