"""Delta-debugging shrinker for failing schedules.

Once a perturbed schedule trips an oracle, the raw reproducer is noisy:
extra transactions, dozens of perturbation decisions that played no
part.  ``shrink_failure`` minimises in two phases, both with the classic
ddmin complement strategy:

1. **Transactions** — remove workload subsets while the same oracle
   kind still fails.
2. **Perturbation decisions** — disable subsets of the decision keys
   the plan consulted, keeping only the perturbations the failure
   actually needs (often a single slow channel).

Every probe is a fresh deterministic run, so shrinking needs no
snapshotting — the schedule *is* the reproducer.
"""

from __future__ import annotations

import typing

from repro.explorer.decisions import PerturbationPlan
from repro.explorer.generator import ScenarioSpec
from repro.explorer.runner import ScheduleOutcome, run_schedule


def ddmin(items: typing.Sequence, test: typing.Callable[[list], bool]
          ) -> list:
    """Minimise ``items`` such that ``test(subset)`` stays true.

    ``test(list(items))`` must hold on entry.  Uses complement
    reduction: repeatedly drop chunks, halving chunk size when stuck.
    The result is 1-minimal with respect to chunk removal.
    """
    current = list(items)
    granularity = 2
    while len(current) >= 1:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if test(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(max(len(current), 1), granularity * 2)
    return current


def shrink_failure(spec: ScenarioSpec, plan: PerturbationPlan,
                   max_runs: int = 400,
                   stats: typing.Optional[dict] = None
                   ) -> typing.Tuple[ScenarioSpec, PerturbationPlan,
                                     ScheduleOutcome]:
    """Minimise a failing ``(spec, plan)`` reproducer.

    Returns the shrunken scenario, the shrunken plan, and the final
    (still-failing) outcome.  ``max_runs`` bounds the number of probe
    executions; when exhausted, the best reproducer found so far is
    returned.
    """
    baseline = run_schedule(spec, plan)
    if not baseline.failed:
        raise ValueError("shrink_failure needs a failing (spec, plan)")
    oracle_names = {failure.oracle for failure in baseline.failures}
    runs = [0]

    def still_fails(candidate_spec: ScenarioSpec,
                    candidate_plan: PerturbationPlan) -> bool:
        if runs[0] >= max_runs:
            return False
        runs[0] += 1
        outcome = run_schedule(candidate_spec, candidate_plan)
        return any(failure.oracle in oracle_names
                   for failure in outcome.failures)

    # Phase 1: minimise the workload.
    indices = list(range(len(spec.transactions)))
    kept = ddmin(indices,
                 lambda keep: still_fails(spec.subset(keep), plan))
    spec = spec.subset(kept)

    # Phase 2: minimise the perturbation decisions.  One probe run
    # collects the decision keys the plan actually consults; ddmin then
    # searches for the smallest enabled subset.
    probe_plan = plan.replaced()
    run_schedule(spec, probe_plan)
    universe = sorted(probe_plan.queried | plan.disabled)
    enabled = [key for key in universe if key not in plan.disabled]
    kept_keys = ddmin(
        enabled,
        lambda keep: still_fails(
            spec, plan.replaced(disabled=set(universe) - set(keep))))
    plan = plan.replaced(disabled=set(universe) - set(kept_keys))

    final = run_schedule(spec, plan)
    if stats is not None:
        stats["runs"] = runs[0]
    return spec, plan, final
