"""Execute one scenario under one perturbation plan and check oracles."""

from __future__ import annotations

import dataclasses
import typing

from repro.explorer.decisions import PerturbationPlan
from repro.explorer.generator import ScenarioSpec, build_scenario
from repro.explorer.oracles import Oracle, OracleFailure, default_oracles


@dataclasses.dataclass
class ScheduleOutcome:
    """Everything one perturbed schedule run produced."""

    spec: ScenarioSpec
    plan: PerturbationPlan
    failures: typing.List[OracleFailure]
    #: ``(gid-as-(site, seq), status)`` per launched transaction.
    outcomes: typing.List[typing.Tuple[typing.Tuple[int, int], str]]
    events_processed: int

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def committed(self) -> int:
        return sum(1 for _gid, status in self.outcomes
                   if status == "committed")

    def cycle(self) -> typing.Optional[typing.Tuple]:
        """The first serializability cycle among the failures, if any."""
        for failure in self.failures:
            if failure.cycle is not None:
                return failure.cycle
        return None


def run_schedule(spec: ScenarioSpec, plan: PerturbationPlan,
                 oracles: typing.Optional[typing.List[Oracle]] = None,
                 faults: typing.Sequence = ()
                 ) -> ScheduleOutcome:
    """Run ``spec`` once under ``plan`` and evaluate the oracle suite.

    Fully deterministic: the same ``(spec, plan)`` pair always yields
    the same schedule, outcomes, and failures.  ``faults`` are optional
    :mod:`repro.explorer.faults` injections armed before the run.
    """
    if oracles is None:
        oracles = default_oracles()
    builder = build_scenario(spec,
                             schedule_policy=plan.schedule_policy())
    env, system, protocol = builder.build()
    system.network.set_perturbation(plan.latency_perturb(spec.latency))
    active = [oracle for oracle in oracles
              if oracle.applies_to(spec.protocol)]
    for oracle in active:
        oracle.attach(system)
    if faults:
        from repro.explorer.faults import FaultInjector
        FaultInjector(system, faults)
    result = builder.run(until=spec.until, drain=spec.drain)
    failures: typing.List[OracleFailure] = []
    for oracle in active:
        failures.extend(oracle.check(system, protocol))
    return ScheduleOutcome(
        spec=spec, plan=plan, failures=failures,
        outcomes=[((outcome.gid.site, outcome.gid.seq), outcome.status)
                  for outcome in result.outcomes],
        events_processed=env.events_processed)
