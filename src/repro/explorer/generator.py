"""Seeded generation of small protocol scenarios.

Scenarios are deliberately tiny (2-6 sites, a handful of items and
transactions): schedule-space bugs reproduce at small scale, and small
scenarios make both exploration and shrinking cheap.  The generator is
biased toward the shapes that historically break lazy replication —
replicated items with distinct primaries, reader transactions at shared
replica sites, writes racing propagation (the paper's Example 1.1 is
exactly such a scenario) — while staying inside the paper's model: a
transaction updates only items whose primary copy is local, and replicas
are placed only *downstream* of the primary in site order so the copy
graph stays a DAG and every registered protocol can run the scenario.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.explorer.decisions import stable_u64
from repro.testing import ScenarioBuilder

#: Base one-way latency of generated scenarios (seconds).  Perturbation
#: scales are expressed as multiples of this.
BASE_LATENCY = 0.001


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A JSON-serialisable description of one scenario."""

    protocol: str
    n_sites: int
    #: ``(item, primary, (replica, ...))`` triples.
    items: typing.Tuple[typing.Tuple[int, int, typing.Tuple[int, ...]],
                        ...]
    #: ``(site, seq, at, (("r"/"w", item), ...))`` tuples.
    transactions: typing.Tuple[
        typing.Tuple[int, int, float,
                     typing.Tuple[typing.Tuple[str, int], ...]], ...]
    latency: float = BASE_LATENCY
    lock_timeout: float = 0.050
    until: float = 5.0
    drain: float = 1.0

    def subset(self, keep: typing.Iterable[int]) -> "ScenarioSpec":
        """A copy retaining only the transactions at indices ``keep``."""
        keep_set = set(keep)
        return dataclasses.replace(
            self,
            transactions=tuple(txn for index, txn
                               in enumerate(self.transactions)
                               if index in keep_set))

    def with_protocol(self, protocol: str) -> "ScenarioSpec":
        return dataclasses.replace(self, protocol=protocol)

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "n_sites": self.n_sites,
            "items": [[item, primary, list(replicas)]
                      for item, primary, replicas in self.items],
            "transactions": [[site, seq, at,
                              [[kind, item] for kind, item in ops]]
                             for site, seq, at, ops in self.transactions],
            "latency": self.latency,
            "lock_timeout": self.lock_timeout,
            "until": self.until,
            "drain": self.drain,
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "ScenarioSpec":
        return cls(
            protocol=data["protocol"],
            n_sites=int(data["n_sites"]),
            items=tuple((item, primary, tuple(replicas))
                        for item, primary, replicas in data["items"]),
            transactions=tuple(
                (site, seq, float(at),
                 tuple((kind, item) for kind, item in ops))
                for site, seq, at, ops in data["transactions"]),
            latency=float(data.get("latency", BASE_LATENCY)),
            lock_timeout=float(data.get("lock_timeout", 0.050)),
            until=float(data.get("until", 5.0)),
            drain=float(data.get("drain", 1.0)),
        )


def build_scenario(spec: ScenarioSpec,
                   schedule_policy=None) -> ScenarioBuilder:
    """Materialise ``spec`` as a ready-to-run :class:`ScenarioBuilder`."""
    builder = ScenarioBuilder(
        n_sites=spec.n_sites, protocol=spec.protocol,
        lock_timeout=spec.lock_timeout, latency=spec.latency,
        schedule_policy=schedule_policy)
    for item, primary, replicas in spec.items:
        builder.item(item, primary=primary, replicas=replicas)
    for site, seq, at, ops in spec.transactions:
        builder.transaction(site, at=at, ops=list(ops), seq=seq)
    return builder


def generate_scenario(seed: int, protocol: str,
                      min_sites: int = 2, max_sites: int = 6
                      ) -> ScenarioSpec:
    """Generate one seeded scenario for ``protocol``."""
    rng = random.Random(stable_u64(seed, "scenario"))
    n_sites = rng.randint(min_sites, max_sites)

    # -- placement: chained primaries, replicas strictly downstream -----
    n_items = rng.randint(2, min(4, max(2, n_sites)))
    items: typing.List[typing.Tuple[int, int, typing.Tuple[int, ...]]] = []
    for item in range(n_items):
        primary = rng.randrange(max(1, n_sites - 1))
        downstream = list(range(primary + 1, n_sites))
        if not downstream:
            items.append((item, primary, ()))
            continue
        # Bias replicas toward the tail sites so several items share a
        # replica holder — the precondition for cross-item anomalies.
        n_replicas = rng.randint(1, len(downstream))
        replicas = sorted(rng.sample(downstream, n_replicas))
        if n_sites - 1 not in replicas and rng.random() < 0.7:
            replicas = sorted(set(replicas) | {n_sites - 1})
        items.append((item, primary, tuple(replicas)))

    readable = {site: [item for item, primary, replicas in items
                       if site == primary or site in replicas]
                for site in range(n_sites)}
    writable = {site: [item for item, primary, _replicas in items
                       if site == primary]
                for site in range(n_sites)}

    # -- workload: writers at primaries, readers at replica holders -----
    n_txns = rng.randint(3, 8)
    window = rng.uniform(0.1, 0.4)
    sequences: typing.Dict[int, int] = {}
    transactions: typing.List[tuple] = []
    for _ in range(n_txns):
        reader_sites = [site for site in range(n_sites)
                        if len(readable[site]) >= 2]
        if reader_sites and rng.random() < 0.45:
            # A multi-item reader: the observer that witnesses
            # inconsistent propagation orders.
            site = rng.choice(reader_sites)
            pool = readable[site]
            count = rng.randint(2, min(3, len(pool)))
            ops = tuple(("r", item)
                        for item in rng.sample(pool, count))
        else:
            writer_sites = [site for site in range(n_sites)
                            if writable[site]]
            site = rng.choice(writer_sites)
            ops_list: typing.List[typing.Tuple[str, int]] = [
                ("w", rng.choice(writable[site]))]
            if len(readable[site]) >= 1 and rng.random() < 0.6:
                read_item = rng.choice(readable[site])
                ops_list.insert(0, ("r", read_item))
            ops = tuple(ops_list)
        seq = sequences.get(site, 0) + 1
        sequences[site] = seq
        at = round(rng.uniform(0.0, window), 4)
        transactions.append((site, seq, at, ops))
    transactions.sort(key=lambda txn: (txn[2], txn[0], txn[1]))

    return ScenarioSpec(protocol=protocol, n_sites=n_sites,
                        items=tuple(items),
                        transactions=tuple(transactions))
