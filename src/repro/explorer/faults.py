"""Fault injection at commit boundaries.

The system emits a ``primary_commit`` notification at every primary's
commit point and ``replica_commit`` at every propagated apply — exactly
the commit/forward boundaries where real replication systems get hurt.
:class:`FaultInjector` is an observer that counts those boundaries and
arms faults when their trigger index is reached:

- :class:`StallFault` — from the k-th commit on, one directed channel's
  latency jumps (a protocol-*legal* perturbation: the FIFO clamp still
  holds, so this models a congested or flapping link, the paper's
  Example 1.1 shape).
- :class:`CrashFault` — at the k-th commit a site fail-stops: its
  volatile state is wiped and rebuilt from the write-ahead log
  (:func:`repro.storage.log.recover`).  The paper's protocols assume
  live sites, so crash faults are for exercising the storage/recovery
  seam (a crashed site must rejoin with exactly its durable state and
  catch up through normal propagation), not for the default oracle
  exploration loop.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.base import ReplicatedSystem
from repro.storage.log import LogRecordKind, WriteAheadLog, recover


@dataclasses.dataclass(frozen=True)
class StallFault:
    """Slow the ``src -> dst`` channel after ``after_commits`` primary
    commits have happened system-wide."""

    src: int
    dst: int
    after_commits: int
    #: New constant one-way latency for the channel (seconds).
    latency: float = 0.5


@dataclasses.dataclass(frozen=True)
class CrashFault:
    """Fail-stop ``site`` after ``after_commits`` primary commits and
    recover it from its write-ahead log in the same simulation step."""

    site: int
    after_commits: int


class FaultInjector:
    """Observer that arms faults at commit boundaries.

    Registering the injector attaches a :class:`WriteAheadLog` to every
    site engine (replaying schema CREATEs) so crash faults always have a
    log to recover from.
    """

    def __init__(self, system: ReplicatedSystem,
                 faults: typing.Sequence):
        self.system = system
        self.env = system.env
        self._pending = sorted(faults,
                               key=lambda fault: fault.after_commits)
        self._commits = 0
        self.fired: typing.List = []
        self.wals: typing.Dict[int, WriteAheadLog] = {}
        if any(isinstance(fault, CrashFault) for fault in self._pending):
            for site in system.sites:
                wal = WriteAheadLog()
                for item_id in sorted(site.engine.item_ids(),
                                      key=repr):
                    wal.append(LogRecordKind.CREATE, item=item_id,
                               value=site.engine.item(item_id).value,
                               time=self.env.now)
                site.engine.attach_wal(wal)
                self.wals[site.site_id] = wal
        system.observers.append(self)

    # -- observer hook --------------------------------------------------

    def on_primary_commit(self, gid, site, time, **_details) -> None:
        self._commits += 1
        while self._pending and \
                self._pending[0].after_commits <= self._commits:
            self._fire(self._pending.pop(0))

    # -- fault application ----------------------------------------------

    def _fire(self, fault) -> None:
        if isinstance(fault, StallFault):
            channel = self.system.network._channel(fault.src, fault.dst)
            channel._latency = fault.latency
        elif isinstance(fault, CrashFault):
            self._crash_and_recover(fault.site)
        else:
            raise TypeError("unknown fault {!r}".format(fault))
        self.fired.append((self.env.now, fault))

    def _crash_and_recover(self, site_id: int) -> None:
        site = self.system.site_of(site_id)
        wal = self.wals[site_id]
        site.engine.crash()
        site.engine = recover(self.env, site_id, wal,
                              lock_timeout=self.system.config.lock_timeout)
        protocol = self.system.protocol
        if hasattr(protocol, "install_lazy_timeout_policy"):
            protocol.install_lazy_timeout_policy(site.engine.locks)
