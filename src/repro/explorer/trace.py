"""Replayable JSON traces of failing (or interesting) schedules.

A trace is fully self-describing: the scenario (placement + workload),
the perturbation plan (seed + disabled decision keys), and the oracle
failures observed.  Because every perturbation decision is a pure
function of the plan (:mod:`repro.explorer.decisions`), loading a trace
and re-running it reproduces the original execution byte-for-byte —
same schedule, same outcomes, same DSG cycle.
"""

from __future__ import annotations

import json
import typing

from repro.explorer.decisions import PerturbationPlan
from repro.explorer.generator import ScenarioSpec
from repro.explorer.runner import ScheduleOutcome, run_schedule

TRACE_VERSION = 1


def trace_dict(spec: ScenarioSpec, plan: PerturbationPlan,
               outcome: ScheduleOutcome,
               meta: typing.Optional[dict] = None) -> dict:
    """Build the JSON-ready trace document."""
    document = {
        "version": TRACE_VERSION,
        "scenario": spec.to_dict(),
        "perturbation": plan.to_dict(),
        "failures": [failure.to_dict() for failure in outcome.failures],
        "outcomes": [[list(gid), status]
                     for gid, status in outcome.outcomes],
        "events_processed": outcome.events_processed,
    }
    if meta:
        document["meta"] = dict(meta)
    return document


def save_trace(path: str, spec: ScenarioSpec, plan: PerturbationPlan,
               outcome: ScheduleOutcome,
               meta: typing.Optional[dict] = None) -> dict:
    """Write a trace to ``path``; returns the document."""
    document = trace_dict(spec, plan, outcome, meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_trace(source: typing.Union[str, typing.Mapping]
               ) -> typing.Tuple[ScenarioSpec, PerturbationPlan, dict]:
    """Load a trace from a path or an already-parsed document."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = dict(source)
    version = document.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            "unsupported trace version {!r} (expected {})".format(
                version, TRACE_VERSION))
    spec = ScenarioSpec.from_dict(document["scenario"])
    plan = PerturbationPlan.from_dict(document["perturbation"])
    return spec, plan, document


def replay_trace(source: typing.Union[str, typing.Mapping]
                 ) -> typing.Tuple[ScheduleOutcome, dict]:
    """Re-run a trace; returns the fresh outcome and the original
    document (for comparison)."""
    spec, plan, document = load_trace(source)
    outcome = run_schedule(spec, plan)
    return outcome, document


def reproduces(outcome: ScheduleOutcome, document: typing.Mapping
               ) -> bool:
    """Whether a replayed outcome matches the recorded trace exactly:
    same per-transaction outcomes and identical oracle failures
    (including the DSG cycle, node for node)."""
    recorded_outcomes = [(tuple(gid), status)
                         for gid, status in document["outcomes"]]
    replayed_outcomes = [(tuple(gid), status)
                         for gid, status in outcome.outcomes]
    if sorted(recorded_outcomes) != sorted(replayed_outcomes):
        return False
    recorded = [_failure_key(failure)
                for failure in document["failures"]]
    replayed = [_failure_key(failure.to_dict())
                for failure in outcome.failures]
    return sorted(recorded) == sorted(replayed)


def _failure_key(failure: typing.Mapping) -> tuple:
    cycle = failure.get("cycle")
    return (failure["oracle"],
            tuple(tuple(node) for node in cycle) if cycle else None)
