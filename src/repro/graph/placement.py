"""Data placement: which site holds each item's primary copy and which
sites hold secondary copies (replicas)."""

from __future__ import annotations

import typing

from repro.errors import PlacementError
from repro.types import ItemId, SiteId


class DataPlacement:
    """Primary/replica assignment of items to sites.

    The paper's model (Sec. 1.1): every item has exactly one primary site;
    the other copies are replicas.  A transaction may update only items
    whose primary copy is at its originating site.
    """

    def __init__(self, n_sites: int):
        if n_sites < 1:
            raise PlacementError("need at least one site")
        self.n_sites = n_sites
        self._primary: typing.Dict[ItemId, SiteId] = {}
        self._replicas: typing.Dict[ItemId, typing.Set[SiteId]] = {}

    def __contains__(self, item: ItemId) -> bool:
        return item in self._primary

    def __len__(self) -> int:
        return len(self._primary)

    @property
    def items(self) -> typing.Iterable[ItemId]:
        return self._primary.keys()

    def add_item(self, item: ItemId, primary: SiteId,
                 replicas: typing.Iterable[SiteId] = ()) -> None:
        """Register ``item`` with its primary site and replica sites."""
        self._check_site(primary)
        if item in self._primary:
            raise PlacementError("item {} already placed".format(item))
        replica_set = set(replicas)
        for site in replica_set:
            self._check_site(site)
        if primary in replica_set:
            raise PlacementError(
                "item {}: primary site s{} listed as replica".format(
                    item, primary))
        self._primary[item] = primary
        self._replicas[item] = replica_set

    def primary_site(self, item: ItemId) -> SiteId:
        """Primary site of ``item``."""
        try:
            return self._primary[item]
        except KeyError:
            raise PlacementError("unknown item {}".format(item)) from None

    def replica_sites(self, item: ItemId) -> typing.FrozenSet[SiteId]:
        """Secondary-copy sites of ``item``."""
        if item not in self._primary:
            raise PlacementError("unknown item {}".format(item))
        return frozenset(self._replicas[item])

    def sites_of(self, item: ItemId) -> typing.FrozenSet[SiteId]:
        """All sites holding a copy (primary + replicas)."""
        return self.replica_sites(item) | {self.primary_site(item)}

    def is_replicated(self, item: ItemId) -> bool:
        return bool(self._replicas.get(item))

    def items_at(self, site: SiteId) -> typing.Set[ItemId]:
        """All items with any copy at ``site``."""
        self._check_site(site)
        return {item for item in self._primary
                if site in self.sites_of(item)}

    def primary_items_at(self, site: SiteId) -> typing.Set[ItemId]:
        self._check_site(site)
        return {item for item, primary in self._primary.items()
                if primary == site}

    def replica_items_at(self, site: SiteId) -> typing.Set[ItemId]:
        self._check_site(site)
        return {item for item, replicas in self._replicas.items()
                if site in replicas}

    def replica_count(self) -> int:
        """Total number of secondary copies in the system."""
        return sum(len(replicas) for replicas in self._replicas.values())

    def _check_site(self, site: SiteId) -> None:
        if not 0 <= site < self.n_sites:
            raise PlacementError("unknown site s{}".format(site))
