"""Data placement: which site holds each item's primary copy and which
sites hold secondary copies (replicas).

Beyond the paper's static model, a placement is *mutable* — the online
reconfiguration plane (:mod:`repro.reconfig`) edits it between epochs
via :meth:`DataPlacement.add_replica`, :meth:`DataPlacement.drop_replica`
and :meth:`DataPlacement.migrate_primary` — and exposes *shards*: the
equivalence classes of items sharing one ``(primary, replicas)``
signature.  Each shard has its own propagation chain (primary first,
replicas in site order), which is the unit the partial-replication
placement generators and the catch-up plane reason about.
"""

from __future__ import annotations

import typing

from repro.errors import PlacementError
from repro.types import ItemId, SiteId

#: A shard signature: ``(primary, sorted replica tuple)``.
ShardKey = typing.Tuple[SiteId, typing.Tuple[SiteId, ...]]


class DataPlacement:
    """Primary/replica assignment of items to sites.

    The paper's model (Sec. 1.1): every item has exactly one primary site;
    the other copies are replicas.  A transaction may update only items
    whose primary copy is at its originating site.
    """

    def __init__(self, n_sites: int):
        if n_sites < 1:
            raise PlacementError("need at least one site")
        self.n_sites = n_sites
        self._primary: typing.Dict[ItemId, SiteId] = {}
        self._replicas: typing.Dict[ItemId, typing.Set[SiteId]] = {}

    def __contains__(self, item: ItemId) -> bool:
        return item in self._primary

    def __len__(self) -> int:
        return len(self._primary)

    @property
    def items(self) -> typing.Iterable[ItemId]:
        return self._primary.keys()

    def add_item(self, item: ItemId, primary: SiteId,
                 replicas: typing.Iterable[SiteId] = ()) -> None:
        """Register ``item`` with its primary site and replica sites."""
        self._check_site(primary)
        if item in self._primary:
            raise PlacementError("item {} already placed".format(item))
        replica_set = set(replicas)
        for site in replica_set:
            self._check_site(site)
        if primary in replica_set:
            raise PlacementError(
                "item {}: primary site s{} listed as replica".format(
                    item, primary))
        self._primary[item] = primary
        self._replicas[item] = replica_set

    def primary_site(self, item: ItemId) -> SiteId:
        """Primary site of ``item``."""
        try:
            return self._primary[item]
        except KeyError:
            raise PlacementError("unknown item {}".format(item)) from None

    def replica_sites(self, item: ItemId) -> typing.FrozenSet[SiteId]:
        """Secondary-copy sites of ``item``."""
        if item not in self._primary:
            raise PlacementError("unknown item {}".format(item))
        return frozenset(self._replicas[item])

    def sites_of(self, item: ItemId) -> typing.FrozenSet[SiteId]:
        """All sites holding a copy (primary + replicas)."""
        return self.replica_sites(item) | {self.primary_site(item)}

    def is_replicated(self, item: ItemId) -> bool:
        return bool(self._replicas.get(item))

    def items_at(self, site: SiteId) -> typing.Set[ItemId]:
        """All items with any copy at ``site``."""
        self._check_site(site)
        return {item for item in self._primary
                if site in self.sites_of(item)}

    def primary_items_at(self, site: SiteId) -> typing.Set[ItemId]:
        self._check_site(site)
        return {item for item, primary in self._primary.items()
                if primary == site}

    def replica_items_at(self, site: SiteId) -> typing.Set[ItemId]:
        self._check_site(site)
        return {item for item, replicas in self._replicas.items()
                if site in replicas}

    def replica_count(self) -> int:
        """Total number of secondary copies in the system."""
        return sum(len(replicas) for replicas in self._replicas.values())

    def _check_site(self, site: SiteId) -> None:
        if not 0 <= site < self.n_sites:
            raise PlacementError("unknown site s{}".format(site))

    # ------------------------------------------------------------------
    # Mutation (the reconfiguration plane edits placements between
    # epochs; sites only ever see the result via an atomic swap)
    # ------------------------------------------------------------------

    def add_replica(self, item: ItemId, site: SiteId) -> None:
        """Grant ``site`` a secondary copy of ``item``."""
        self._check_site(site)
        if item not in self._primary:
            raise PlacementError("unknown item {}".format(item))
        if site == self._primary[item]:
            raise PlacementError(
                "item {}: site s{} already holds the primary copy"
                .format(item, site))
        if site in self._replicas[item]:
            raise PlacementError(
                "item {}: site s{} already holds a replica".format(
                    item, site))
        self._replicas[item].add(site)

    def drop_replica(self, item: ItemId, site: SiteId) -> None:
        """Revoke ``site``'s secondary copy of ``item``."""
        self._check_site(site)
        if item not in self._primary:
            raise PlacementError("unknown item {}".format(item))
        if site not in self._replicas[item]:
            raise PlacementError(
                "item {}: site s{} holds no replica".format(item, site))
        self._replicas[item].discard(site)

    def migrate_primary(self, item: ItemId, site: SiteId) -> None:
        """Move ``item``'s primary copy to ``site``.

        The old primary is demoted to a replica (it keeps its copy), and
        ``site`` — which must already hold a replica, so the data is
        there — is promoted.
        """
        self._check_site(site)
        if item not in self._primary:
            raise PlacementError("unknown item {}".format(item))
        old = self._primary[item]
        if site == old:
            raise PlacementError(
                "item {}: s{} is already the primary".format(item, site))
        if site not in self._replicas[item]:
            raise PlacementError(
                "item {}: s{} holds no replica to promote".format(
                    item, site))
        self._replicas[item].discard(site)
        self._replicas[item].add(old)
        self._primary[item] = site

    def clone(self) -> "DataPlacement":
        """Deep copy (mutating the clone leaves this placement alone)."""
        other = DataPlacement(self.n_sites)
        other._primary = dict(self._primary)
        other._replicas = {item: set(replicas)
                           for item, replicas in self._replicas.items()}
        return other

    # ------------------------------------------------------------------
    # Per-site views and shards
    # ------------------------------------------------------------------

    def view(self, site: SiteId) -> "PlacementView":
        """This site's slice of the placement (see
        :class:`PlacementView`)."""
        self._check_site(site)
        return PlacementView(self, site)

    def shard_key(self, item: ItemId) -> ShardKey:
        """``item``'s shard signature: ``(primary, sorted replicas)``."""
        return (self.primary_site(item),
                tuple(sorted(self._replicas[item])))

    def shards(self) -> typing.Dict[ShardKey, typing.Set[ItemId]]:
        """Items grouped by shard signature."""
        grouped: typing.Dict[ShardKey, typing.Set[ItemId]] = {}
        for item in self._primary:
            grouped.setdefault(self.shard_key(item), set()).add(item)
        return grouped

    def to_json(self) -> typing.Dict[str, typing.Any]:
        """JSON-ready form (used by the ``placement`` wire request).

        Item keys are stringified up front: ``json.dumps`` would coerce
        them silently, but the binary wire codec (rightly) refuses
        non-``str`` dict keys, and both codecs must carry the same
        frame."""
        return {
            "n_sites": self.n_sites,
            "items": {str(item): [primary, sorted(self._replicas[item])]
                      for item, primary in self._primary.items()},
        }

    @classmethod
    def from_json(cls, obj: typing.Mapping[str, typing.Any]
                  ) -> "DataPlacement":
        placement = cls(int(obj["n_sites"]))
        for item, (primary, replicas) in obj["items"].items():
            # Plain-JSON round trips stringify int keys; undo that.
            placement.add_item(int(item), int(primary),
                               [int(site) for site in replicas])
        return placement


class PlacementView:
    """One site's read-only slice of a :class:`DataPlacement`.

    A :class:`~repro.cluster.server.SiteServer` journals and applies
    only updates for items in its view — under partial replication that
    is a shard of the item space, not the whole database.
    """

    def __init__(self, placement: DataPlacement, site: SiteId):
        self.site = site
        self.primary_items = frozenset(placement.primary_items_at(site))
        self.replica_items = frozenset(placement.replica_items_at(site))

    @property
    def items(self) -> typing.FrozenSet[ItemId]:
        """Every item with a copy at this site."""
        return self.primary_items | self.replica_items

    def holds(self, item: ItemId) -> bool:
        return item in self.primary_items or item in self.replica_items

    def is_member(self) -> bool:
        """Whether the site holds any copy at all (a site with none has
        been administratively removed from the replication plane)."""
        return bool(self.primary_items or self.replica_items)
