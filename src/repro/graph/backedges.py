"""Backedge (feedback-arc-set) computation — paper Sec. 4.2.

A *backedge set* ``B`` is a set of copy-graph edges whose deletion leaves
a DAG.  Minimising the total weight of ``B`` is the (NP-hard) feedback arc
set problem; the paper points at approximation algorithms.  We provide:

- :func:`dfs_backedges` — the paper's "simple depth first search" set,
- :func:`greedy_fas_order` — the Eades–Lin–Smyth greedy vertex-ordering
  heuristic (weighted), a standard FAS approximation,
- :func:`make_minimal` — minimality repair (no edge of ``B`` can be
  returned to the graph without recreating a cycle, the property Sec. 4
  assumes),
- :func:`minimum_backedges` — front door combining the above.
"""

from __future__ import annotations

import typing

from repro.errors import GraphError
from repro.graph.copygraph import CopyGraph
from repro.types import SiteId

Edge = typing.Tuple[SiteId, SiteId]


def is_feedback_arc_set(graph: CopyGraph,
                        backedges: typing.Iterable[Edge]) -> bool:
    """Whether deleting ``backedges`` leaves ``graph`` acyclic."""
    return graph.without_edges(backedges).is_dag()


def make_minimal(graph: CopyGraph,
                 backedges: typing.Iterable[Edge]) -> typing.Set[Edge]:
    """Shrink ``backedges`` to a *minimal* feedback arc set.

    Repeatedly returns an edge to the graph if doing so keeps it acyclic.
    Deterministic: edges are reconsidered in sorted order.
    """
    backedge_set = set(backedges)
    if not is_feedback_arc_set(graph, backedge_set):
        raise GraphError("input set is not a feedback arc set")
    changed = True
    while changed:
        changed = False
        for edge in sorted(backedge_set):
            trial = backedge_set - {edge}
            if is_feedback_arc_set(graph, trial):
                backedge_set = trial
                changed = True
    return backedge_set


def dfs_backedges(graph: CopyGraph) -> typing.Set[Edge]:
    """Feedback arc set from depth-first search: every edge into a vertex
    currently on the DFS stack is a backedge.  Returned set is made
    minimal."""
    color: typing.Dict[SiteId, int] = {site: 0 for site in graph.sites}
    backedges: typing.Set[Edge] = set()

    for start in graph.sites:
        if color[start] != 0:
            continue
        # Iterative DFS with explicit child iterators.
        stack = [(start, iter(sorted(graph.children(start))))]
        color[start] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == 1:
                    backedges.add((node, child))
                elif color[child] == 0:
                    color[child] = 1
                    stack.append(
                        (child, iter(sorted(graph.children(child)))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return make_minimal(graph, backedges)


def greedy_fas_order(graph: CopyGraph,
                     weight: typing.Optional[
                         typing.Callable[[SiteId, SiteId], float]] = None
                     ) -> typing.List[SiteId]:
    """Eades–Lin–Smyth greedy vertex sequence (weighted variant).

    Edges pointing backwards in the returned sequence form a feedback arc
    set whose weight the heuristic tries to keep small.  ``weight``
    defaults to the copy graph's per-edge item counts.
    """
    if weight is None:
        weight = graph.edge_weight

    remaining = set(graph.sites)
    out_w = {site: 0.0 for site in remaining}
    in_w = {site: 0.0 for site in remaining}
    for src, dst in graph.edges:
        edge_weight = float(weight(src, dst))
        out_w[src] += edge_weight
        in_w[dst] += edge_weight

    head: typing.List[SiteId] = []
    tail: typing.List[SiteId] = []

    def drop(site: SiteId) -> None:
        remaining.discard(site)
        for child in graph.children(site):
            if child in remaining:
                in_w[child] -= float(weight(site, child))
        for parent in graph.parents(site):
            if parent in remaining:
                out_w[parent] -= float(weight(parent, site))

    while remaining:
        moved = True
        while moved:
            moved = False
            for site in sorted(remaining):
                if out_w[site] <= 1e-12:  # sink
                    tail.append(site)
                    drop(site)
                    moved = True
            for site in sorted(remaining):
                if site in remaining and in_w[site] <= 1e-12:  # source
                    head.append(site)
                    drop(site)
                    moved = True
        if remaining:
            best = max(sorted(remaining),
                       key=lambda site: out_w[site] - in_w[site])
            head.append(best)
            drop(best)

    tail.reverse()
    return head + tail


def backedges_of_order(graph: CopyGraph,
                       order: typing.Sequence[SiteId]
                       ) -> typing.Set[Edge]:
    """Edges pointing backwards with respect to a total site order.

    This is how the paper's experimental setup defines backedges
    (Sec. 5.2): an edge ``si -> sj`` with ``j < i`` in the chosen total
    order is treated as a backedge.  The result is a feedback arc set but
    not necessarily minimal.
    """
    position = {site: index for index, site in enumerate(order)}
    return {(src, dst) for src, dst in graph.edges
            if position[dst] < position[src]}


def minimum_backedges(graph: CopyGraph, method: str = "greedy",
                      weight: typing.Optional[
                          typing.Callable[[SiteId, SiteId], float]] = None,
                      minimal: bool = True) -> typing.Set[Edge]:
    """Compute a backedge set with the requested heuristic.

    ``method`` is ``"greedy"`` (Eades–Lin–Smyth) or ``"dfs"``.  With
    ``minimal`` (default) the result is repaired to a minimal set, as the
    BackEdge protocol's correctness argument assumes (Sec. 4).
    """
    if method == "dfs":
        backedges = dfs_backedges(graph)
    elif method == "greedy":
        order = greedy_fas_order(graph, weight)
        backedges = backedges_of_order(graph, order)
    else:
        raise GraphError("unknown backedge method {!r}".format(method))
    if minimal:
        backedges = make_minimal(graph, backedges)
    return backedges
