"""The copy graph: vertices are sites, edges follow primary -> replica.

Edges carry the set of items inducing them, which doubles as the edge
weight for the weighted feedback-arc-set computation (Sec. 4.2: "weights
... denote the frequency with which an update has to be propagated along
the edge").
"""

from __future__ import annotations

import collections
import typing

from repro.errors import GraphError
from repro.graph.placement import DataPlacement
from repro.types import ItemId, SiteId


class CopyGraph:
    """Directed copy graph over sites ``0..n_sites-1``."""

    def __init__(self, n_sites: int):
        self.n_sites = n_sites
        self._children: typing.Dict[SiteId, typing.Set[SiteId]] = \
            collections.defaultdict(set)
        self._parents: typing.Dict[SiteId, typing.Set[SiteId]] = \
            collections.defaultdict(set)
        self._edge_items: typing.Dict[typing.Tuple[SiteId, SiteId],
                                      typing.Set[ItemId]] = {}

    @classmethod
    def from_placement(cls, placement: DataPlacement) -> "CopyGraph":
        """Build the copy graph induced by a data placement."""
        graph = cls(placement.n_sites)
        for item in placement.items:
            primary = placement.primary_site(item)
            for replica in placement.replica_sites(item):
                graph.add_edge(primary, replica, item)
        return graph

    @property
    def sites(self) -> typing.Iterable[SiteId]:
        return range(self.n_sites)

    @property
    def edges(self) -> typing.Set[typing.Tuple[SiteId, SiteId]]:
        return set(self._edge_items)

    def add_edge(self, src: SiteId, dst: SiteId,
                 item: typing.Optional[ItemId] = None) -> None:
        """Add (or reinforce) the edge ``src -> dst``."""
        if src == dst:
            raise GraphError("self-loop at s{}".format(src))
        for site in (src, dst):
            if not 0 <= site < self.n_sites:
                raise GraphError("unknown site s{}".format(site))
        self._children[src].add(dst)
        self._parents[dst].add(src)
        items = self._edge_items.setdefault((src, dst), set())
        if item is not None:
            items.add(item)

    def has_edge(self, src: SiteId, dst: SiteId) -> bool:
        return (src, dst) in self._edge_items

    def children(self, site: SiteId) -> typing.FrozenSet[SiteId]:
        return frozenset(self._children.get(site, ()))

    def parents(self, site: SiteId) -> typing.FrozenSet[SiteId]:
        return frozenset(self._parents.get(site, ()))

    def sources(self) -> typing.List[SiteId]:
        """Sites with no parents (the DAG(T) epoch drivers, Sec. 3.3)."""
        return [site for site in self.sites if not self._parents.get(site)]

    def edge_items(self, src: SiteId, dst: SiteId
                   ) -> typing.FrozenSet[ItemId]:
        return frozenset(self._edge_items.get((src, dst), ()))

    def edge_weight(self, src: SiteId, dst: SiteId) -> int:
        """Number of items propagated along the edge (>= 1 if present)."""
        return max(1, len(self._edge_items.get((src, dst), ())))

    def without_edges(self, removed: typing.Iterable[
            typing.Tuple[SiteId, SiteId]]) -> "CopyGraph":
        """Copy of this graph with ``removed`` edges deleted."""
        removed_set = set(removed)
        clone = CopyGraph(self.n_sites)
        for (src, dst), items in self._edge_items.items():
            if (src, dst) in removed_set:
                continue
            clone.add_edge(src, dst)
            clone._edge_items[(src, dst)].update(items)
        return clone

    # ------------------------------------------------------------------
    # DAG analysis
    # ------------------------------------------------------------------

    def topological_order(self) -> typing.List[SiteId]:
        """A topological order of all sites (lowest site index first among
        ready vertices, so the order is deterministic).

        Raises :class:`GraphError` if the graph has a cycle.
        """
        import heapq

        indegree = {site: len(self._parents.get(site, ()))
                    for site in self.sites}
        ready = [site for site in self.sites if indegree[site] == 0]
        heapq.heapify(ready)
        order: typing.List[SiteId] = []
        while ready:
            site = heapq.heappop(ready)
            order.append(site)
            for child in sorted(self._children.get(site, ())):
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
        if len(order) != self.n_sites:
            raise GraphError("copy graph contains a cycle")
        return order

    def is_dag(self) -> bool:
        try:
            self.topological_order()
        except GraphError:
            return False
        return True

    def find_cycle(self) -> typing.Optional[typing.List[SiteId]]:
        """One directed cycle as ``[v0, v1, ..., v0]``, or ``None``."""
        color = {site: 0 for site in self.sites}  # 0 new, 1 open, 2 done
        stack: typing.List[SiteId] = []

        def visit(site) -> typing.Optional[typing.List[SiteId]]:
            color[site] = 1
            stack.append(site)
            for child in sorted(self._children.get(site, ())):
                if color[child] == 1:
                    start = stack.index(child)
                    return stack[start:] + [child]
                if color[child] == 0:
                    found = visit(child)
                    if found is not None:
                        return found
            color[site] = 2
            stack.pop()
            return None

        for site in self.sites:
            if color[site] == 0:
                found = visit(site)
                if found is not None:
                    return found
        return None

    def ancestors(self, site: SiteId) -> typing.Set[SiteId]:
        """All sites that can reach ``site`` (excluding itself)."""
        seen: typing.Set[SiteId] = set()
        frontier = list(self._parents.get(site, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._parents.get(node, ()))
        seen.discard(site)
        return seen

    def descendants(self, site: SiteId) -> typing.Set[SiteId]:
        """All sites reachable from ``site`` (excluding itself)."""
        seen: typing.Set[SiteId] = set()
        frontier = list(self._children.get(site, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._children.get(node, ()))
        seen.discard(site)
        return seen
