"""Propagation trees for the DAG(WT) protocol.

Section 2 requires a tree ``T`` over the sites such that whenever ``si`` is
a child of ``sj`` in the *copy graph*, ``si`` is a *descendant* of ``sj``
in ``T``.  (The construction is deferred to the technical report; we
implement a greedy minimal-depth construction with the always-valid
topological *chain* as fallback — the chain is also exactly the variant
the paper's performance study uses, Sec. 5.1.)
"""

from __future__ import annotations

import typing

from repro.errors import GraphError
from repro.graph.copygraph import CopyGraph
from repro.types import SiteId


class PropagationTree:
    """A rooted forest over the sites, stored as a parent map."""

    def __init__(self, parent: typing.Mapping[SiteId,
                                              typing.Optional[SiteId]]):
        self.parent: typing.Dict[SiteId, typing.Optional[SiteId]] = \
            dict(parent)
        self._children: typing.Dict[SiteId, typing.List[SiteId]] = {
            site: [] for site in self.parent}
        for site, par in sorted(self.parent.items()):
            if par is not None:
                if par not in self.parent:
                    raise GraphError(
                        "parent s{} of s{} not in tree".format(par, site))
                self._children[par].append(site)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for site in self.parent:
            seen = set()
            node: typing.Optional[SiteId] = site
            while node is not None:
                if node in seen:
                    raise GraphError(
                        "cycle in tree parent map at s{}".format(node))
                seen.add(node)
                node = self.parent[node]

    @property
    def sites(self) -> typing.Iterable[SiteId]:
        return self.parent.keys()

    def roots(self) -> typing.List[SiteId]:
        return sorted(site for site, par in self.parent.items()
                      if par is None)

    def children(self, site: SiteId) -> typing.Tuple[SiteId, ...]:
        return tuple(self._children[site])

    def depth(self, site: SiteId) -> int:
        depth = 0
        node = self.parent[site]
        while node is not None:
            depth += 1
            node = self.parent[node]
        return depth

    def root_path(self, site: SiteId) -> typing.List[SiteId]:
        """Path ``[root, ..., site]`` including both endpoints."""
        path = [site]
        node = self.parent[site]
        while node is not None:
            path.append(node)
            node = self.parent[node]
        path.reverse()
        return path

    def is_ancestor(self, ancestor: SiteId, site: SiteId) -> bool:
        """Whether ``ancestor`` is a *strict* ancestor of ``site``."""
        node = self.parent[site]
        while node is not None:
            if node == ancestor:
                return True
            node = self.parent[node]
        return False

    def path_down(self, ancestor: SiteId, site: SiteId
                  ) -> typing.List[SiteId]:
        """Sites on the tree path from ``ancestor`` down to ``site``,
        excluding ``ancestor``, including ``site``."""
        path = []
        node: typing.Optional[SiteId] = site
        while node is not None and node != ancestor:
            path.append(node)
            node = self.parent[node]
        if node != ancestor:
            raise GraphError(
                "s{} is not an ancestor of s{}".format(ancestor, site))
        path.reverse()
        return path

    def subtree(self, site: SiteId) -> typing.Set[SiteId]:
        """``site`` plus all of its descendants."""
        result = {site}
        frontier = list(self._children[site])
        while frontier:
            node = frontier.pop()
            result.add(node)
            frontier.extend(self._children[node])
        return result

    def satisfies_property_for(self, graph: CopyGraph) -> bool:
        """Check Sec. 2's requirement: copy-graph child => tree
        descendant."""
        for src, dst in graph.edges:
            if not self.is_ancestor(src, dst):
                return False
        return True


def chain_tree(order: typing.Sequence[SiteId]) -> PropagationTree:
    """The chain over ``order``: each site's parent is its predecessor.

    Always satisfies the Sec. 2 property when ``order`` is a topological
    order of the copy graph — this is the variant used in the paper's
    performance study (Sec. 5.1).
    """
    parent: typing.Dict[SiteId, typing.Optional[SiteId]] = {}
    previous: typing.Optional[SiteId] = None
    for site in order:
        parent[site] = previous
        previous = site
    return PropagationTree(parent)


def build_propagation_tree(graph: CopyGraph,
                           order: typing.Optional[
                               typing.Sequence[SiteId]] = None,
                           prefer_chain: bool = False) -> PropagationTree:
    """Build a tree satisfying the Sec. 2 property for a DAG copy graph.

    Greedy: process sites in topological order, attaching each site under
    the *shallowest* already-placed node whose root path covers all the
    site's copy-graph parents (this keeps the tree shallow, so secondary
    subtransactions traverse fewer hops).  Falls back to the topological
    chain when no valid attachment point exists (e.g. diamonds).

    ``prefer_chain`` forces the chain construction (the paper's
    implemented variant).
    """
    if order is None:
        order = graph.topological_order()
    else:
        order = list(order)
        position = {site: index for index, site in enumerate(order)}
        for src, dst in graph.edges:
            if position[src] >= position[dst]:
                raise GraphError(
                    "order is not topological for edge s{}->s{}".format(
                        src, dst))

    if prefer_chain:
        return chain_tree(order)

    parent: typing.Dict[SiteId, typing.Optional[SiteId]] = {}
    root_paths: typing.Dict[SiteId, typing.Set[SiteId]] = {}
    depths: typing.Dict[SiteId, int] = {}

    for site in order:
        copy_parents = graph.parents(site)
        if not copy_parents:
            parent[site] = None
            root_paths[site] = {site}
            depths[site] = 0
            continue
        candidates = [node for node in parent
                      if copy_parents <= root_paths[node]]
        if not candidates:
            return chain_tree(order)
        attach = min(candidates, key=lambda node: (depths[node], node))
        parent[site] = attach
        root_paths[site] = root_paths[attach] | {site}
        depths[site] = depths[attach] + 1

    tree = PropagationTree(parent)
    if not tree.satisfies_property_for(graph):  # pragma: no cover - safety
        return chain_tree(order)
    return tree


def build_shard_trees(placement) -> typing.Dict[
        typing.Tuple[SiteId, typing.Tuple[SiteId, ...]],
        PropagationTree]:
    """One propagation chain per shard of a partial-replication placement.

    A *shard* is an equivalence class of items sharing one
    ``(primary, replicas)`` signature
    (:meth:`~repro.graph.placement.DataPlacement.shards`).  Its tree is
    the chain ``primary -> replicas in site order``, spanning **exactly**
    the replicating sites — within a shard every copy-graph edge runs
    primary -> replica, so any chain starting at the primary satisfies
    the Sec. 2 property restricted to the shard.  The catch-up plane and
    the placement analytics (per-site footprint, forwarding fan-out)
    consume these; live forwarding stays on the epoch's global tree,
    whose subtree-relevance pruning already stops messages at the last
    replicating site of each chain.
    """
    return {key: chain_tree([primary] + list(replicas))
            for key, _items in placement.shards().items()
            for primary, replicas in [key]}
