"""Copy-graph machinery.

The *copy graph* (paper Sec. 1.1) has one vertex per site and an edge
``si -> sj`` iff some item's primary copy is at ``si`` and a secondary copy
at ``sj``.  This package builds copy graphs from data placements, tests
acyclicity, derives the propagation tree required by DAG(WT) (Sec. 2), and
computes backedge sets (feedback arc sets, Sec. 4.2).
"""

from repro.graph.backedges import (
    backedges_of_order,
    dfs_backedges,
    greedy_fas_order,
    is_feedback_arc_set,
    make_minimal,
    minimum_backedges,
)
from repro.graph.copygraph import CopyGraph
from repro.graph.placement import DataPlacement, PlacementView
from repro.graph.tree import (
    PropagationTree,
    build_propagation_tree,
    build_shard_trees,
)

__all__ = [
    "CopyGraph",
    "DataPlacement",
    "PlacementView",
    "PropagationTree",
    "backedges_of_order",
    "build_propagation_tree",
    "build_shard_trees",
    "dfs_backedges",
    "greedy_fas_order",
    "is_feedback_arc_set",
    "make_minimal",
    "minimum_backedges",
]
