"""Experiment parameters — the paper's Table 1.

Default values and studied ranges are reproduced verbatim; the ``range``
entries in :data:`PARAMETER_TABLE` regenerate Table 1 itself.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigurationError

#: Valid placement schemes (see :mod:`repro.workload.distribution`).
PLACEMENT_SCHEMES = ("paper", "sharded-hash", "sharded-range")


@dataclasses.dataclass
class WorkloadParams:
    """Table 1 parameter settings (defaults as published)."""

    #: Number of sites ``m`` (range 3-15).
    n_sites: int = 9
    #: Number of distinct items ``n`` (not counting replicas).
    n_items: int = 200
    #: Replication probability ``r`` (range 0-1).
    replication_probability: float = 0.2
    #: Site probability ``s``.
    site_probability: float = 0.5
    #: Backedge probability ``b`` (range 0-1).
    backedge_probability: float = 0.2
    #: Operations per transaction.
    ops_per_transaction: int = 10
    #: Concurrent threads per site (range 1-5).
    threads_per_site: int = 3
    #: Transactions run by each thread.
    transactions_per_thread: int = 1000
    #: Fraction of operations that are reads in update transactions
    #: (range 0-1).
    read_op_probability: float = 0.7
    #: Probability that a transaction is read-only (range 0-1).
    read_txn_probability: float = 0.5
    #: One-way network latency, seconds (~0.15 ms measured ethernet;
    #: range 0.15-100 ms).
    network_latency: float = 0.00015
    #: Deadlock timeout interval, seconds.
    deadlock_timeout: float = 0.050
    #: Relative latency jitter (extension): each message's latency is
    #: drawn uniformly from ``latency * [1-j, 1+j]``.  FIFO order is
    #: preserved by the channel regardless.  0 = the paper's constant
    #: latency.
    network_jitter: float = 0.0
    #: Hot-spot skew (an extension beyond the paper's uniform access):
    #: with this probability an operation targets the hot subset of the
    #: eligible items.  0 reproduces the paper's uniform workload.
    hotspot_access_probability: float = 0.0
    #: Fraction of each site's eligible items forming the hot subset.
    hotspot_item_fraction: float = 0.1
    #: Placement scheme (partial-replication extension): ``"paper"`` is
    #: Sec. 5.2's probabilistic generator; ``"sharded-hash"`` and
    #: ``"sharded-range"`` place each item in a shard of
    #: ``replication_factor`` consecutive sites (primary first), so each
    #: site holds only a slice of the item space.
    placement_scheme: str = "paper"
    #: Sharded schemes only: total copies per item (primary included).
    #: 0 means "full" — every site from the primary onward replicates.
    replication_factor: int = 2

    def validate(self) -> "WorkloadParams":
        """Raise :class:`ConfigurationError` on out-of-range settings."""
        if self.n_sites < 1:
            raise ConfigurationError("n_sites must be >= 1")
        if self.placement_scheme not in PLACEMENT_SCHEMES:
            raise ConfigurationError(
                "unknown placement_scheme {!r} (expected one of {})"
                .format(self.placement_scheme,
                        ", ".join(PLACEMENT_SCHEMES)))
        if self.replication_factor < 0:
            raise ConfigurationError("replication_factor must be >= 0")
        if self.n_items < self.n_sites:
            raise ConfigurationError(
                "need at least one item per site "
                "(n_items={} < n_sites={})".format(
                    self.n_items, self.n_sites))
        for name in ("replication_probability", "site_probability",
                     "backedge_probability", "read_op_probability",
                     "read_txn_probability", "hotspot_access_probability",
                     "hotspot_item_fraction", "network_jitter"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    "{} must be in [0, 1], got {}".format(name, value))
        for name in ("ops_per_transaction", "threads_per_site",
                     "transactions_per_thread"):
            if getattr(self, name) < 1:
                raise ConfigurationError("{} must be >= 1".format(name))
        if self.network_latency < 0 or self.deadlock_timeout <= 0:
            raise ConfigurationError("non-positive timing parameter")
        return self

    def replaced(self, **changes) -> "WorkloadParams":
        """Copy with some fields changed (validated)."""
        return dataclasses.replace(self, **changes).validate()


#: The published defaults.
DEFAULT_PARAMS = WorkloadParams()

#: Table 1 rows: (parameter, symbol, default rendering, range rendering).
PARAMETER_TABLE: typing.List[typing.Tuple[str, str, str, str]] = [
    ("Number of Sites", "m", "9", "3 - 15"),
    ("Number of Items", "n", "200", ""),
    ("Replication Probability", "r", "0.2", "0 - 1"),
    ("Site Probability", "s", "0.5", ""),
    ("Backedge Probability", "b", "0.2", "0 - 1"),
    ("Operations/Transaction", "", "10", ""),
    ("Threads/Site", "", "3", "1 - 5"),
    ("Transactions/Thread", "", "1000", ""),
    ("Read Operation Probability", "", "0.7", "0 - 1"),
    ("Read Transaction Probability", "", "0.5", "0 - 1"),
    ("Network Latency", "", "Approx 0.15 millisec", "0.15 - 100 millisec"),
    ("Deadlock Timeout Interval", "", "50 millisec", ""),
]


def format_parameter_table(params: WorkloadParams = DEFAULT_PARAMS) -> str:
    """Render Table 1 (with the live values from ``params``)."""
    live = {
        "Number of Sites": str(params.n_sites),
        "Number of Items": str(params.n_items),
        "Replication Probability": str(params.replication_probability),
        "Site Probability": str(params.site_probability),
        "Backedge Probability": str(params.backedge_probability),
        "Operations/Transaction": str(params.ops_per_transaction),
        "Threads/Site": str(params.threads_per_site),
        "Transactions/Thread": str(params.transactions_per_thread),
        "Read Operation Probability": str(params.read_op_probability),
        "Read Transaction Probability": str(params.read_txn_probability),
        "Network Latency": "{:g} millisec".format(
            params.network_latency * 1000),
        "Deadlock Timeout Interval": "{:g} millisec".format(
            params.deadlock_timeout * 1000),
    }
    header = "{:<30} {:<8} {:<22} {}".format(
        "Parameter", "Symbol", "Default Value", "Range")
    lines = [header, "-" * len(header)]
    for name, symbol, _default, value_range in PARAMETER_TABLE:
        lines.append("{:<30} {:<8} {:<22} {}".format(
            name, symbol, live[name], value_range))
    return "\n".join(lines)
