"""Transaction generation (Sec. 5.2, "Transaction Generation").

Each transaction is a sequence of ``ops_per_transaction`` read/write
operations.  A transaction is read-only with ``read_txn_probability``;
otherwise each operation is a read with ``read_op_probability``.  Reads
draw from all items present at the originating site; writes draw from the
items whose primary copy is local (the paper's model restriction).
"""

from __future__ import annotations

import itertools
import random
import typing

from repro.errors import ConfigurationError
from repro.graph.placement import DataPlacement
from repro.types import (
    GlobalTransactionId,
    Operation,
    OpType,
    SiteId,
    TransactionSpec,
)
from repro.workload.params import WorkloadParams


class TransactionGenerator:
    """Produces per-thread streams of :class:`TransactionSpec`."""

    def __init__(self, params: WorkloadParams, placement: DataPlacement,
                 seed_rng: random.Random):
        params.validate()
        self.params = params
        self.placement = placement
        self._seed_rng = seed_rng
        self._site_counters: typing.Dict[SiteId, typing.Iterator[int]] = {}
        self._readable: typing.Dict[SiteId, typing.List] = {}
        self._writable: typing.Dict[SiteId, typing.List] = {}
        for site in range(placement.n_sites):
            self._readable[site] = sorted(placement.items_at(site))
            self._writable[site] = sorted(placement.primary_items_at(site))
            if not self._writable[site]:
                raise ConfigurationError(
                    "site s{} has no primary items".format(site))
            self._site_counters[site] = itertools.count(1)

    def thread_stream(self, site: SiteId, thread_index: int
                      ) -> typing.Iterator[TransactionSpec]:
        """The finite transaction stream for one client thread."""
        rng = random.Random(self._seed_rng.getrandbits(64)
                            ^ hash((site, thread_index)))
        for _ in range(self.params.transactions_per_thread):
            yield self.make_transaction(site, rng)

    def make_transaction(self, site: SiteId,
                         rng: random.Random) -> TransactionSpec:
        """Generate one transaction originating at ``site``."""
        params = self.params
        n_ops = params.ops_per_transaction
        if rng.random() < params.read_txn_probability:
            op_types = [OpType.READ] * n_ops
        else:
            op_types = [OpType.READ
                        if rng.random() < params.read_op_probability
                        else OpType.WRITE
                        for _ in range(n_ops)]
        n_reads = sum(1 for op in op_types if op is OpType.READ)
        n_writes = n_ops - n_reads
        read_items = iter(self._pick_items(self._readable[site],
                                           n_reads, rng))
        write_items = iter(self._pick_items(self._writable[site],
                                            n_writes, rng))
        operations = tuple(
            Operation(op_type,
                      next(read_items) if op_type is OpType.READ
                      else next(write_items))
            for op_type in op_types)
        gid = GlobalTransactionId(site, next(self._site_counters[site]))
        return TransactionSpec(gid=gid, origin=site, operations=operations)


    def _pick_items(self, pool: typing.Sequence, count: int,
                    rng: random.Random) -> typing.List:
        """Choose ``count`` items from ``pool``, honouring the optional
        hot-spot skew (the hot subset is the pool's prefix, so it is the
        same across threads and protocols)."""
        skew = self.params.hotspot_access_probability
        if skew <= 0.0 or count == 0 or len(pool) < 2:
            return _sample(pool, count, rng)
        hot_size = max(1, int(len(pool)
                              * self.params.hotspot_item_fraction))
        hot, cold = pool[:hot_size], pool[hot_size:]
        chosen: typing.List = []
        seen: typing.Set = set()
        for _ in range(count):
            source = hot if (rng.random() < skew or not cold) else cold
            item = rng.choice(source)
            if item in seen and len(seen) < len(pool):
                # Prefer distinct items, like the uniform sampler.
                alternatives = [candidate for candidate in pool
                                if candidate not in seen]
                item = rng.choice(alternatives)
            seen.add(item)
            chosen.append(item)
        return chosen


def _sample(pool: typing.Sequence, count: int,
            rng: random.Random) -> typing.List:
    """``count`` items from ``pool``: distinct when the pool allows it,
    with replacement otherwise (tiny sites)."""
    if count == 0:
        return []
    if count <= len(pool):
        return rng.sample(pool, count)
    return [rng.choice(pool) for _ in range(count)]
