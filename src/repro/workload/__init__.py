"""The paper's workload: Table 1 parameters, the Sec. 5.2 data
distribution, and the transaction generator."""

from repro.workload.distribution import generate_placement
from repro.workload.generator import TransactionGenerator
from repro.workload.params import DEFAULT_PARAMS, WorkloadParams

__all__ = [
    "DEFAULT_PARAMS",
    "TransactionGenerator",
    "WorkloadParams",
    "generate_placement",
]
