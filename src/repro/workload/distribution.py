"""The paper's data-distribution scheme (Sec. 5.2).

Primary copies are assigned uniformly across the ``m`` sites (round-robin,
matching the paper's "each site is the primary site for approximately
``n/m`` items").  A fraction ``r`` of each site's primaries is replicated.
For a replicated item with primary at ``si``:

- with probability ``b`` *all* other sites are candidates for replicas
  (edges to earlier sites become backedges),
- with probability ``1 - b`` only the sites *following* ``si`` in the
  total site order are candidates;

each candidate then receives a replica with probability ``s``.
"""

from __future__ import annotations

import random
import typing

from repro.graph.placement import DataPlacement
from repro.workload.params import WorkloadParams


def generate_placement(params: WorkloadParams,
                       rng: random.Random) -> DataPlacement:
    """Generate a :class:`DataPlacement` per Sec. 5.2."""
    params.validate()
    m = params.n_sites
    placement = DataPlacement(m)
    for item in range(params.n_items):
        primary = item % m
        replicas: typing.List[int] = []
        if rng.random() < params.replication_probability:
            if rng.random() < params.backedge_probability:
                candidates = [site for site in range(m) if site != primary]
            else:
                candidates = list(range(primary + 1, m))
            replicas = [site for site in candidates
                        if rng.random() < params.site_probability]
        placement.add_item(item, primary, replicas)
    return placement


def placement_statistics(placement: DataPlacement
                         ) -> typing.Dict[str, float]:
    """Summary statistics used when reporting experiments."""
    items = list(placement.items)
    replicated = [item for item in items if placement.is_replicated(item)]
    total_replicas = placement.replica_count()
    backedge_count = 0
    for item in replicated:
        primary = placement.primary_site(item)
        backedge_count += sum(
            1 for replica in placement.replica_sites(item)
            if replica < primary)
    return {
        "items": float(len(items)),
        "replicated_items": float(len(replicated)),
        "replicas": float(total_replicas),
        "replicas_per_replicated_item": (
            total_replicas / len(replicated) if replicated else 0.0),
        "backedge_replica_pairs": float(backedge_count),
    }
