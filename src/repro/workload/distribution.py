"""Data-distribution schemes.

``"paper"`` is Sec. 5.2's probabilistic generator.  Primary copies are
assigned uniformly across the ``m`` sites (round-robin, matching the
paper's "each site is the primary site for approximately ``n/m``
items").  A fraction ``r`` of each site's primaries is replicated.  For
a replicated item with primary at ``si``:

- with probability ``b`` *all* other sites are candidates for replicas
  (edges to earlier sites become backedges),
- with probability ``1 - b`` only the sites *following* ``si`` in the
  total site order are candidates;

each candidate then receives a replica with probability ``s``.

The *sharded* schemes are the partial-replication extension (Sutra &
Shapiro's setting, PAPERS.md): each item lives in a shard of
``replication_factor`` **consecutive** sites, primary first —

- ``"sharded-hash"``: primary = ``item % m`` (item space striped across
  sites),
- ``"sharded-range"``: primary = ``item * m // n`` (contiguous key
  ranges per site);

replicas are the next ``k - 1`` sites in site order, truncated at the
last site so the induced copy graph stays a forward-edge DAG (sites
near the end of the order hold proportionally fewer replica copies).
``replication_factor = 0`` means *full*: every site after the primary
replicates.  Both schemes are fully deterministic — the ``rng`` is
accepted for signature parity and never consulted — so every member of
a cluster derives the identical placement from the spec.
"""

from __future__ import annotations

import random
import typing

from repro.graph.placement import DataPlacement
from repro.workload.params import WorkloadParams


def generate_placement(params: WorkloadParams,
                       rng: random.Random) -> DataPlacement:
    """Generate a :class:`DataPlacement` per ``params.placement_scheme``."""
    params.validate()
    if params.placement_scheme == "paper":
        return _generate_paper(params, rng)
    return generate_sharded_placement(params)


def _generate_paper(params: WorkloadParams,
                    rng: random.Random) -> DataPlacement:
    """The Sec. 5.2 probabilistic placement."""
    m = params.n_sites
    placement = DataPlacement(m)
    for item in range(params.n_items):
        primary = item % m
        replicas: typing.List[int] = []
        if rng.random() < params.replication_probability:
            if rng.random() < params.backedge_probability:
                candidates = [site for site in range(m) if site != primary]
            else:
                candidates = list(range(primary + 1, m))
            replicas = [site for site in candidates
                        if rng.random() < params.site_probability]
        placement.add_item(item, primary, replicas)
    return placement


def generate_sharded_placement(params: WorkloadParams) -> DataPlacement:
    """Deterministic sharded placement (hash or range, factor ``k``)."""
    m = params.n_sites
    n = params.n_items
    k = params.replication_factor or m  # 0 = full replication
    placement = DataPlacement(m)
    for item in range(n):
        if params.placement_scheme == "sharded-range":
            primary = item * m // n
        else:
            primary = item % m
        replicas = list(range(primary + 1, min(primary + k, m)))
        placement.add_item(item, primary, replicas)
    return placement


def placement_statistics(placement: DataPlacement
                         ) -> typing.Dict[str, float]:
    """Summary statistics used when reporting experiments."""
    items = list(placement.items)
    replicated = [item for item in items if placement.is_replicated(item)]
    total_replicas = placement.replica_count()
    backedge_count = 0
    for item in replicated:
        primary = placement.primary_site(item)
        backedge_count += sum(
            1 for replica in placement.replica_sites(item)
            if replica < primary)
    return {
        "items": float(len(items)),
        "replicated_items": float(len(replicated)),
        "replicas": float(total_replicas),
        "replicas_per_replicated_item": (
            total_replicas / len(replicated) if replicated else 0.0),
        "backedge_replica_pairs": float(backedge_count),
    }
