"""The BackEdge protocol (paper Sec. 4) — extension of DAG(WT).

For an arbitrary copy graph, a backedge set ``B`` is chosen so that the
remaining edges form a DAG; updates along ``B`` are propagated *eagerly*
(backedge subtransactions hold their locks until a distributed commit),
while updates along the DAG edges stay lazy.

Execution of a primary ``Ti`` at site ``si`` with backedge targets
``si1..sij`` (replica sites that are tree ancestors of ``si``):

1. ``Ti`` executes locally, then sends a *backedge subtransaction* ``S1``
   directly to the farthest ancestor ``si1`` and keeps its locks.
2. ``S1`` applies the updates at ``si1`` (holding locks, not committing)
   and relays a *special* secondary subtransaction down the tree toward
   ``si``; each backedge site on the path applies the updates in FIFO
   queue order and holds its locks; pure relay sites just forward.
3. When the special reaches ``si`` (after all earlier-queued secondaries
   committed there), ``Ti`` and ``S1..Sj`` commit atomically via 2PC.
4. ``Ti``'s updates for *descendant* sites then propagate lazily exactly
   as in DAG(WT).

Global deadlocks (Example 4.1) are resolved by the timeout victim rules:
a blocked secondary wounds a conflicting primary; a primary blocked on a
backedge subtransaction's lock aborts itself; an aborted primary tears
down its backedge subtransactions with ``ABORT_SUBTXN`` messages.

The performance-study variant (Sec. 5.1) uses the topological *chain* as
the propagation tree; ``variant="tree"`` enables the general form with a
minimal backedge set.
"""

from __future__ import annotations

import typing

from repro.core.base import ReplicatedSystem, Site, register_protocol
from repro.core.dag_wt import DagWtProtocol, _wound_reason
from repro.errors import ConfigurationError, GraphError, LockTimeout
from repro.graph.backedges import backedges_of_order, make_minimal
from repro.graph.tree import build_propagation_tree, chain_tree
from repro.network.message import Message, MessageType
from repro.sim.events import Event, Interrupt
from repro.storage.transaction import Transaction, TransactionStatus
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@register_protocol
class BackEdgeProtocol(DagWtProtocol):
    """Hybrid eager/lazy propagation for arbitrary copy graphs."""

    name = "backedge"
    requires_dag = False

    def __init__(self, system: ReplicatedSystem, variant: str = "chain",
                 site_order: typing.Optional[
                     typing.Sequence[SiteId]] = None,
                 strict_fifo_commit: bool = False):
        graph = system.copy_graph
        if site_order is None:
            if graph.is_dag():
                site_order = graph.topological_order()
            else:
                # The paper's experimental setup: the identity order over
                # sites, consistent with the DAG part (Sec. 5.2).
                site_order = list(range(graph.n_sites))
        elif site_order == "greedy":
            # Sec. 4.2: minimise the *weight* of the backedge set (weight
            # = number of items propagated along each edge) with the
            # Eades-Lin-Smyth heuristic.
            from repro.graph.backedges import greedy_fas_order
            site_order = greedy_fas_order(graph)
        backedges = backedges_of_order(graph, site_order)
        if variant == "chain":
            tree = chain_tree(site_order)
        elif variant == "tree":
            backedges = make_minimal(graph, backedges)
            dag = graph.without_edges(backedges)
            tree = build_propagation_tree(dag)
        else:
            raise ConfigurationError(
                "unknown BackEdge variant {!r}".format(variant))
        self.variant = variant
        self.site_order = list(site_order)
        self.backedges = backedges
        #: With strict FIFO commit, a site's queue blocks while a special
        #: subtransaction awaits its global decision (and while the origin
        #: primary finishes 2PC) — the letter of Sec. 4.1's FIFO rule.
        #: The default relaxes this: the special's *locks* already order
        #: every conflicting subtransaction, so non-conflicting queue
        #: traffic may commit meanwhile (the effectively-eager phase is a
        #: distributed strict-2PL transaction committed atomically, so
        #: serializability is preserved — and the harness's DSG checker
        #: verifies it on every run).
        self.strict_fifo_commit = strict_fifo_commit
        super().__init__(system, tree=tree)
        for src, dst in backedges:
            if not tree.is_ancestor(dst, src):
                raise GraphError(
                    "backedge s{}->s{}: target is not a tree ancestor"
                    .format(src, dst))
        n = graph.n_sites
        #: Origin side: gid -> event the primary awaits (special arrival).
        self._awaiting_special: typing.List[dict] = [dict()
                                                     for _ in range(n)]
        #: Origin side: gid -> event the queue processor awaits (2PC done).
        self._done_events: typing.List[dict] = [dict() for _ in range(n)]
        #: Participant side: gid -> prepared/active backedge subtxn.
        self._participants: typing.List[dict] = [dict() for _ in range(n)]
        #: Participant side: gid -> decision event a blocked processor
        #: waits on.
        self._decision_events: typing.List[dict] = [dict()
                                                    for _ in range(n)]
        #: Coordinator side: (gid, participant) -> vote event.
        self._vote_events: typing.Dict[typing.Tuple, Event] = {}
        #: Globally-aborted gids per site (drop late messages).
        self._aborted: typing.List[set] = [set() for _ in range(n)]

    def on_placement_change(self) -> None:
        """Re-derive site order, backedge set and tree for the new
        epoch's copy graph (the ``__init__`` derivation, minus the
        explicit-order overrides — those cannot survive a placement
        change)."""
        from repro.core.base import ReplicationProtocol
        # Skip DagWt's rebuild: its default tree construction assumes a
        # DAG copy graph, which BackEdge does not require.
        ReplicationProtocol.on_placement_change(self)
        graph = self.system.copy_graph
        if graph.is_dag():
            site_order = graph.topological_order()
        else:
            site_order = list(range(graph.n_sites))
        backedges = backedges_of_order(graph, site_order)
        if self.variant == "chain":
            tree = chain_tree(site_order)
        else:
            backedges = make_minimal(graph, backedges)
            tree = build_propagation_tree(graph.without_edges(backedges))
        for src, dst in backedges:
            if not tree.is_ancestor(dst, src):
                raise GraphError(
                    "backedge s{}->s{}: target is not a tree ancestor"
                    .format(src, dst))
        self.site_order = list(site_order)
        self.backedges = backedges
        self.tree = tree

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------

    def _make_handler(self, site: Site):
        queue_types = (MessageType.SECONDARY, MessageType.SPECIAL)

        def handler(message: Message) -> None:
            if message.msg_type in queue_types:
                self._queues[site.site_id].put(message)
            elif message.msg_type is MessageType.BACKEDGE:
                self.env.process(self._on_backedge(site, message))
            elif message.msg_type is MessageType.PREPARE:
                self.env.process(self._on_prepare(site, message))
            elif message.msg_type is MessageType.VOTE:
                self.env.process(self._on_vote(site, message))
            elif message.msg_type is MessageType.DECISION:
                self.env.process(self._on_decision(site, message))
            elif message.msg_type is MessageType.ABORT_SUBTXN:
                self.env.process(self._on_abort_subtxn(site, message))
            else:  # pragma: no cover - defensive
                self.system.network.dead_letters.append(message)
        return handler

    # ------------------------------------------------------------------
    # Primary subtransactions
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        gid = spec.gid
        txn = site.engine.begin(gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        targets: typing.List[SiteId] = []
        backedge_sent = False
        try:
            yield from self._local_operations(site, txn, spec)
            replicated = self._replicated_writes(txn)
            targets = self._backedge_targets(site_id, replicated)
            if targets:
                backedge_sent = True
                yield from self._run_backedge_phase(
                    site, txn, replicated, targets)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._teardown(site_id, gid, targets, backedge_sent)
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            self._teardown(site_id, gid, targets, backedge_sent)
            self._abort_primary(site, txn, _wound_reason(exc))
        # Commit point: atomic with forwarding, as in DAG(WT).
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = self._replicated_writes(txn)
        self.system.notify(
            "primary_commit", gid=gid, site=site_id, time=self.env.now,
            expected_replicas=self._expected_replicas(replicated))
        self._forward(site_id, gid, replicated)
        self._finish_done(site_id, gid)

    def _backedge_targets(self, origin: SiteId,
                          writes: typing.Mapping[ItemId, typing.Any]
                          ) -> typing.List[SiteId]:
        """Replica sites of updated items that are tree *ancestors* of the
        origin (i.e. reached via backedges)."""
        replica_sites = self._expected_replicas(writes)
        targets = []
        for replica in sorted(replica_sites):
            if self.tree.is_ancestor(replica, origin):
                targets.append(replica)
            elif not self.tree.is_ancestor(origin, replica):
                raise GraphError(
                    "replica site s{} is neither ancestor nor descendant "
                    "of origin s{} in the propagation tree".format(
                        replica, origin))
        return targets

    def _run_backedge_phase(self, site: Site, txn: Transaction,
                            writes: typing.Mapping[ItemId, typing.Any],
                            targets: typing.List[SiteId]):
        """Steps 1-3: dispatch S1, await the special, run 2PC."""
        origin = site.site_id
        gid = txn.gid
        farthest = min(targets, key=self.tree.depth)
        arrival = Event(self.env)
        self._awaiting_special[origin][gid] = arrival
        self.network.send(MessageType.BACKEDGE, origin, farthest,
                          gid=gid, writes=dict(writes), origin=origin)
        # Step 1-2 happen remotely; Ti holds its locks and waits.
        yield arrival
        # Step 3: the special has arrived (and every secondary queued
        # before it has committed here) — commit everyone atomically.
        commit_ok = yield from self._collect_votes(origin, gid, targets)
        if not commit_ok:
            # A participant was torn down: global abort.
            for target in targets:
                self.network.send(MessageType.DECISION, origin, target,
                                  gid=gid, commit=False)
            raise LockTimeout(gid, "backedge-participant")
        txn.shielded = True
        for target in targets:
            self.network.send(MessageType.DECISION, origin, target,
                              gid=gid, commit=True)

    def _collect_votes(self, origin: SiteId, gid: GlobalTransactionId,
                       targets: typing.List[SiteId]):
        """2PC voting round with the backedge sites."""
        for target in targets:
            self._vote_events[(gid, target)] = Event(self.env)
            self.network.send(MessageType.PREPARE, origin, target, gid=gid)
        all_ok = True
        for target in targets:
            vote = yield self._vote_events[(gid, target)]
            self._vote_events.pop((gid, target), None)
            all_ok = all_ok and vote
        return all_ok

    def _teardown(self, origin: SiteId, gid: GlobalTransactionId,
                  targets: typing.List[SiteId],
                  backedge_sent: bool) -> None:
        """Abort-path cleanup at the origin."""
        self._awaiting_special[origin].pop(gid, None)
        self._aborted[origin].add(gid)
        if backedge_sent:
            for target in targets:
                self.network.send(MessageType.ABORT_SUBTXN, origin, target,
                                  gid=gid)
        for target in list(targets):
            self._vote_events.pop((gid, target), None)
        self._finish_done(origin, gid)

    def _finish_done(self, site_id: SiteId,
                     gid: GlobalTransactionId) -> None:
        """Unblock the queue processor waiting for this gid, if any."""
        done = self._done_events[site_id].pop(gid, None)
        if done is not None:
            done.succeed()

    # ------------------------------------------------------------------
    # Backedge subtransaction S1 (arrives directly at the farthest site)
    # ------------------------------------------------------------------

    def _on_backedge(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        origin = message.payload["origin"]
        writes = message.payload["writes"]
        site_id = site.site_id
        if gid in self._aborted[site_id]:
            return
        txn = site.engine.begin(gid, SubtransactionKind.BACKEDGE)
        self._participants[site_id][gid] = txn
        yield from self._apply_writes_held(site, txn, writes)
        if gid in self._aborted[site_id]:
            self._drop_participant(site, gid)
            return
        site.engine.prepare(txn)
        next_hop = self.tree.path_down(site_id, origin)[0]
        self.network.send(MessageType.SPECIAL, site_id, next_hop,
                          gid=gid, writes=dict(writes), origin=origin)

    def _apply_writes_held(self, site: Site, txn: Transaction,
                           writes: typing.Mapping[ItemId, typing.Any]):
        """Apply the locally-replicated subset of ``writes`` under locks.

        Never raises on lock waits: non-primary requesters are never
        chosen as timeout victims (they wound conflicting primaries and
        keep waiting).
        """
        local_items = sorted(
            item for item in writes
            if site.site_id in self.placement.replica_sites(item))
        for item in local_items:
            yield from site.engine.write(txn, item, writes[item])
            yield from site.work(self.config.cpu_apply_write)

    def _drop_participant(self, site: Site,
                          gid: GlobalTransactionId) -> None:
        txn = self._participants[site.site_id].pop(gid, None)
        if txn is not None and not txn.is_finished:
            site.engine.abort(txn)

    # ------------------------------------------------------------------
    # The special secondary subtransaction (queue path)
    # ------------------------------------------------------------------

    def _process_message(self, site: Site, message: Message):
        if message.msg_type is MessageType.SPECIAL:
            yield from self._handle_special(site, message)
        else:
            yield from super()._process_message(site, message)

    def _handle_special(self, site: Site, message: Message):
        gid = message.payload["gid"]
        origin = message.payload["origin"]
        writes = message.payload["writes"]
        site_id = site.site_id

        if site_id == origin:
            # The special completed the round trip: hand control to the
            # waiting primary.  In strict-FIFO mode the queue blocks until
            # it commits/aborts.
            arrival = self._awaiting_special[origin].pop(gid, None)
            if arrival is None:
                return  # Ti already aborted; drop.
            if self.strict_fifo_commit:
                done = Event(self.env)
                self._done_events[origin][gid] = done
                arrival.succeed(message)
                yield done
            else:
                arrival.succeed(message)
            return

        if gid in self._aborted[site_id]:
            return

        local_items = [item for item in writes
                       if site_id in self.placement.replica_sites(item)]
        next_hop = self.tree.path_down(site_id, origin)[0]
        if not local_items:
            # Pure relay: no updates here, forward and move on.
            self.network.send(MessageType.SPECIAL, site_id, next_hop,
                              gid=gid, writes=dict(writes), origin=origin)
            return

        # A backedge site on the path: execute, hold locks, forward, then
        # block this queue until the global decision (step 2).
        txn = site.engine.begin(gid, SubtransactionKind.SPECIAL)
        self._participants[site_id][gid] = txn
        yield from self._apply_writes_held(site, txn, writes)
        if gid in self._aborted[site_id]:
            self._drop_participant(site, gid)
            return
        site.engine.prepare(txn)
        self.network.send(MessageType.SPECIAL, site_id, next_hop,
                          gid=gid, writes=dict(writes), origin=origin)
        if not self.strict_fifo_commit:
            # The held locks order all conflicting traffic; the decision
            # is applied asynchronously by ``_on_decision``.
            return
        decision = Event(self.env)
        self._decision_events[site_id][gid] = decision
        verdict = yield decision
        self._decision_events[site_id].pop(gid, None)
        self._participants[site_id].pop(gid, None)
        if verdict:
            yield from site.work(self.config.cpu_commit)
            site.engine.commit(txn)
            self.system.notify("replica_commit", gid=gid, site=site_id,
                               time=self.env.now)
        else:
            site.engine.abort(txn)

    # ------------------------------------------------------------------
    # 2PC participant handlers
    # ------------------------------------------------------------------

    def _on_prepare(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        txn = self._participants[site.site_id].get(gid)
        ready = txn is not None and \
            txn.status is TransactionStatus.PREPARED
        self.network.send(MessageType.VOTE, site.site_id, message.src,
                          gid=gid, commit=ready)

    def _on_vote(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        event = self._vote_events.get((gid, message.src))
        if event is not None and not event.triggered:
            event.succeed(bool(message.payload["commit"]))

    def _on_decision(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        commit = bool(message.payload["commit"])
        site_id = site.site_id
        if not commit:
            self._aborted[site_id].add(gid)
        decision = self._decision_events[site_id].get(gid)
        if decision is not None:
            if not decision.triggered:
                decision.succeed(commit)
            return
        # Farthest site (S1): its handler process has finished; apply the
        # decision to the prepared subtransaction directly.
        txn = self._participants[site_id].pop(gid, None)
        if txn is None or txn.is_finished:
            return
        if commit:
            yield from site.work(self.config.cpu_commit)
            site.engine.commit(txn)
            self.system.notify("replica_commit", gid=gid, site=site_id,
                               time=self.env.now)
        else:
            site.engine.abort(txn)

    def _on_abort_subtxn(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        site_id = site.site_id
        self._aborted[site_id].add(gid)
        decision = self._decision_events[site_id].get(gid)
        if decision is not None:
            if not decision.triggered:
                decision.succeed(False)
            return
        txn = self._participants[site_id].get(gid)
        if txn is None:
            return
        if txn.status is TransactionStatus.PREPARED:
            self._participants[site_id].pop(gid, None)
            site.engine.abort(txn)
        # An ACTIVE participant is still applying writes; its driving
        # process checks the aborted set once the writes are in and drops
        # the subtransaction itself (aborting it from here would strand
        # the driver on a cancelled lock wait).
