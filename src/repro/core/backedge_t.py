"""BackEdge over DAG(T) — the extension the paper defers to its
technical report ("[BKRSS98] discusses extensions to the DAG(T)
protocol", Sec. 4).

The copy graph is split into a *minimal* backedge set ``B`` and the
remaining DAG; the lazy part runs DAG(T) on the DAG (direct propagation,
vector timestamps, epochs, dummies).  Updates along backedges propagate
eagerly.  For a primary ``Ti`` at ``si`` with backedge targets
``sj1..sjk``:

1. after executing locally, ``Ti`` sends a backedge subtransaction
   directly to **each** target in parallel (there is no tree to relay a
   special subtransaction through);
2. each target applies the updates under locks, stays prepared, and
   acknowledges with its *current site timestamp*;
3. ``Ti`` commits only once its own site's timestamp has advanced past
   every acknowledged timestamp.  Because ``B`` is minimal, each target
   is a DAG ancestor of ``si``, so target-site timestamps percolate down
   to ``si`` through committed secondaries and (relayed) dummies.  This
   wait plays the role of the chain variant's special-subtransaction
   round trip: every subtransaction serialized before ``Ti`` at a target
   has reached and committed at ``si`` (or is blocked on ``Ti``'s locks,
   in which case the timeout victim rules wound ``Ti`` — the global
   deadlock resolution of Sec. 4.1);
4. ``Ti`` then commits atomically with its backedge subtransactions
   (decision round), takes its DAG(T) timestamp, and propagates to its
   DAG children lazily.

Step 3's catch-up is accelerated by *relayed* dummies: a target flushes
its timestamp down its DAG children immediately after preparing, and
each site that commits a relayed dummy forwards its own, so the origin
catches up in path-length network hops instead of heartbeat periods.
"""

from __future__ import annotations

import typing

from repro.core.base import ReplicatedSystem, Site, register_protocol
from repro.core.dag_t import DagTProtocol
from repro.core.timestamps import VectorTimestamp
from repro.errors import GraphError, LockTimeout, TransactionAborted
from repro.graph.backedges import backedges_of_order, make_minimal
from repro.network.message import Message, MessageType
from repro.sim.events import Event, Interrupt
from repro.storage.transaction import TransactionStatus
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@register_protocol
class BackEdgeTProtocol(DagTProtocol):
    """Hybrid eager/lazy propagation with DAG(T) as the lazy layer."""

    name = "backedge_t"
    requires_dag = False

    def __init__(self, system: ReplicatedSystem,
                 site_order: typing.Optional[
                     typing.Sequence[SiteId]] = None):
        graph = system.copy_graph
        if site_order is None:
            if graph.is_dag():
                site_order = graph.topological_order()
            else:
                site_order = list(range(graph.n_sites))
        # Minimality matters here: it guarantees every backedge target is
        # a DAG ancestor of the origin, so the step-3 timestamp catch-up
        # terminates.
        backedges = make_minimal(graph,
                                 backedges_of_order(graph, site_order))
        dag = graph.without_edges(backedges)
        super().__init__(system, graph=dag)
        self.site_order = list(site_order)
        self.backedges = backedges
        for src, dst in backedges:
            if dst not in dag.ancestors(src):
                raise GraphError(
                    "backedge s{}->s{}: target is not a DAG ancestor of "
                    "the origin (backedge set must be minimal)".format(
                        src, dst))
        n = graph.n_sites
        #: Participant side: gid -> prepared backedge subtransaction.
        self._participants: typing.List[dict] = [dict() for _ in range(n)]
        #: Coordinator side: (gid, target) -> vote event (value: the
        #: target's site timestamp, or False on refusal).
        self._vote_events: typing.Dict[typing.Tuple, Event] = {}
        #: Globally-aborted gids per site.
        self._aborted: typing.List[set] = [set() for _ in range(n)]
        #: Events waiting for a site's base timestamp to advance.
        self._base_watchers: typing.List[list] = [[] for _ in range(n)]

    # ------------------------------------------------------------------
    # Message routing: DAG(T) queue traffic plus the eager-phase types
    # ------------------------------------------------------------------

    def _make_handler(self, site_id: SiteId):
        dag_handler = super()._make_handler(site_id)
        site = self.system.site_of(site_id)

        def handler(message: Message) -> None:
            if message.msg_type in (MessageType.SECONDARY,
                                    MessageType.DUMMY):
                dag_handler(message)
            elif message.msg_type is MessageType.BACKEDGE:
                self.env.process(self._on_backedge(site, message))
            elif message.msg_type is MessageType.VOTE:
                event = self._vote_events.get(
                    (message.payload["gid"], message.src))
                if event is not None and not event.triggered:
                    event.succeed(message.payload["ack"])
            elif message.msg_type is MessageType.DECISION:
                self.env.process(self._on_decision(site, message))
            elif message.msg_type is MessageType.ABORT_SUBTXN:
                self.env.process(self._on_abort_subtxn(site, message))
            else:  # pragma: no cover - defensive
                self.network.dead_letters.append(message)
        return handler

    # ------------------------------------------------------------------
    # Timestamp catch-up machinery
    # ------------------------------------------------------------------

    def _apply_secondary(self, site: Site, message: Message, timestamp):
        yield from super()._apply_secondary(site, message, timestamp)
        self._notify_base_watchers(site.site_id)
        self._maybe_relay(site.site_id, message)

    def _queue_processor(self, site: Site):
        """Extend the DAG(T) processor: dummies also wake base watchers
        and relayed dummies are forwarded promptly."""
        site_id = site.site_id
        while True:
            yield self._wait_all_queues(site_id)
            message = self._pop_minimum(site_id)
            yield from site.work(self.config.cpu_message)
            timestamp = message.payload["ts"]
            if message.msg_type is MessageType.DUMMY:
                self.clocks[site_id].on_secondary_commit(timestamp)
                self._notify_base_watchers(site_id)
                self._maybe_relay(site_id, message)
                continue
            yield from self._apply_secondary(site, message, timestamp)

    def _maybe_relay(self, site_id: SiteId, message: Message) -> None:
        if not message.payload.get("relay"):
            return
        self._flush_timestamp(site_id)

    def _flush_timestamp(self, site_id: SiteId) -> None:
        """Send relayed dummies to all DAG children immediately."""
        for child in sorted(self.graph.children(site_id)):
            self.network.send(
                MessageType.DUMMY, site_id, child,
                ts=self.clocks[site_id].site_timestamp(), relay=True)
            self._last_sent[(site_id, child)] = self.env.now

    def _notify_base_watchers(self, site_id: SiteId) -> None:
        watchers = self._base_watchers[site_id]
        if not watchers:
            return
        base = self.clocks[site_id].base
        still_waiting = []
        for threshold, event in watchers:
            if not event.triggered:
                if threshold <= base:
                    event.succeed(base)
                else:
                    still_waiting.append((threshold, event))
        self._base_watchers[site_id] = still_waiting

    def _wait_base_at_least(self, site_id: SiteId,
                            threshold: VectorTimestamp):
        """Block until the site's base timestamp reaches ``threshold``."""
        base = self.clocks[site_id].base
        while not threshold <= base:
            event = Event(self.env)
            self._base_watchers[site_id].append((threshold, event))
            yield event
            base = self.clocks[site_id].base

    # ------------------------------------------------------------------
    # Primary subtransactions
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        gid = spec.gid
        txn = site.engine.begin(gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        targets: typing.List[SiteId] = []
        dispatched = False
        try:
            yield from self._local_operations(site, txn, spec)
            replicated = {item: value
                          for item, value in txn.writes.items()
                          if self.placement.is_replicated(item)}
            targets = self._backedge_targets(site_id, replicated)
            if targets:
                dispatched = True
                acks = yield from self._eager_phase(
                    site, gid, replicated, targets)
                if acks is None:
                    raise LockTimeout(gid, "backedge-participant")
                # Step 3: catch up to every target's prepare-time
                # timestamp before committing.
                for ack in acks:
                    yield from self._wait_base_at_least(site_id, ack)
                txn.shielded = True
                for target in targets:
                    self.network.send(MessageType.DECISION, site_id,
                                      target, gid=gid, commit=True)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._teardown(site_id, gid, targets, dispatched)
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            self._teardown(site_id, gid, targets, dispatched)
            cause = exc.cause
            reason = cause.reason if isinstance(
                cause, TransactionAborted) else str(cause)
            self._abort_primary(site, txn, reason)
        # Commit: take the DAG(T) timestamp and propagate lazily to the
        # DAG children (backedge targets were served eagerly).
        timestamp = self.clocks[site_id].on_primary_commit()
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = {item: value for item, value in txn.writes.items()
                      if self.placement.is_replicated(item)}
        self.system.notify(
            "primary_commit", gid=gid, site=site_id, time=self.env.now,
            expected_replicas=self._expected_replicas(replicated))
        self._schedule_lazy(site_id, gid, replicated, timestamp,
                            exclude=set(targets))

    def _backedge_targets(self, origin: SiteId,
                          writes: typing.Mapping[ItemId, typing.Any]
                          ) -> typing.List[SiteId]:
        """Replica sites reached from ``origin`` via backedges."""
        targets = set()
        for item in writes:
            for replica in self.placement.replica_sites(item):
                if (origin, replica) in self.backedges:
                    targets.add(replica)
                elif not self.graph.has_edge(origin, replica):
                    raise GraphError(
                        "replica site s{} of item {} unreachable from "
                        "s{}".format(replica, item, origin))
        return sorted(targets)

    def _schedule_lazy(self, site_id: SiteId, gid: GlobalTransactionId,
                       writes: typing.Mapping[ItemId, typing.Any],
                       timestamp, exclude: typing.Set[SiteId]) -> None:
        """DAG(T) step 3, restricted to non-backedge children."""
        children = self._expected_replicas(writes) - exclude
        for child in sorted(children):
            relevant = {item: value for item, value in writes.items()
                        if child in self.placement.replica_sites(item)}
            if not relevant:
                continue
            self.network.send(MessageType.SECONDARY, site_id, child,
                              gid=gid, writes=relevant, ts=timestamp)
            self._last_sent[(site_id, child)] = self.env.now

    # ------------------------------------------------------------------
    # Eager phase
    # ------------------------------------------------------------------

    def _eager_phase(self, site: Site, gid: GlobalTransactionId,
                     writes: typing.Mapping[ItemId, typing.Any],
                     targets: typing.List[SiteId]):
        """Dispatch backedge subtransactions in parallel; collect each
        target's prepare-time timestamp (``None`` on any refusal)."""
        origin = site.site_id
        for target in targets:
            self._vote_events[(gid, target)] = Event(self.env)
            relevant = {item: value for item, value in writes.items()
                        if target in self.placement.replica_sites(item)}
            self.network.send(MessageType.BACKEDGE, origin, target,
                              gid=gid, writes=relevant, origin=origin)
        acks: typing.List[VectorTimestamp] = []
        failed = False
        for target in targets:
            event = self._vote_events.get((gid, target))
            if event is None:
                failed = True
                continue
            ack = yield event
            self._vote_events.pop((gid, target), None)
            if ack is False:
                failed = True
            else:
                acks.append(ack)
        return None if failed else acks

    def _teardown(self, origin: SiteId, gid: GlobalTransactionId,
                  targets: typing.List[SiteId], dispatched: bool) -> None:
        self._aborted[origin].add(gid)
        for target in targets:
            self._vote_events.pop((gid, target), None)
            if dispatched:
                self.network.send(MessageType.ABORT_SUBTXN, origin,
                                  target, gid=gid)

    # ------------------------------------------------------------------
    # Participant side
    # ------------------------------------------------------------------

    def _on_backedge(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        origin = message.payload["origin"]
        writes = message.payload["writes"]
        site_id = site.site_id
        if gid in self._aborted[site_id]:
            return
        txn = site.engine.begin(gid, SubtransactionKind.BACKEDGE)
        self._participants[site_id][gid] = txn
        for item in sorted(writes):
            yield from site.engine.write(txn, item, writes[item])
            yield from site.work(self.config.cpu_apply_write)
        if gid in self._aborted[site_id]:
            self._participants[site_id].pop(gid, None)
            site.engine.abort(txn)
            return
        site.engine.prepare(txn)
        # Acknowledge with this site's current timestamp: everything
        # committed here before the backedge subtransaction prepared.
        ack = self.clocks[site_id].site_timestamp()
        self.network.send(MessageType.VOTE, site_id, origin, gid=gid,
                          ack=ack)
        # Flush the timestamp downstream so the origin catches up in
        # network hops rather than heartbeat periods.
        self._flush_timestamp(site_id)

    def _on_decision(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        commit = bool(message.payload["commit"])
        txn = self._participants[site.site_id].pop(gid, None)
        if txn is None or txn.is_finished:
            return
        if commit:
            yield from site.work(self.config.cpu_commit)
            site.engine.commit(txn)
            self.system.notify("replica_commit", gid=gid,
                               site=site.site_id, time=self.env.now)
        else:
            site.engine.abort(txn)

    def _on_abort_subtxn(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        site_id = site.site_id
        self._aborted[site_id].add(gid)
        txn = self._participants[site_id].get(gid)
        if txn is not None and \
                txn.status is TransactionStatus.PREPARED:
            self._participants[site_id].pop(gid, None)
            site.engine.abort(txn)
        # An ACTIVE participant cleans itself up after its lock waits
        # (see _on_backedge's post-application check).
