"""Lazy primary-site locking (PSL) — the paper's baseline (Sec. 5.1).

Reads and updates of items whose primary copies are local are handled
locally.  A read of a *replica* obtains a shared lock at the item's
primary site; the current value ships back with the lock grant.  Updates
touch only the local primary copy and are never pushed to replicas —
propagation is implicit, on access.  All locks (local and remote) are
released once the transaction commits, so no multi-site commit protocol
is needed; deadlocks (local and global) resolve via the lock timeout,
which aborts the requester.
"""

from __future__ import annotations

import itertools
import typing

from repro.core.base import (
    ReplicatedSystem,
    ReplicationProtocol,
    Site,
    register_protocol,
)
from repro.errors import LockTimeout, PlacementError
from repro.network.message import Message, MessageType
from repro.sim.events import Event, Interrupt
from repro.storage.transaction import Transaction
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)

#: Sentinel payload marker for a denied remote lock.
_DENIED = object()


@register_protocol
class PrimarySiteLockingProtocol(ReplicationProtocol):
    """The lazy-master / primary-site-locking baseline."""

    name = "psl"
    requires_dag = False

    def __init__(self, system: ReplicatedSystem):
        super().__init__(system)
        n = system.placement.n_sites
        #: Primary-site side: gid -> proxy transaction holding locks on
        #: behalf of a remote transaction.
        self._proxies: typing.List[typing.Dict[GlobalTransactionId,
                                               Transaction]] = [
            dict() for _ in range(n)]
        #: Origin side: request-id -> reply event.
        self._pending: typing.List[typing.Dict[int, Event]] = [
            dict() for _ in range(n)]
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self) -> None:
        for site in self.system.local_sites:
            # Default timeout behaviour (no policy installed): the waiting
            # request aborts — the paper's timeout mechanism.
            self.network.set_handler(site.site_id, self._make_handler(site))

    def _make_handler(self, site: Site):
        def handler(message: Message) -> None:
            if message.msg_type is MessageType.LOCK_REQUEST:
                self.env.process(self._serve_lock_request(site, message))
            elif message.msg_type in (MessageType.LOCK_GRANT,
                                      MessageType.LOCK_DENIED):
                event = self._pending[site.site_id].pop(
                    message.payload["request_id"], None)
                if event is not None:
                    event.succeed(message)
            elif message.msg_type is MessageType.LOCK_RELEASE:
                self.env.process(self._serve_release(site, message))
            else:  # pragma: no cover - defensive
                self.network.dead_letters.append(message)
        return handler

    # ------------------------------------------------------------------
    # Primary transactions
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        gid = spec.gid
        txn = site.engine.begin(gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        #: Primary sites where a proxy holds locks for this transaction.
        remote_sites: typing.Set[SiteId] = set()
        try:
            for index, op in enumerate(spec.operations):
                if op.is_read:
                    yield from self._read(site, txn, op.item, remote_sites)
                else:
                    if self.placement.primary_site(op.item) != site_id:
                        raise PlacementError(
                            "PSL: update of non-primary copy of {} at s{}"
                            .format(op.item, site_id))
                    yield from site.engine.write(
                        txn, op.item, self._write_value(gid, index))
                yield from site.work(self.config.cpu_per_op)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._release_remote(site_id, gid, remote_sites, commit=False)
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            self._release_remote(site_id, gid, remote_sites, commit=False)
            self._abort_primary(site, txn, str(exc.cause))
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        self.system.notify("primary_commit", gid=gid, site=site_id,
                           time=self.env.now, expected_replicas=set())
        # All locks release at commit, remote ones via (async) messages.
        self._release_remote(site_id, gid, remote_sites, commit=True)

    def _read(self, site: Site, txn: Transaction, item: ItemId,
              remote_sites: typing.Set[SiteId]):
        primary = self.placement.primary_site(item)
        if primary == site.site_id:
            yield from site.engine.read(txn, item)
            return
        # Remote read: shared lock at the primary site; value ships back.
        request_id = next(self._request_ids)
        reply_event = Event(self.env)
        self._pending[site.site_id][request_id] = reply_event
        self.network.send(MessageType.LOCK_REQUEST, site.site_id, primary,
                          gid=txn.gid, item=item, request_id=request_id)
        reply = yield reply_event
        yield from site.work(self.config.cpu_message)
        if reply.msg_type is MessageType.LOCK_DENIED:
            raise LockTimeout(txn.gid, item)
        remote_sites.add(primary)
        return reply.payload["value"]

    def _release_remote(self, site_id: SiteId, gid: GlobalTransactionId,
                        remote_sites: typing.Iterable[SiteId],
                        commit: bool) -> None:
        for remote in sorted(set(remote_sites)):
            self.network.send(MessageType.LOCK_RELEASE, site_id, remote,
                              gid=gid, commit=commit)

    # ------------------------------------------------------------------
    # Primary-site service
    # ------------------------------------------------------------------

    def _serve_lock_request(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        item = message.payload["item"]
        request_id = message.payload["request_id"]
        proxies = self._proxies[site.site_id]
        proxy = proxies.get(gid)
        if proxy is None:
            proxy = site.engine.begin(gid, SubtransactionKind.PRIMARY)
            proxies[gid] = proxy
        try:
            value = yield from site.engine.read(proxy, item)
        except LockTimeout:
            if not site.engine.locks.items_held(proxy):
                # Nothing granted to this proxy yet; no release message
                # will ever come for it, so clean it up now.
                self._proxies[site.site_id].pop(gid, None)
                site.engine.abort(proxy)
            self.network.send(MessageType.LOCK_DENIED, site.site_id,
                              message.src, request_id=request_id,
                              item=item)
            return
        yield from site.work(self.config.cpu_remote_read)
        self.network.send(
            MessageType.LOCK_GRANT, site.site_id, message.src,
            request_id=request_id, item=item, value=value,
            version=site.engine.item(item).committed_version)

    def _serve_release(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        proxy = self._proxies[site.site_id].pop(gid, None)
        if proxy is None:
            return
        if message.payload["commit"] and not proxy.is_finished:
            # Committing the (read-only) proxy records the reads in this
            # site's history — the serialization point of the remote reads.
            site.engine.commit(proxy)
        else:
            site.engine.abort(proxy)
