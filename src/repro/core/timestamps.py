"""DAG(T) timestamps (paper Sec. 3.1 and 3.3).

A *tuple* is ``(site, local-counter)`` (Def. 3.1).  A *timestamp* is a
vector of tuples in ascending site order — one tuple for the site itself
plus tuples for a subset of its copy-graph ancestors (Def. 3.2).

Timestamps are compared lexicographically with *reversed* site order at
the first differing position (Def. 3.3):

- a proper prefix is smaller, and
- at the first differing tuple ``(si, Li)`` vs ``(sj, Lj)``:
  ``si > sj`` makes the first timestamp smaller; for ``si == sj`` the
  smaller counter wins.

Sec. 3.3 adds an *epoch number*: timestamps with different epochs compare
by epoch alone.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.errors import ConfigurationError
from repro.types import SiteId


@dataclasses.dataclass(frozen=True, order=True)
class SiteTuple:
    """Def. 3.1: the pair ``(si, LTSi)``."""

    site: SiteId
    counter: int

    def __str__(self) -> str:
        return "(s{},{})".format(self.site, self.counter)


@functools.total_ordering
@dataclasses.dataclass(frozen=True)
class VectorTimestamp:
    """Def. 3.2 timestamp with the Sec. 3.3 epoch number.

    ``tuples`` must be in strictly ascending site order.
    """

    tuples: typing.Tuple[SiteTuple, ...] = ()
    epoch: int = 0

    def __post_init__(self):
        sites = [entry.site for entry in self.tuples]
        if any(a >= b for a, b in zip(sites, sites[1:])):
            raise ConfigurationError(
                "timestamp tuples must be in strictly ascending site "
                "order: {}".format(self))

    def __str__(self) -> str:
        body = "".join(str(entry) for entry in self.tuples)
        return "e{}:{}".format(self.epoch, body or "()")

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        return self.epoch == other.epoch and self.tuples == other.tuples

    def __hash__(self):
        return hash((self.epoch, self.tuples))

    def __lt__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        if self.epoch != other.epoch:
            return self.epoch < other.epoch
        for mine, theirs in zip(self.tuples, other.tuples):
            if mine == theirs:
                continue
            if mine.site != theirs.site:
                # Reversed site order: the *larger* site sorts smaller.
                return mine.site > theirs.site
            return mine.counter < theirs.counter
        # One is a prefix of the other: the prefix is smaller.
        return len(self.tuples) < len(other.tuples)

    def concat(self, entry: SiteTuple) -> "VectorTimestamp":
        """Append the tuple for a site (Sec. 3.2.3: ``TS(Ti)(si, LTSi)``).

        The appended site must be larger than every site already present —
        guaranteed in the protocol because a secondary subtransaction only
        ever flows from ancestors to descendants in the site total order.
        """
        if self.tuples and entry.site <= self.tuples[-1].site:
            raise ConfigurationError(
                "cannot append {} to {}: site order violated".format(
                    entry, self))
        return VectorTimestamp(self.tuples + (entry,), self.epoch)

    def with_epoch(self, epoch: int) -> "VectorTimestamp":
        return VectorTimestamp(self.tuples, epoch)

    def counter_of(self, site: SiteId) -> typing.Optional[int]:
        """The counter recorded for ``site``, if present."""
        for entry in self.tuples:
            if entry.site == site:
                return entry.counter
        return None
