"""Replicated-system assembly and the protocol interface.

A :class:`ReplicatedSystem` wires together, for one experiment run: the
simulation environment, one :class:`~repro.storage.engine.StorageEngine`
and one CPU :class:`~repro.sim.resources.Resource` per site, the FIFO
:class:`~repro.network.network.Network`, the copy graph derived from the
data placement, and one :class:`ReplicationProtocol` instance.

Protocols implement ``run_transaction`` (executed inside a client thread's
simulation process) plus whatever background machinery they need
(``setup``).  Shared behaviour — local operation execution with CPU
accounting, deterministic write values, the paper's timeout victim rules —
lives here.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigurationError, TransactionAborted
from repro.graph.copygraph import CopyGraph
from repro.graph.placement import DataPlacement
from repro.network.network import Network
from repro.sim.environment import Environment
from repro.sim.resources import Resource
from repro.storage.engine import StorageEngine
from repro.storage.locks import (
    ABORT_WAITER,
    KEEP_WAITING,
    LockManager,
    LockMode,
    LockRequest,
)
from repro.storage.transaction import Transaction
from repro.types import (
    GlobalTransactionId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@dataclasses.dataclass
class SystemConfig:
    """Engine/cost knobs of the simulated testbed.

    CPU service times are calibrated so the paper's default workload lands
    in its reported throughput/response-time range (see EXPERIMENTS.md);
    they model a late-90s workstation running an in-memory DBMS.
    """

    #: Lock/deadlock timeout interval (Table 1: 50 ms).
    lock_timeout: float = 0.050
    #: One-way network latency (Table 1 default: ~0.15 ms).
    network_latency: float = 0.00015
    #: Per-transaction client/setup CPU spent *before* any lock is taken
    #: (parsing, scheduling, connection work).  Most of a transaction's
    #: service time sits here, so locks are held only briefly relative to
    #: the 50 ms deadlock timeout — matching the paper's near-zero abort
    #: rate for the lazy protocols at b=0.
    cpu_txn_setup: float = 0.035
    #: CPU time to execute one read/write operation under locks
    #: (main-memory engine: cheap).
    cpu_per_op: float = 0.0005
    #: CPU time for local commit processing.
    cpu_commit: float = 0.001
    #: CPU time to receive/handle one network message.
    cpu_message: float = 0.001
    #: CPU time to apply one replica write in a secondary subtransaction.
    cpu_apply_write: float = 0.0005
    #: CPU time at the primary site to serve one remote read (PSL).
    cpu_remote_read: float = 0.004
    #: Round-robin scheduling quantum of the per-site CPU: long jobs are
    #: consumed in slices so short (lock-holding) work is not stuck
    #: behind them.
    cpu_quantum: float = 0.001
    #: Cores per site CPU (the paper's testbed is single-core; >1 models
    #: an SMP site).
    cpu_cores: int = 1
    #: DAG(T): dummy-subtransaction interval per idle edge (Sec. 3.3).
    heartbeat_interval: float = 0.100
    #: DAG(T): epoch-increment period at source sites (Sec. 3.3).
    epoch_interval: float = 0.250


class Site:
    """Per-site runtime: the storage engine plus a single-core CPU."""

    def __init__(self, env: Environment, site_id: SiteId,
                 config: SystemConfig):
        self.env = env
        self.site_id = site_id
        self.config = config
        self.engine = StorageEngine(env, site_id,
                                    lock_timeout=config.lock_timeout)
        self.cpu = Resource(env, capacity=config.cpu_cores)

    def work(self, duration: float):
        """Consume ``duration`` of this site's CPU under round-robin
        scheduling.  Use as ``yield from site.work(t)``."""
        yield from self.cpu.use(duration, quantum=self.config.cpu_quantum)

    def __repr__(self):
        return "<Site s{}>".format(self.site_id)


class ReplicatedSystem:
    """One fully-wired replicated database system.

    Parameters
    ----------
    env, placement, config:
        As before.
    transport:
        The site-to-site message fabric.  Defaults to the simulated
        :class:`~repro.network.network.Network`; the live cluster runtime
        (:mod:`repro.cluster`) injects a TCP-backed transport with the
        same ``send``/``set_handler`` interface and per-channel FIFO
        guarantee instead.
    local_sites:
        Site ids hosted by *this* process.  Defaults to all sites (the
        single-process simulation).  A live :class:`SiteServer` restricts
        this to its own site: only local sites get engines/CPUs, and
        protocols install handlers and background processes for local
        sites only.
    """

    def __init__(self, env: Environment, placement: DataPlacement,
                 config: typing.Optional[SystemConfig] = None,
                 transport=None,
                 local_sites: typing.Optional[
                     typing.Iterable[SiteId]] = None):
        self.env = env
        self.placement = placement
        self.config = config or SystemConfig()
        self.copy_graph = CopyGraph.from_placement(placement)
        if transport is None:
            transport = Network(env, placement.n_sites,
                                latency=self.config.network_latency)
        self.network = transport
        if local_sites is None:
            local_sites = range(placement.n_sites)
        self.local_site_ids: typing.List[SiteId] = sorted(local_sites)
        local_set = set(self.local_site_ids)
        self.sites: typing.List[typing.Optional[Site]] = [
            Site(env, site_id, self.config) if site_id in local_set
            else None
            for site_id in range(placement.n_sites)]
        self.protocol: typing.Optional["ReplicationProtocol"] = None
        #: Configuration epoch (:mod:`repro.reconfig`): bumped by
        #: :meth:`swap_placement` at each committed reconfiguration.
        self.epoch: int = 0
        #: Registry of in-flight primary subtransactions by global id —
        #: lets a remote site's victim policy wound the owning primary
        #: (physically this is a tiny control message; the simulation
        #: applies it directly and only the ensuing cleanup traffic is
        #: charged to the network).
        self.primaries: typing.Dict[GlobalTransactionId, Transaction] = {}
        #: Cross-process wound hook: ``(gid, reason) -> None``.  When a
        #: victim policy needs to wound a primary whose registry lives in
        #: another process, it calls this instead (the live runtime wires
        #: it to a WOUND control message; ``None`` in the simulation,
        #: where every primary is in :attr:`primaries`).
        self.remote_wound: typing.Optional[typing.Callable] = None
        #: Observer hooks (set by the harness metrics collector).
        self.observers: typing.List = []
        # Materialise item copies at their (locally hosted) sites.
        for item in placement.items:
            for copy_site in sorted(placement.sites_of(item)):
                if copy_site in local_set:
                    self.site_of(copy_site).engine.create_item(item)

    @property
    def local_sites(self) -> typing.List[Site]:
        """The :class:`Site` runtimes hosted by this process."""
        return [self.sites[site_id] for site_id in self.local_site_ids]

    def site_of(self, site_id: SiteId) -> Site:
        site = self.sites[site_id]
        if site is None:
            raise ConfigurationError(
                "site s{} is not hosted by this process".format(site_id))
        return site

    def use_protocol(self, protocol: "ReplicationProtocol") -> None:
        """Install the protocol and run its setup (handlers, processes)."""
        self.protocol = protocol
        protocol.setup()

    def swap_placement(self, placement: DataPlacement,
                       epoch: int) -> None:
        """Atomically adopt a new placement at an epoch boundary
        (:mod:`repro.reconfig`).

        Runs between drive steps of the live runtime (never mid-
        subtransaction): replaces the placement and copy graph,
        materialises engine records for copies this process *gains*
        (their values arrive via catch-up), and lets the protocol
        re-derive its routing state.  Copies this process *loses* stay
        in the engine — frozen, unreferenced by the new placement, and
        refused to clients by the server's placement legality check —
        because deleting history that committed transactions read would
        blind the serializability oracle.
        """
        self.placement = placement
        self.copy_graph = CopyGraph.from_placement(placement)
        self.epoch = epoch
        for site_id in self.local_site_ids:
            engine = self.site_of(site_id).engine
            for item in sorted(placement.items_at(site_id)):
                if not engine.has_item(item):
                    engine.create_item(item)
        if self.protocol is not None:
            self.protocol.on_placement_change()

    # ------------------------------------------------------------------
    # Observer plumbing (metrics)
    # ------------------------------------------------------------------

    def notify(self, event: str, **details) -> None:
        for observer in self.observers:
            handler = getattr(observer, "on_" + event, None)
            if handler is not None:
                handler(**details)

    # ------------------------------------------------------------------
    # Global-txn registry
    # ------------------------------------------------------------------

    def register_primary(self, txn: Transaction) -> None:
        self.primaries[txn.gid] = txn

    def unregister_primary(self, txn: Transaction) -> None:
        self.primaries.pop(txn.gid, None)


class ReplicationProtocol:
    """Base class for update-propagation protocols.

    Subclasses must define :attr:`name`, implement ``run_transaction``
    (a generator executed inside the client process) and may override
    ``setup`` to install message handlers and background processes.
    """

    #: Registry key, e.g. ``"backedge"``.
    name: str = "base"
    #: Whether the protocol requires an acyclic copy graph.
    requires_dag: bool = False

    def __init__(self, system: ReplicatedSystem):
        self.system = system
        self.env = system.env
        self.config = system.config
        self.placement = system.placement
        self.network = system.network
        if self.requires_dag and not system.copy_graph.is_dag():
            raise ConfigurationError(
                "{} requires a DAG copy graph; found cycle {}".format(
                    self.name, system.copy_graph.find_cycle()))

    # -- subclass interface -------------------------------------------

    def setup(self) -> None:
        """Install message handlers / background processes."""

    def on_placement_change(self) -> None:
        """The system swapped its placement (epoch transition).

        Subclasses re-derive whatever routing state they cache
        (propagation tree, site order, backedge set).  The base hook
        refreshes the placement snapshot reference."""
        self.placement = self.system.placement

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process) -> typing.Generator:
        """Run one primary transaction attempt to commit.

        Must be driven with ``yield from`` inside the client's simulation
        process (``process`` is that process, used to make the
        transaction woundable).  Raises
        :class:`~repro.errors.TransactionAborted` after rolling back on
        any abort (lock timeout, wound, global deadlock).
        """
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    def _site(self, site_id: SiteId) -> Site:
        return self.system.site_of(site_id)

    @staticmethod
    def _write_value(gid: GlobalTransactionId, op_index: int) -> str:
        """Deterministic value for a write (content is irrelevant to the
        protocols; versions drive the serializability checker)."""
        return "{}#{}".format(gid, op_index)

    def _txn_setup(self, site: Site):
        """Pre-lock per-transaction CPU work (run first in every
        ``run_transaction``)."""
        yield from site.work(self.config.cpu_txn_setup)

    def _local_operations(self, site: Site, txn: Transaction,
                          spec: TransactionSpec):
        """Execute all of ``spec``'s operations locally under 2PL.

        Lock waits happen while *not* holding the CPU; each operation then
        costs ``cpu_per_op`` of CPU time.
        """
        for index, op in enumerate(spec.operations):
            if op.is_read:
                yield from site.engine.read(txn, op.item)
            else:
                yield from site.engine.write(
                    txn, op.item, self._write_value(txn.gid, index))
            yield from site.work(self.config.cpu_per_op)

    def _abort_primary(self, site: Site, txn: Transaction,
                       reason: str) -> typing.NoReturn:
        """Roll back a primary and raise :class:`TransactionAborted`."""
        site.engine.abort(txn)
        self.system.unregister_primary(txn)
        raise TransactionAborted(txn.gid, reason)

    # -- the paper's timeout victim rules ------------------------------

    def install_lazy_timeout_policy(self, manager: LockManager) -> None:
        """Victim selection for the lazy protocols (Secs. 2, 4.1):

        - a *primary* whose wait times out aborts itself;
        - a *secondary/special* subtransaction is never the victim — it
          wounds a conflicting primary (the one that arrived latest, the
          paper's "fair" example policy) or, when blocked by a backedge
          subtransaction, wounds that subtransaction's own global primary
          (the Example 4.1 global-deadlock resolution) and keeps waiting;
        - a *backedge* subtransaction similarly wounds conflicting
          primaries and keeps waiting (its own primary aborts itself if
          the wait cycles back to it).
        """

        def policy(mgr: LockManager, request: LockRequest) -> str:
            if request.txn.kind is SubtransactionKind.PRIMARY:
                return ABORT_WAITER
            blockers = self._conflicting_holders(mgr, request)
            wounded = False
            for holder in sorted(
                    blockers, key=lambda txn: -txn.start_time):
                if holder.kind is SubtransactionKind.PRIMARY:
                    if holder.wound("wounded-by-{}".format(
                            request.txn.kind.value)):
                        wounded = True
                        break
                elif holder.kind in (SubtransactionKind.BACKEDGE,
                                     SubtransactionKind.SPECIAL):
                    primary = self.system.primaries.get(holder.gid)
                    if primary is not None:
                        if primary.wound("global-deadlock"):
                            wounded = True
                            break
                    elif self.system.remote_wound is not None:
                        # The owning primary runs in another process
                        # (live cluster): ship the wound as a control
                        # message and keep waiting.
                        self.system.remote_wound(holder.gid,
                                                 "global-deadlock")
            del wounded  # Either way the subtransaction keeps waiting.
            return KEEP_WAITING

        manager.timeout_policy = policy

    @staticmethod
    def _conflicting_holders(manager: LockManager,
                             request: LockRequest) -> typing.List:
        holders = manager.holders(request.item)
        return [holder for holder, mode in holders.items()
                if holder is not request.txn
                and (request.mode is LockMode.EXCLUSIVE
                     or mode is LockMode.EXCLUSIVE)]


#: Protocol registry, populated by the concrete modules at import time via
#: :func:`register_protocol`.
PROTOCOLS: typing.Dict[str, typing.Type[ReplicationProtocol]] = {}


def register_protocol(cls: typing.Type[ReplicationProtocol]
                      ) -> typing.Type[ReplicationProtocol]:
    """Class decorator adding a protocol to :data:`PROTOCOLS`."""
    PROTOCOLS[cls.name] = cls
    return cls


def make_protocol(name: str, system: ReplicatedSystem,
                  **kwargs) -> ReplicationProtocol:
    """Instantiate a registered protocol by name."""
    # Import the concrete modules so their registrations run.
    import repro.core.backedge  # noqa: F401
    import repro.core.backedge_t  # noqa: F401
    import repro.core.dag_t  # noqa: F401
    import repro.core.dag_wt  # noqa: F401
    import repro.core.eager  # noqa: F401
    import repro.core.indiscriminate  # noqa: F401
    import repro.core.psl  # noqa: F401

    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown protocol {!r}; available: {}".format(
                name, ", ".join(sorted(PROTOCOLS)))) from None
    return cls(system, **kwargs)
