"""Indiscriminate lazy propagation — the commercial baseline the paper
argues *against* (Sec. 1).

"[Database vendors] provide an option in which each transaction executes
locally, and then asynchronously propagates its updates to replicas
after it commits ... A problem with the lazy replication approaches of
most commercial systems is that they can easily lead to non-serializable
executions. ... Currently, commercial systems use reconciliation rules
(e.g., install the update with the later timestamp) to merge conflicting
updates.  These rules do not guarantee serializability unless the
updates are commutative."

This protocol does exactly that: after a local commit, the updates are
sent directly to every replica site and applied in arrival order, with
an optional last-writer-wins (Thomas write rule) reconciliation on the
origin commit timestamp.  It exists so the reproduction can *measure*
the anomalies (Example 1.1 at workload scale) that DAG(WT)/DAG(T)/
BackEdge are designed to eliminate — run it with
``strict_serializability=False``.
"""

from __future__ import annotations

import typing

from repro.core.base import (
    ReplicatedSystem,
    ReplicationProtocol,
    Site,
    register_protocol,
)
from repro.errors import LockTimeout, TransactionAborted
from repro.network.message import Message, MessageType
from repro.sim.events import Interrupt
from repro.storage.locks import LockMode
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@register_protocol
class IndiscriminateProtocol(ReplicationProtocol):
    """Commercial-style lazy propagation without ordering control."""

    name = "indiscriminate"
    requires_dag = False

    def __init__(self, system: ReplicatedSystem,
                 reconcile: bool = True):
        super().__init__(system)
        #: Last-writer-wins reconciliation (Thomas write rule) on the
        #: origin commit timestamp; without it, updates apply in raw
        #: arrival order and replicas need not even converge.
        self.reconcile = reconcile
        #: Per site: item -> (commit_time, gid) of the newest applied
        #: update (reconciliation state).
        self._applied: typing.List[typing.Dict[ItemId, tuple]] = [
            dict() for _ in range(system.placement.n_sites)]

    def setup(self) -> None:
        for site in self.system.local_sites:
            self.install_lazy_timeout_policy(site.engine.locks)
            self.network.set_handler(site.site_id, self._make_handler(site))

    def _make_handler(self, site: Site):
        def handler(message: Message) -> None:
            self.env.process(self._apply_secondary(site, message))
        return handler

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        txn = site.engine.begin(spec.gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        try:
            yield from self._local_operations(site, txn, spec)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            cause = exc.cause
            reason = cause.reason if isinstance(
                cause, TransactionAborted) else str(cause)
            self._abort_primary(site, txn, reason)
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = {item: value for item, value in txn.writes.items()
                      if self.placement.is_replicated(item)}
        expected: typing.Set[SiteId] = set()
        for item in replicated:
            expected |= self.placement.replica_sites(item)
        self.system.notify("primary_commit", gid=spec.gid, site=site_id,
                           time=self.env.now, expected_replicas=expected)
        # Indiscriminate: straight to every replica holder, no ordering.
        for replica in sorted(expected):
            relevant = {item: value
                        for item, value in replicated.items()
                        if replica in self.placement.replica_sites(item)}
            self.network.send(MessageType.SECONDARY, site_id, replica,
                              gid=spec.gid, writes=relevant,
                              commit_time=self.env.now)

    def _apply_secondary(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid: GlobalTransactionId = message.payload["gid"]
        writes = message.payload["writes"]
        stamp = (message.payload["commit_time"], gid)
        applied = self._applied[site.site_id]

        def is_stale(item) -> bool:
            if not self.reconcile:
                return False
            return not applied.get(item, (-1.0, None)) < stamp

        items = [item for item in sorted(writes) if not is_stale(item)]
        if not items:
            return
        txn = site.engine.begin(gid, SubtransactionKind.SECONDARY)
        for item in items:
            # Lock first, then re-check staleness (the Thomas write
            # rule): a newer update may have landed during the wait.
            yield site.engine.locks.acquire(txn, item, LockMode.EXCLUSIVE)
            if is_stale(item):
                continue
            yield from site.engine.write(txn, item, writes[item])
            yield from site.work(self.config.cpu_apply_write)
        if not txn.writes:
            site.engine.abort(txn)  # Everything lost reconciliation.
            return
        yield from site.work(self.config.cpu_commit)
        site.engine.commit(txn)
        for item in txn.writes:
            applied[item] = stamp
        self.system.notify("replica_commit", gid=gid, site=site.site_id,
                           time=self.env.now)
