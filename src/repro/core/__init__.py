"""The paper's update-propagation protocols.

- :mod:`repro.core.timestamps` — DAG(T)'s vector timestamps (Defs. 3.1-3.3,
  epoch extension of Sec. 3.3).
- :mod:`repro.core.base` — the replicated system assembly and the protocol
  interface shared by all protocols.
- :mod:`repro.core.dag_wt` — DAG(WT), Sec. 2.
- :mod:`repro.core.dag_t` — DAG(T), Sec. 3.
- :mod:`repro.core.backedge` — BackEdge, Sec. 4 (extension of DAG(WT); the
  chain variant of Sec. 5.1 is the default used in the performance study).
- :mod:`repro.core.psl` — the lazy primary-site-locking baseline, Sec. 5.1.
- :mod:`repro.core.eager` — a classic eager read-one/write-all 2PC
  baseline, used for ablation benchmarks.
"""

from repro.core.backedge import BackEdgeProtocol
from repro.core.backedge_t import BackEdgeTProtocol
from repro.core.base import (
    PROTOCOLS,
    ReplicatedSystem,
    ReplicationProtocol,
    SystemConfig,
    make_protocol,
)
from repro.core.dag_t import DagTProtocol
from repro.core.dag_wt import DagWtProtocol
from repro.core.eager import EagerProtocol
from repro.core.indiscriminate import IndiscriminateProtocol
from repro.core.psl import PrimarySiteLockingProtocol
from repro.core.timestamps import SiteTuple, VectorTimestamp

__all__ = [
    "BackEdgeProtocol",
    "BackEdgeTProtocol",
    "DagTProtocol",
    "DagWtProtocol",
    "EagerProtocol",
    "IndiscriminateProtocol",
    "PROTOCOLS",
    "PrimarySiteLockingProtocol",
    "ReplicatedSystem",
    "ReplicationProtocol",
    "SiteTuple",
    "SystemConfig",
    "VectorTimestamp",
    "make_protocol",
]
