"""The DAG(WT) protocol — "DAG Without Timestamps" (paper Sec. 2).

Updates propagate along the edges of a tree ``T`` derived from the (DAG)
copy graph.  At each site a single queue processor commits incoming
secondary subtransactions in FIFO arrival order and forwards them — in
commit order, atomically with commit — to the site's *relevant* tree
children (a child is relevant if its subtree contains a replica of an
updated item).

Secondary subtransactions are never chosen as deadlock victims: on a lock
wait timeout they wound a conflicting primary and keep waiting, so they
eventually commit (the fairness requirement of Sec. 2).
"""

from __future__ import annotations

import collections
import typing

from repro.core.base import (
    ReplicatedSystem,
    ReplicationProtocol,
    Site,
    register_protocol,
)
from repro.errors import LockTimeout, TransactionAborted
from repro.graph.tree import PropagationTree, build_propagation_tree
from repro.network.message import Message, MessageType
from repro.sim.events import AnyOf, Interrupt
from repro.sim.resources import Mailbox
from repro.storage.transaction import Transaction
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@register_protocol
class DagWtProtocol(ReplicationProtocol):
    """Lazy propagation along a propagation tree (Sec. 2)."""

    name = "dag_wt"
    requires_dag = True

    #: Maximum non-conflicting secondaries one site applies concurrently
    #: (a per-process scheduling knob; the live server copies
    #: ``spec.apply_workers`` here).  ``1`` keeps the paper's strictly
    #: serial queue processor.  With more workers, each incoming update
    #: is partitioned by *full write-set* intersection: updates whose
    #: write sets are disjoint commute (they touch different items and
    #: forward along child channels for different items), so they may
    #: commit in either order; updates that share any written item stay
    #: in FIFO arrival order — both locally and, because commit and
    #: forward are atomic, on every child channel.
    apply_workers: int = 1

    def __init__(self, system: ReplicatedSystem,
                 tree: typing.Optional[PropagationTree] = None,
                 prefer_chain: bool = False):
        super().__init__(system)
        self._prefer_chain = prefer_chain
        if tree is None:
            tree = self._default_tree(prefer_chain)
        self.tree = tree
        #: Secondaries whose origin epoch differed from ours at apply
        #: time (diagnostic — correctness rests on the current-placement
        #: relevance filter, not on the stamp).
        self.epoch_skew = 0
        #: One incoming queue per site (each site has at most one tree
        #: parent, so a single FIFO mailbox suffices).
        self._queues: typing.Dict[SiteId, Mailbox] = {
            site.site_id: Mailbox(self.env,
                                  name="wt-queue-s{}".format(site.site_id))
            for site in system.local_sites}

    def _default_tree(self, prefer_chain: bool) -> PropagationTree:
        return build_propagation_tree(self.system.copy_graph,
                                      prefer_chain=prefer_chain)

    def on_placement_change(self) -> None:
        """Re-derive the propagation tree for the new epoch's copy
        graph.  An explicitly injected tree cannot survive a placement
        change, so the default construction takes over."""
        super().on_placement_change()
        self.tree = self._default_tree(self._prefer_chain)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self) -> None:
        for site in self.system.local_sites:
            self.install_lazy_timeout_policy(site.engine.locks)
            self.network.set_handler(site.site_id, self._make_handler(site))
            self.env.process(self._queue_processor(site))

    def _make_handler(self, site: Site):
        def handler(message: Message) -> None:
            self._queues[site.site_id].put(message)
        return handler

    # ------------------------------------------------------------------
    # Primary subtransactions
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        txn = site.engine.begin(spec.gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        try:
            yield from self._local_operations(site, txn, spec)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            self._abort_primary(site, txn, _wound_reason(exc))
        # Commit + forward happen in one simulation step: atomic with
        # respect to other commits at this site (Sec. 2's requirement).
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = self._replicated_writes(txn)
        self.system.notify(
            "primary_commit", gid=txn.gid, site=site_id, time=self.env.now,
            expected_replicas=self._expected_replicas(replicated))
        self._forward(site_id, spec.gid, replicated)

    def _replicated_writes(self, txn: Transaction
                           ) -> typing.Dict[ItemId, typing.Any]:
        return {item: value for item, value in txn.writes.items()
                if self.placement.is_replicated(item)}

    def _expected_replicas(self, writes: typing.Mapping[ItemId, typing.Any]
                           ) -> typing.Set[SiteId]:
        sites: typing.Set[SiteId] = set()
        for item in writes:
            sites |= self.placement.replica_sites(item)
        return sites

    # ------------------------------------------------------------------
    # Propagation along the tree
    # ------------------------------------------------------------------

    def _forward(self, from_site: SiteId, gid: GlobalTransactionId,
                 writes: typing.Mapping[ItemId, typing.Any]) -> None:
        """Forward a secondary subtransaction to relevant tree children."""
        if not writes:
            return
        for child in self.tree.children(from_site):
            if self._child_is_relevant(child, writes):
                self.network.send(MessageType.SECONDARY, from_site, child,
                                  gid=gid, writes=dict(writes),
                                  epoch=self.system.epoch)

    def _child_is_relevant(self, child: SiteId,
                           writes: typing.Mapping[ItemId, typing.Any]
                           ) -> bool:
        """Sec. 2: a child is relevant if it or a descendant holds a
        replica of an updated item."""
        subtree = self.tree.subtree(child)
        return any(self.placement.replica_sites(item) & subtree
                   for item in writes)

    # ------------------------------------------------------------------
    # Secondary subtransactions
    # ------------------------------------------------------------------

    def _queue_processor(self, site: Site):
        """Commit incoming secondaries in FIFO order, forward in commit
        order (one at a time, Sec. 3.2.3's simplification shared here).

        With ``apply_workers > 1`` the serial loop is replaced by the
        conflict-aware scheduler below; the serial loop is the
        degenerate one-worker case and stays the default."""
        queue = self._queues[site.site_id]
        if int(getattr(self, "apply_workers", 1)) > 1:
            yield from self._parallel_queue_processor(site, queue)
            return
        while True:
            message = yield queue.get()
            yield from site.work(self.config.cpu_message)
            yield from self._process_message(site, message)

    def _apply_one(self, site: Site, message: Message):
        """One queued message, start to finish (worker body — identical
        to one iteration of the serial loop)."""
        yield from site.work(self.config.cpu_message)
        yield from self._process_message(site, message)

    def _parallel_queue_processor(self, site: Site, queue: Mailbox):
        """Conflict-aware apply scheduler (``apply_workers > 1``).

        Partitioning rule: two messages conflict iff their *full* write
        sets intersect (not just the locally-replicated items — child
        forwarding order for an item this site does not hold must still
        follow commit order).  Non-conflicting messages run on up to
        ``apply_workers`` concurrent worker processes; a message whose
        write set intersects any running or earlier-queued write set
        waits, so every conflicting pair commits — and forwards — in
        FIFO arrival order.  Non-``SECONDARY`` messages (BackEdge
        control traffic) are exclusive barriers: they wait for the site
        to go idle and nothing overtakes them.
        """
        workers = int(self.apply_workers)
        lookahead = max(4 * workers, 8)
        pending: "collections.deque[Message]" = collections.deque()
        active: typing.Dict[typing.Any, typing.Optional[
            typing.FrozenSet[ItemId]]] = {}

        def write_set(message: Message
                      ) -> typing.Optional[typing.FrozenSet[ItemId]]:
            if message.msg_type is not MessageType.SECONDARY:
                return None  # exclusive barrier
            return frozenset(message.payload.get("writes", ()))

        def pump() -> None:
            if any(wset is None for wset in active.values()):
                return  # a barrier is running: the site is exclusive
            blocked: typing.Set[ItemId] = set()
            for message in list(pending):
                if len(active) >= workers:
                    return
                wset = write_set(message)
                if wset is None:
                    if not active and not blocked:
                        pending.remove(message)
                        active[self.env.process(
                            self._apply_one(site, message))] = None
                    return  # nothing may overtake a barrier
                if blocked & wset or any(
                        aset and (aset & wset)
                        for aset in active.values()):
                    # Conflicts with a running or earlier update: keep
                    # FIFO.  Later disjoint messages may still start.
                    blocked |= wset
                    continue
                pending.remove(message)
                active[self.env.process(
                    self._apply_one(site, message))] = wset

        get_event = None
        while True:
            if get_event is None and len(pending) < lookahead:
                get_event = queue.get()
            waits = ([get_event] if get_event is not None else []) \
                + list(active)
            yield AnyOf(self.env, waits)
            if get_event is not None and get_event.triggered:
                pending.append(get_event.value)
                get_event = None
            for proc in [p for p in active if p.triggered]:
                del active[proc]
            pump()

    def _process_message(self, site: Site, message: Message):
        """Handle one queued message.  Subclasses extend (BackEdge)."""
        if message.msg_type is MessageType.SECONDARY:
            yield from self._apply_secondary(site, message)
        else:
            raise TransactionAborted(
                message.payload.get("gid"),
                "unexpected message {} at s{}".format(
                    message.msg_type, site.site_id))

    def _apply_secondary(self, site: Site, message: Message):
        gid = message.payload["gid"]
        writes = message.payload["writes"]
        origin_epoch = message.payload.get("epoch")
        if origin_epoch is not None and origin_epoch != self.system.epoch:
            self.epoch_skew += 1
        # The has_applied filter makes application idempotent: the live
        # runtime's transport is at-least-once and its catch-up replies
        # can land while the same update sits in this queue.  Under the
        # simulator's exactly-once delivery it never filters anything.
        local_items = sorted(
            item for item in writes
            if site.site_id in self.placement.replica_sites(item)
            and not site.engine.has_applied(item, gid))
        if local_items:
            txn = site.engine.begin(gid, SubtransactionKind.SECONDARY)
            for item in local_items:
                # Secondaries keep waiting on conflicts (the timeout
                # policy wounds primaries); they never abort.
                yield from site.engine.write(txn, item, writes[item])
                yield from site.work(self.config.cpu_apply_write)
            yield from site.work(self.config.cpu_commit)
            site.engine.commit(txn)
            self.system.notify("replica_commit", gid=gid,
                               site=site.site_id, time=self.env.now)
        # Forward (in commit order — this processor is the only secondary
        # committer and does not yield between commit and forward).
        self._forward(site.site_id, gid, writes)


def _wound_reason(interrupt: Interrupt) -> str:
    cause = interrupt.cause
    if isinstance(cause, TransactionAborted):
        return cause.reason
    return str(cause)
