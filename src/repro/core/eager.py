"""Classic eager (read-one / write-all + 2PC) replication baseline.

Not one of the paper's protocols — the paper's Sec. 1 motivates lazy
propagation by the poor scaling of exactly this scheme ("deadlock
probability is proportional to the fourth power of the transaction
size").  We implement it for the ablation benchmarks.

Semantics: reads use any local copy; every write is applied synchronously
to the primary copy *and* all replicas (X locks held everywhere); commit
runs two-phase commit across the touched replica sites.
"""

from __future__ import annotations

import itertools
import typing

from repro.core.base import (
    ReplicatedSystem,
    ReplicationProtocol,
    Site,
    register_protocol,
)
from repro.errors import LockTimeout, PlacementError
from repro.network.message import Message, MessageType
from repro.sim.events import Event, Interrupt
from repro.storage.transaction import Transaction, TransactionStatus
from repro.types import (
    GlobalTransactionId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


@register_protocol
class EagerProtocol(ReplicationProtocol):
    """Eager write-all replication with two-phase commit."""

    name = "eager"
    requires_dag = False

    def __init__(self, system: ReplicatedSystem):
        super().__init__(system)
        n = system.placement.n_sites
        #: Replica side: gid -> proxy transaction applying remote writes.
        self._proxies: typing.List[typing.Dict[GlobalTransactionId,
                                               Transaction]] = [
            dict() for _ in range(n)]
        #: Origin side: request-id -> ack event.
        self._pending: typing.List[typing.Dict[int, Event]] = [
            dict() for _ in range(n)]
        #: Coordinator side: (gid, participant) -> vote event.
        self._vote_events: typing.Dict[typing.Tuple, Event] = {}
        #: Replica side: gids globally aborted while a proxy write was
        #: still waiting for a lock (resolved by the writer itself).
        self._aborted: typing.List[set] = [set() for _ in range(n)]
        self._request_ids = itertools.count(1)

    def setup(self) -> None:
        for site in self.system.local_sites:
            self.network.set_handler(site.site_id, self._make_handler(site))

    def _make_handler(self, site: Site):
        def handler(message: Message) -> None:
            if message.msg_type is MessageType.EAGER_WRITE:
                self.env.process(self._serve_write(site, message))
            elif message.msg_type is MessageType.EAGER_WRITE_DONE:
                event = self._pending[site.site_id].pop(
                    message.payload["request_id"], None)
                if event is not None:
                    event.succeed(bool(message.payload["ok"]))
            elif message.msg_type is MessageType.PREPARE:
                self.env.process(self._serve_prepare(site, message))
            elif message.msg_type is MessageType.VOTE:
                # Succeed but do NOT pop: the coordinator pops after
                # consuming the value (popping here would lose a vote
                # that lands while it awaits another participant).
                event = self._vote_events.get(
                    (message.payload["gid"], message.src))
                if event is not None and not event.triggered:
                    event.succeed(bool(message.payload["commit"]))
            elif message.msg_type is MessageType.DECISION:
                self.env.process(self._serve_decision(site, message))
            else:  # pragma: no cover - defensive
                self.network.dead_letters.append(message)
        return handler

    # ------------------------------------------------------------------
    # Primary transactions
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        gid = spec.gid
        txn = site.engine.begin(gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        participants: typing.Set[SiteId] = set()
        try:
            for index, op in enumerate(spec.operations):
                if op.is_read:
                    # Read-one: any local copy is current under eager
                    # write-all locking.
                    yield from site.engine.read(txn, op.item)
                else:
                    if self.placement.primary_site(op.item) != site_id:
                        raise PlacementError(
                            "eager: update of non-primary copy of {} at "
                            "s{}".format(op.item, site_id))
                    value = self._write_value(gid, index)
                    yield from site.engine.write(txn, op.item, value)
                    yield from self._write_replicas(
                        site, txn, op.item, value, participants)
                yield from site.work(self.config.cpu_per_op)
            # Two-phase commit across the replica sites we wrote.
            ok = yield from self._collect_votes(site_id, gid, participants)
            if not ok:
                raise LockTimeout(gid, "eager-participant")
            txn.shielded = True
            for participant in sorted(participants):
                self.network.send(MessageType.DECISION, site_id,
                                  participant, gid=gid, commit=True)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._global_abort(site_id, gid, participants)
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            self._global_abort(site_id, gid, participants)
            self._abort_primary(site, txn, str(exc.cause))
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = {item for item in txn.writes
                      if self.placement.is_replicated(item)}
        expected: typing.Set[SiteId] = set()
        for item in replicated:
            expected |= self.placement.replica_sites(item)
        self.system.notify("primary_commit", gid=gid, site=site_id,
                           time=self.env.now, expected_replicas=expected)

    def _write_replicas(self, site: Site, txn: Transaction, item, value,
                        participants: typing.Set[SiteId]):
        """Synchronously apply a write at every replica site."""
        replicas = sorted(self.placement.replica_sites(item))
        if not replicas:
            return
        events = []
        for replica in replicas:
            request_id = next(self._request_ids)
            event = Event(self.env)
            self._pending[site.site_id][request_id] = event
            self.network.send(MessageType.EAGER_WRITE, site.site_id,
                              replica, gid=txn.gid, item=item, value=value,
                              request_id=request_id)
            events.append(event)
            participants.add(replica)
        for event in events:
            ok = yield event
            yield from site.work(self.config.cpu_message)
            if not ok:
                raise LockTimeout(txn.gid, item)

    def _collect_votes(self, origin: SiteId, gid: GlobalTransactionId,
                       participants: typing.Set[SiteId]):
        for participant in sorted(participants):
            self._vote_events[(gid, participant)] = Event(self.env)
            self.network.send(MessageType.PREPARE, origin, participant,
                              gid=gid)
        all_ok = True
        for participant in sorted(participants):
            event = self._vote_events.get((gid, participant))
            if event is None:  # pragma: no cover - defensive
                all_ok = False
                continue
            vote = yield event
            self._vote_events.pop((gid, participant), None)
            all_ok = all_ok and vote
        return all_ok

    def _global_abort(self, origin: SiteId, gid: GlobalTransactionId,
                      participants: typing.Set[SiteId]) -> None:
        for participant in sorted(participants):
            self._vote_events.pop((gid, participant), None)
            self.network.send(MessageType.DECISION, origin, participant,
                              gid=gid, commit=False)

    # ------------------------------------------------------------------
    # Replica-side service
    # ------------------------------------------------------------------

    def _serve_write(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        proxies = self._proxies[site.site_id]
        proxy = proxies.get(gid)
        if proxy is None or proxy.is_finished:
            proxy = site.engine.begin(gid, SubtransactionKind.SECONDARY)
            proxies[gid] = proxy
        ok = True
        try:
            yield from site.engine.write(proxy, message.payload["item"],
                                         message.payload["value"])
        except LockTimeout:
            ok = False
        if gid in self._aborted[site.site_id]:
            # A global abort landed while this write was waiting: the
            # decision handler left the proxy to us — clean it up here.
            self._aborted[site.site_id].discard(gid)
            self._proxies[site.site_id].pop(gid, None)
            site.engine.abort(proxy)
            ok = False
        elif ok:
            yield from site.work(self.config.cpu_apply_write)
        self.network.send(MessageType.EAGER_WRITE_DONE, site.site_id,
                          message.src,
                          request_id=message.payload["request_id"],
                          ok=ok)

    def _serve_prepare(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        proxy = self._proxies[site.site_id].get(gid)
        ready = proxy is not None and \
            proxy.status is TransactionStatus.ACTIVE
        if ready:
            site.engine.prepare(proxy)
        self.network.send(MessageType.VOTE, site.site_id, message.src,
                          gid=gid, commit=ready)

    def _serve_decision(self, site: Site, message: Message):
        yield from site.work(self.config.cpu_message)
        gid = message.payload["gid"]
        commit = bool(message.payload["commit"])
        proxy = self._proxies[site.site_id].get(gid)
        if proxy is None or proxy.is_finished:
            self._proxies[site.site_id].pop(gid, None)
            return
        if commit:
            self._proxies[site.site_id].pop(gid, None)
            yield from site.work(self.config.cpu_commit)
            site.engine.commit(proxy)
            self.system.notify("replica_commit", gid=gid,
                               site=site.site_id, time=self.env.now)
        elif self._has_pending_wait(site, proxy):
            # A proxy write is still waiting on a lock: mark the gid and
            # let the writer clean up (aborting here would strand it).
            self._aborted[site.site_id].add(gid)
        else:
            self._proxies[site.site_id].pop(gid, None)
            site.engine.abort(proxy)

    @staticmethod
    def _has_pending_wait(site: Site, proxy: Transaction) -> bool:
        """Whether ``proxy`` has an outstanding queued lock request."""
        return any(request.txn is proxy
                   for request in site.engine.locks.waiting_requests())
