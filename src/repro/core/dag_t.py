"""The DAG(T) protocol — "DAG with Timestamps" (paper Sec. 3).

Updates travel directly along copy-graph edges.  Each site keeps one
incoming queue per copy-graph parent and executes, one at a time, the
secondary subtransaction with the minimum timestamp among the queue heads
— but only once *every* queue is non-empty (Sec. 3.2.3).  Progress is
guaranteed by epoch numbers incremented periodically at source sites and
by dummy subtransactions sent along idle edges (Sec. 3.3).

Site timestamp bookkeeping (Sec. 3.2.1):

- ``TS(site)`` is the concatenation of the timestamp of the last committed
  secondary subtransaction and the site's own tuple ``(site, LTS)``;
- a committing primary increments ``LTS`` and takes ``TS(site)`` as its
  timestamp (Sec. 3.2.2);
- a committing secondary ``Ti`` sets the base to ``TS(Ti)`` (Sec. 3.2.3).
"""

from __future__ import annotations

import collections
import typing

from repro.core.base import (
    ReplicatedSystem,
    ReplicationProtocol,
    Site,
    register_protocol,
)
from repro.core.timestamps import SiteTuple, VectorTimestamp
from repro.errors import (
    ConfigurationError,
    LockTimeout,
    TransactionAborted,
)
from repro.network.message import Message, MessageType
from repro.sim.events import Event, Interrupt
from repro.storage.transaction import Transaction
from repro.types import (
    GlobalTransactionId,
    ItemId,
    SiteId,
    SubtransactionKind,
    TransactionSpec,
)


class _SiteClock:
    """Per-site DAG(T) timestamp state.

    Timestamps use the site's *rank* in the topological total order of
    Sec. 3.1 (``s1 < s2 < ...``), not its raw identifier — the total order
    must be consistent with the DAG for the concatenation invariant of
    Sec. 3.2.3 to hold.
    """

    __slots__ = ("site_id", "rank", "counter", "base", "epoch")

    def __init__(self, site_id: SiteId, rank: int):
        self.site_id = site_id
        self.rank = rank
        #: ``LTS``: number of primaries committed here (Sec. 3.1).
        self.counter = 0
        #: Timestamp of the last committed secondary (empty initially).
        self.base = VectorTimestamp()
        #: Current epoch (Sec. 3.3).
        self.epoch = 0

    def site_timestamp(self) -> VectorTimestamp:
        """``TS(site)`` = base concatenated with the site's own tuple."""
        return self.base.with_epoch(self.epoch).concat(
            SiteTuple(self.rank, self.counter))

    def on_primary_commit(self) -> VectorTimestamp:
        """Sec. 3.2.2 steps 1-2: bump ``LTS``, return the new TS."""
        self.counter += 1
        return self.site_timestamp()

    def on_secondary_commit(self, ts: VectorTimestamp) -> None:
        """Sec. 3.2.3: adopt the committed secondary's timestamp."""
        self.base = ts
        self.epoch = ts.epoch


@register_protocol
class DagTProtocol(ReplicationProtocol):
    """Lazy propagation along copy-graph edges ordered by timestamps."""

    name = "dag_t"
    requires_dag = True

    def __init__(self, system: ReplicatedSystem, graph=None):
        super().__init__(system)
        #: The DAG the lazy machinery runs on.  Defaults to the system's
        #: copy graph; the BackEdge-over-DAG(T) extension passes the copy
        #: graph minus its backedges.
        self.graph = graph if graph is not None else system.copy_graph
        if not self.graph.is_dag():
            raise ConfigurationError(
                "{}: propagation graph must be a DAG; found cycle {}"
                .format(self.name, self.graph.find_cycle()))
        graph = self.graph
        order = graph.topological_order()
        #: Rank of each site in the Sec. 3.1 total order.
        self.ranks = {site_id: rank for rank, site_id in enumerate(order)}
        self.clocks = {site_id: _SiteClock(site_id, self.ranks[site_id])
                       for site_id in graph.sites}
        #: site -> parent -> FIFO deque of pending messages.
        self._queues: typing.Dict[SiteId, typing.Dict[
            SiteId, typing.Deque[Message]]] = {
            site_id: {parent: collections.deque()
                      for parent in sorted(graph.parents(site_id))}
            for site_id in graph.sites}
        #: Pending "all queues non-empty" events per site.
        self._ready_events: typing.Dict[SiteId, typing.Optional[Event]] = {
            site_id: None for site_id in graph.sites}
        #: Last time anything was sent along each copy-graph edge (drives
        #: dummy generation).
        self._last_sent: typing.Dict[typing.Tuple[SiteId, SiteId], float] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self) -> None:
        graph = self.graph
        local = set(self.system.local_site_ids)
        for site in self.system.local_sites:
            site_id = site.site_id
            self.install_lazy_timeout_policy(site.engine.locks)
            self.network.set_handler(site_id, self._make_handler(site_id))
            if graph.parents(site_id):
                self.env.process(self._queue_processor(site))
            if graph.children(site_id):
                self.env.process(self._heartbeat_loop(site_id))
        for source in graph.sources():
            if source in local and graph.children(source):
                self.env.process(self._epoch_loop(source))

    def _make_handler(self, site_id: SiteId):
        def handler(message: Message) -> None:
            self._queues[site_id][message.src].append(message)
            self._check_ready(site_id)
        return handler

    # ------------------------------------------------------------------
    # Primary subtransactions (Sec. 3.2.2)
    # ------------------------------------------------------------------

    def run_transaction(self, site_id: SiteId, spec: TransactionSpec,
                        process):
        site = self._site(site_id)
        yield from self._txn_setup(site)
        txn = site.engine.begin(spec.gid, SubtransactionKind.PRIMARY,
                                process=process)
        self.system.register_primary(txn)
        try:
            yield from self._local_operations(site, txn, spec)
            yield from site.work(self.config.cpu_commit)
        except LockTimeout as exc:
            self._abort_primary(site, txn, exc.reason)
        except Interrupt as exc:
            cause = exc.cause
            reason = cause.reason if isinstance(
                cause, TransactionAborted) else str(cause)
            self._abort_primary(site, txn, reason)
        # Steps 1-3 of Sec. 3.2.2, atomic within this simulation step
        # (the "critical section" of the paper).
        timestamp = self.clocks[site_id].on_primary_commit()
        site.engine.commit(txn)
        self.system.unregister_primary(txn)
        replicated = {item: value for item, value in txn.writes.items()
                      if self.placement.is_replicated(item)}
        self.system.notify(
            "primary_commit", gid=txn.gid, site=site_id, time=self.env.now,
            expected_replicas=self._expected_replicas(replicated))
        self._schedule_secondaries(site_id, spec.gid, replicated, timestamp)

    def _expected_replicas(self, writes: typing.Mapping[ItemId, typing.Any]
                           ) -> typing.Set[SiteId]:
        sites: typing.Set[SiteId] = set()
        for item in writes:
            sites |= self.placement.replica_sites(item)
        return sites

    def _schedule_secondaries(self, site_id: SiteId,
                              gid: GlobalTransactionId,
                              writes: typing.Mapping[ItemId, typing.Any],
                              timestamp: VectorTimestamp) -> None:
        """Sec. 3.2.2 step 3: append to relevant children's queues.

        In DAG(T) every replica holder is a direct copy-graph child, so
        updates travel one hop."""
        for child in sorted(self._expected_replicas(writes)):
            relevant = {item: value for item, value in writes.items()
                        if child in self.placement.replica_sites(item)}
            self.network.send(MessageType.SECONDARY, site_id, child,
                              gid=gid, writes=relevant, ts=timestamp)
            self._last_sent[(site_id, child)] = self.env.now

    # ------------------------------------------------------------------
    # Secondary subtransactions (Sec. 3.2.3)
    # ------------------------------------------------------------------

    def _check_ready(self, site_id: SiteId) -> None:
        event = self._ready_events[site_id]
        if event is None:
            return
        if all(queue for queue in self._queues[site_id].values()):
            self._ready_events[site_id] = None
            event.succeed()

    def _wait_all_queues(self, site_id: SiteId) -> Event:
        event = Event(self.env)
        if all(queue for queue in self._queues[site_id].values()):
            event.succeed()
        else:
            self._ready_events[site_id] = event
        return event

    def _pop_minimum(self, site_id: SiteId) -> Message:
        """Pop the queue-head message with the minimum timestamp (ties
        broken by parent site id, deterministically)."""
        queues = self._queues[site_id]
        best_parent = min(
            queues, key=lambda parent: (queues[parent][0].payload["ts"],
                                        parent))
        return queues[best_parent].popleft()

    def _queue_processor(self, site: Site):
        site_id = site.site_id
        while True:
            yield self._wait_all_queues(site_id)
            message = self._pop_minimum(site_id)
            yield from site.work(self.config.cpu_message)
            timestamp = message.payload["ts"]
            if message.msg_type is MessageType.DUMMY:
                # Just push the site timestamp/epoch forward (Sec. 3.3).
                self.clocks[site_id].on_secondary_commit(timestamp)
                self.system.notify("timestamp_adopted", site=site_id,
                                   ts=timestamp, gid=None,
                                   time=self.env.now)
                continue
            yield from self._apply_secondary(site, message, timestamp)

    def _apply_secondary(self, site: Site, message: Message,
                         timestamp: VectorTimestamp):
        gid = message.payload["gid"]
        writes = message.payload["writes"]
        txn = site.engine.begin(gid, SubtransactionKind.SECONDARY)
        for item in sorted(writes):
            yield from site.engine.write(txn, item, writes[item])
            yield from site.work(self.config.cpu_apply_write)
        yield from site.work(self.config.cpu_commit)
        # Commit and adopt the timestamp atomically (Sec. 3.2.3).
        site.engine.commit(txn)
        self.clocks[site.site_id].on_secondary_commit(timestamp)
        self.system.notify("timestamp_adopted", site=site.site_id,
                           ts=timestamp, gid=gid, time=self.env.now)
        self.system.notify("replica_commit", gid=gid, site=site.site_id,
                           time=self.env.now)

    # ------------------------------------------------------------------
    # Progress machinery (Sec. 3.3)
    # ------------------------------------------------------------------

    def _heartbeat_loop(self, site_id: SiteId):
        """Send dummy subtransactions along edges idle for a while."""
        interval = self.config.heartbeat_interval
        children = sorted(self.graph.children(site_id))
        while True:
            yield self.env.timeout(interval)
            for child in children:
                last = self._last_sent.get((site_id, child), -interval)
                if self.env.now - last >= interval:
                    self.network.send(
                        MessageType.DUMMY, site_id, child,
                        ts=self.clocks[site_id].site_timestamp())
                    self._last_sent[(site_id, child)] = self.env.now

    def _epoch_loop(self, site_id: SiteId):
        """Sources increment their epoch periodically (same period)."""
        while True:
            yield self.env.timeout(self.config.epoch_interval)
            self.clocks[site_id].epoch += 1
