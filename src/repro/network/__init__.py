"""Simulated network substrate.

The paper assumes "the underlying network delivers messages reliably and in
FIFO order between any two sites" (Sec. 1.1).  :class:`Network` provides
exactly that: per-ordered-pair channels with configurable latency, FIFO
delivery into per-site mailboxes, and message accounting for the
performance study.
"""

from repro.network.channel import Channel
from repro.network.message import Message, MessageType
from repro.network.network import Network

__all__ = ["Channel", "Message", "MessageType", "Network"]
