"""Typed messages exchanged between sites.

Payloads are plain dicts; the message *type* determines which keys are
present.  The conventions per type are documented on
:class:`MessageType`.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

from repro.types import SiteId

_msg_counter = itertools.count(1)


class MessageType(enum.Enum):
    """All message kinds used by the protocols in :mod:`repro.core`.

    Lazy propagation (DAG(WT), DAG(T), BackEdge step 4):

    - ``SECONDARY`` — a committed primary's updates.  Payload:
      ``gid``, ``writes`` (item -> value), ``timestamp`` (DAG(T) only),
      ``origin`` (site the primary ran at), ``commit_time``.
    - ``DUMMY`` — DAG(T) heartbeat carrying only a timestamp (Sec. 3.3).

    BackEdge protocol (Sec. 4.1):

    - ``BACKEDGE`` — a backedge subtransaction sent directly to the
      farthest ancestor.  Payload: ``gid``, ``writes``, ``origin``,
      ``participants`` (the backedge sites).
    - ``SPECIAL`` — the special secondary subtransaction relayed down the
      tree toward the origin.  Payload as ``SECONDARY`` plus
      ``participants``.

    Primary-site locking (Sec. 5.1):

    - ``LOCK_REQUEST`` — remote shared-lock request.  Payload: ``gid``,
      ``item``, ``request_id``.
    - ``LOCK_GRANT`` — grant + current value.  Payload: ``gid``, ``item``,
      ``value``, ``version``, ``request_id``.
    - ``LOCK_DENIED`` — the remote wait timed out at the primary site.
    - ``LOCK_RELEASE`` — release all locks held at the destination on
      behalf of ``gid``.

    Distributed atomic commit (BackEdge step 3, eager baseline):

    - ``PREPARE`` / ``VOTE`` / ``DECISION`` — two-phase commit rounds.
      ``VOTE`` payload has ``commit`` (bool); ``DECISION`` likewise.
    - ``ABORT_SUBTXN`` — roll back the destination's subtransaction of
      ``gid`` (global-deadlock victim cleanup).

    Eager baseline:

    - ``EAGER_WRITE`` — apply a write at a replica within the transaction.
      Payload: ``gid``, ``item``, ``value``, ``request_id``.
    - ``EAGER_WRITE_DONE`` — acknowledgement (or refusal on timeout).

    Cluster runtime control plane (:mod:`repro.cluster`, handled by the
    :class:`SiteServer` rather than by a protocol):

    - ``WOUND`` — wound the primary of ``gid`` registered at the
      destination (the cross-process form of the victim policy's direct
      registry wound).  Payload: ``gid``, ``reason``.
    - ``CATCHUP_REQUEST`` — a rejoining replica asks an item's primary
      site for updates it missed while down.  Payload: ``items``
      (item -> version held locally).
    - ``CATCHUP_REPLY`` — the missed tail per item: current ``value``,
      ``version``, and ``writers`` (the gid lineage of the missed
      versions, oldest first).  Payload: ``items``
      (item -> {value, version, writers}).
    - ``RECONFIG`` — epoch-commit gossip (:mod:`repro.reconfig`): a
      peer that committed epoch ``epoch`` tells the others, closing the
      window where a coordinator dies between commits.  Payload:
      ``epoch``, ``change`` (:class:`repro.reconfig.PlacementChange`
      JSON).  Idempotent at the receiver.
    """

    SECONDARY = "secondary"
    DUMMY = "dummy"
    BACKEDGE = "backedge"
    SPECIAL = "special"
    LOCK_REQUEST = "lock-request"
    LOCK_GRANT = "lock-grant"
    LOCK_DENIED = "lock-denied"
    LOCK_RELEASE = "lock-release"
    PREPARE = "prepare"
    VOTE = "vote"
    DECISION = "decision"
    ABORT_SUBTXN = "abort-subtxn"
    EAGER_WRITE = "eager-write"
    EAGER_WRITE_DONE = "eager-write-done"
    WOUND = "wound"
    CATCHUP_REQUEST = "catchup-request"
    CATCHUP_REPLY = "catchup-reply"
    RECONFIG = "reconfig"


@dataclasses.dataclass
class Message:
    """One network message."""

    msg_type: MessageType
    src: SiteId
    dst: SiteId
    payload: typing.Dict[str, typing.Any]
    msg_id: int = dataclasses.field(
        default_factory=lambda: next(_msg_counter))
    send_time: typing.Optional[float] = None
    deliver_time: typing.Optional[float] = None

    def __repr__(self):
        return "<Msg #{} {} s{}->s{}>".format(
            self.msg_id, self.msg_type.value, self.src, self.dst)
