"""The site-to-site message fabric.

Each site registers a synchronous handler; incoming messages are delivered
to it in channel-FIFO order.  Handlers typically just enqueue into
protocol-level mailboxes or trigger events, so delivery itself never
blocks.
"""

from __future__ import annotations

import collections
import typing

from repro.network.channel import Channel, Perturbation
from repro.network.message import Message, MessageType
from repro.types import SiteId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Network:
    """Reliable FIFO network between ``n_sites`` sites.

    Parameters
    ----------
    env:
        Simulation environment.
    n_sites:
        Number of sites.
    latency:
        Constant one-way latency in simulated seconds, or a zero-arg
        callable sampled per message (FIFO order is preserved regardless).
    """

    def __init__(self, env: "Environment", n_sites: int,
                 latency: typing.Union[float, typing.Callable[[], float]]
                 = 0.00015,
                 perturb: typing.Optional[Perturbation] = None):
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.env = env
        self.n_sites = n_sites
        self.latency = latency
        self.perturb = perturb
        self._handlers: typing.Dict[SiteId, typing.Callable] = {}
        self._channels: typing.Dict[typing.Tuple[SiteId, SiteId],
                                    Channel] = {}
        #: Undeliverable messages (no handler registered) — should stay
        #: empty in a correctly wired system.
        self.dead_letters: typing.List[Message] = []
        #: Message counts by type, for the performance metrics.
        self.sent_by_type: typing.Counter = collections.Counter()
        self.total_sent = 0
        #: When true, every delivered message is appended to
        #: :attr:`delivery_log` (used by the explorer's FIFO oracle;
        #: off by default to keep large experiments lean).
        self.record_deliveries = False
        self.delivery_log: typing.List[Message] = []

    def set_perturbation(self,
                         perturb: typing.Optional[Perturbation]) -> None:
        """Install a delivery-perturbation hook on every channel.

        Applies to already-created channels and to channels created
        later.  The per-channel FIFO clamp still holds, so perturbation
        can delay but never reorder a channel's messages.
        """
        self.perturb = perturb
        for channel in self._channels.values():
            channel._perturb = perturb

    def set_handler(self, site: SiteId,
                    handler: typing.Callable[[Message], None]) -> None:
        """Register ``site``'s synchronous message handler."""
        self._check_site(site)
        self._handlers[site] = handler

    def send(self, msg_type: MessageType, src: SiteId, dst: SiteId,
             **payload) -> Message:
        """Send a message; returns the in-flight :class:`Message`."""
        self._check_site(src)
        self._check_site(dst)
        if src == dst:
            raise ValueError("site s{} sending to itself".format(src))
        message = Message(msg_type, src, dst, payload)
        channel = self._channel(src, dst)
        self.sent_by_type[msg_type] += 1
        self.total_sent += 1
        channel.send(message)
        return message

    def _channel(self, src: SiteId, dst: SiteId) -> Channel:
        key = (src, dst)
        if key not in self._channels:
            self._channels[key] = Channel(
                self.env, src, dst, self.latency,
                lambda msg, site=dst: self._dispatch(site, msg),
                perturb=self.perturb)
        return self._channels[key]

    def _dispatch(self, site: SiteId, message: Message) -> None:
        if self.record_deliveries:
            self.delivery_log.append(message)
        handler = self._handlers.get(site)
        if handler is None:
            self.dead_letters.append(message)
            return
        handler(message)

    def _check_site(self, site: SiteId) -> None:
        if not 0 <= site < self.n_sites:
            raise ValueError("unknown site s{}".format(site))
