"""A reliable FIFO point-to-point channel with latency.

Delivery order is enforced even under variable (jittered) latency by
clamping each message's delivery time to be no earlier than the previous
message's — the FIFO guarantee the paper's protocols rely on.
"""

from __future__ import annotations

import typing

from repro.network.message import Message

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Channel:
    """One direction of a site-to-site link."""

    def __init__(self, env: "Environment", src: int, dst: int,
                 latency: typing.Union[float, typing.Callable[[], float]],
                 deliver: typing.Callable[[Message], None]):
        self.env = env
        self.src = src
        self.dst = dst
        self._latency = latency
        self._deliver = deliver
        self._last_delivery = -float("inf")
        #: Messages sent through this channel.
        self.sent_count = 0

    def latency_sample(self) -> float:
        if callable(self._latency):
            return float(self._latency())
        return float(self._latency)

    def send(self, message: Message) -> None:
        """Schedule FIFO delivery of ``message``."""
        message.send_time = self.env.now
        delay = self.latency_sample()
        if delay < 0:
            raise ValueError("negative latency {!r}".format(delay))
        deliver_at = max(self.env.now + delay, self._last_delivery)
        self._last_delivery = deliver_at
        message.deliver_time = deliver_at
        self.sent_count += 1
        timer = self.env.timeout(deliver_at - self.env.now)
        timer.callbacks.append(lambda _ev, msg=message: self._deliver(msg))
