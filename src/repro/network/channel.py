"""A reliable FIFO point-to-point channel with latency.

Delivery order is enforced even under variable (jittered) latency by
clamping each message's delivery time to be no earlier than the previous
message's — the FIFO guarantee the paper's protocols rely on.
"""

from __future__ import annotations

import collections
import typing

from repro.network.message import Message

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


#: Delivery-perturbation hook: ``(src, dst, seq) -> extra delay`` added on
#: top of the sampled latency for the ``seq``-th message of a channel.
#: The FIFO clamp applies *after* the perturbation, so any non-negative
#: hook is protocol-legal — per-channel delivery order is never violated.
Perturbation = typing.Callable[[int, int, int], float]


class Channel:
    """One direction of a site-to-site link."""

    def __init__(self, env: "Environment", src: int, dst: int,
                 latency: typing.Union[float, typing.Callable[[], float]],
                 deliver: typing.Callable[[Message], None],
                 perturb: typing.Optional[Perturbation] = None):
        self.env = env
        self.src = src
        self.dst = dst
        self._latency = latency
        self._deliver = deliver
        self._perturb = perturb
        self._last_delivery = -float("inf")
        #: In-flight messages in send order; each delivery timer hands
        #: over the *head*, so FIFO order is structural — even a
        #: schedule policy that reorders same-time timer events cannot
        #: reorder a channel's messages.
        self._in_flight: typing.Deque[Message] = collections.deque()
        #: Messages sent through this channel.
        self.sent_count = 0

    def latency_sample(self) -> float:
        if callable(self._latency):
            return float(self._latency())
        return float(self._latency)

    def send(self, message: Message) -> None:
        """Schedule FIFO delivery of ``message``."""
        message.send_time = self.env.now
        delay = self.latency_sample()
        if delay < 0:
            raise ValueError("negative latency {!r}".format(delay))
        if self._perturb is not None:
            extra = float(self._perturb(self.src, self.dst,
                                        self.sent_count))
            if extra > 0:
                delay += extra
        deliver_at = max(self.env.now + delay, self._last_delivery)
        self._last_delivery = deliver_at
        message.deliver_time = deliver_at
        self.sent_count += 1
        self._in_flight.append(message)
        timer = self.env.timeout(deliver_at - self.env.now)
        timer.callbacks.append(self._deliver_head)

    def _deliver_head(self, _event) -> None:
        self._deliver(self._in_flight.popleft())
