"""Online placement reconfiguration (`repro.reconfig`).

An epoch-based membership/placement plane for the live cluster: a
:class:`~repro.reconfig.coordinator.ReconfigCoordinator` drives one
placement change (add-replica, drop-replica, migrate-primary,
remove-site) per epoch transition over the cluster's client plane —
propose → epoch fence (writes on affected items are refused while their
in-flight propagation quiesces) → state transfer of gained copies over
the existing catch-up channel → commit, at which point every site
journals the epoch to its WAL and atomically swaps its placement and
propagation tree.  See docs/RECONFIGURATION.md for the protocol.
"""

from repro.reconfig.change import PlacementChange, ReconfigError
from repro.reconfig.coordinator import ReconfigCoordinator, ReconfigReport

__all__ = [
    "PlacementChange",
    "ReconfigCoordinator",
    "ReconfigError",
    "ReconfigReport",
]
