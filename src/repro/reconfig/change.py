"""The placement-change vocabulary of the reconfiguration plane.

A :class:`PlacementChange` is one epoch transition's worth of placement
edit.  It is pure data — JSON-serializable, applied deterministically by
every site (and by WAL recovery) via :meth:`PlacementChange.apply`, so
the cluster never ships placements over the wire during a transition,
only the change.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import PlacementError, ReproError
from repro.graph.copygraph import CopyGraph
from repro.graph.placement import DataPlacement
from repro.types import ItemId, SiteId

#: Change kinds understood by every site.
CHANGE_KINDS = ("add-replica", "drop-replica", "migrate-primary",
                "remove-site")


class ReconfigError(ReproError):
    """A reconfiguration was invalid or failed to complete."""


@dataclasses.dataclass(frozen=True)
class PlacementChange:
    """One placement edit, applied at an epoch boundary.

    ``kind`` selects the edit; ``item`` names the item (all kinds but
    ``remove-site``); ``site`` names the target site — the new replica
    holder, the replica being dropped, the new primary, or the site
    being removed from the replication plane.
    """

    kind: str
    site: SiteId
    item: typing.Optional[ItemId] = None

    def validate(self) -> "PlacementChange":
        if self.kind not in CHANGE_KINDS:
            raise ReconfigError(
                "unknown change kind {!r} (expected one of {})".format(
                    self.kind, ", ".join(CHANGE_KINDS)))
        if self.kind != "remove-site" and self.item is None:
            raise ReconfigError(
                "{} requires an item".format(self.kind))
        return self

    def apply(self, placement: DataPlacement) -> DataPlacement:
        """The post-transition placement (the input is not mutated).

        Raises :class:`ReconfigError` when the change does not fit the
        placement (unknown item, duplicate replica, primaries left at a
        removed site, ...).
        """
        self.validate()
        result = placement.clone()
        try:
            if self.kind == "add-replica":
                result.add_replica(self.item, self.site)
            elif self.kind == "drop-replica":
                result.drop_replica(self.item, self.site)
            elif self.kind == "migrate-primary":
                result.migrate_primary(self.item, self.site)
            else:  # remove-site
                primaries = result.primary_items_at(self.site)
                if primaries:
                    raise PlacementError(
                        "site s{} still holds {} primary item(s) — "
                        "migrate them first".format(
                            self.site, len(primaries)))
                for item in sorted(result.replica_items_at(self.site)):
                    result.drop_replica(item, self.site)
        except PlacementError as exc:
            raise ReconfigError(str(exc)) from None
        return result

    def affected_items(self, placement: DataPlacement
                       ) -> typing.FrozenSet[ItemId]:
        """Items the epoch fence must quiesce before the swap."""
        if self.kind == "remove-site":
            return frozenset(placement.replica_items_at(self.site))
        return frozenset({self.item})

    def gained_items(self, placement: DataPlacement,
                     site: SiteId) -> typing.FrozenSet[ItemId]:
        """Items ``site`` holds after the change but not before (the
        state-transfer set for that site)."""
        before = placement.items_at(site)
        after = self.apply(placement).items_at(site)
        return frozenset(after - before)

    def check_against(self, placement: DataPlacement,
                      protocol: str = "dag_wt",
                      allow_empty_primaries: bool = False) -> DataPlacement:
        """Full coordinator-side validation; returns the new placement.

        Beyond :meth:`apply`'s structural checks: the induced copy graph
        must stay a DAG for tree-based protocols, and (unless
        ``allow_empty_primaries``) no site may lose its *last* primary
        item — a site with no primaries can no longer originate writes,
        which strands any workload generator still targeting it.
        """
        result = self.apply(placement)
        if protocol != "backedge" and \
                not CopyGraph.from_placement(result).is_dag():
            raise ReconfigError(
                "{} would make the copy graph cyclic (protocol {} "
                "requires a DAG)".format(self.describe(), protocol))
        if not allow_empty_primaries:
            for site in range(placement.n_sites):
                if placement.primary_items_at(site) and \
                        not result.primary_items_at(site):
                    raise ReconfigError(
                        "{} would leave s{} with no primary items"
                        .format(self.describe(), site))
        return result

    def describe(self) -> str:
        if self.kind == "remove-site":
            return "remove-site s{}".format(self.site)
        return "{} item {} -> s{}".format(self.kind, self.item, self.site)

    def to_json(self) -> typing.Dict[str, typing.Any]:
        obj: typing.Dict[str, typing.Any] = {"kind": self.kind,
                                             "site": self.site}
        if self.item is not None:
            obj["item"] = self.item
        return obj

    @classmethod
    def from_json(cls, obj: typing.Mapping[str, typing.Any]
                  ) -> "PlacementChange":
        return cls(kind=str(obj["kind"]), site=int(obj["site"]),
                   item=(int(obj["item"])
                         if obj.get("item") is not None else None)
                   ).validate()


def replay_epochs(placement: DataPlacement,
                  commits: typing.Iterable[typing.Tuple[
                      int, typing.Mapping[str, typing.Any]]],
                  start_epoch: int = 0
                  ) -> typing.Tuple[int, DataPlacement]:
    """Rebuild ``(epoch, placement)`` from WAL epoch-commit records.

    ``commits`` yields ``(epoch, change_json)`` in log order.  Starting
    from the genesis ``placement`` at ``start_epoch``, each committed
    change is re-applied; duplicate records for an already-reached epoch
    are skipped (a site may journal the same commit twice across a
    crash/retry).
    """
    epoch = start_epoch
    current = placement
    for committed_epoch, change_json in commits:
        if committed_epoch <= epoch:
            continue
        current = PlacementChange.from_json(change_json).apply(current)
        epoch = committed_epoch
    return epoch, current
