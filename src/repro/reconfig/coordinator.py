"""The epoch-transition coordinator.

One :class:`ReconfigCoordinator` drives one
:class:`~repro.reconfig.change.PlacementChange` at a time through a live
cluster, entirely over the client plane (it holds no special authority —
any client with the spec can coordinate, and a dead coordinator leaves
nothing that blocks progress):

1. **Heal** — read every member's epoch; if a previous transition died
   between per-site commits, re-drive its commit to the laggards using
   the committed members' recorded last change (peer gossip usually
   closes this gap first; heal makes it certain).
2. **Validate** — :meth:`PlacementChange.check_against` the current
   placement: structure, copy-graph acyclicity (tree protocols), and the
   no-site-loses-its-last-primary rule.
3. **Prepare** — fan ``reconfig_prepare`` to every member: each journals
   the proposal, fences writes on the affected items, creates gained
   copies and starts pulling their state from the current primaries.
4. **Quiesce + transfer** — poll ``versions`` until every affected
   item's committed version agrees across its old *and* new copy sites
   and stays stable for ``settle_polls`` consecutive polls.  A member
   that restarted mid-transition (fence lost — ``reconfig_status`` shows
   no pending epoch) is re-prepared; transfer laggards are re-pulled.
5. **Commit** — fan ``reconfig_commit`` (carrying the change, so even a
   member that lost its prepare can commit) and verify every member
   reports the new epoch.

On timeout the coordinator fans ``reconfig_abort`` and raises — the
cluster stays in the old epoch with no fence left behind.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import typing

from repro.cluster.codec import decode_value
from repro.graph.placement import DataPlacement
from repro.reconfig.change import PlacementChange, ReconfigError
from repro.types import ItemId, SiteId


@dataclasses.dataclass
class ReconfigReport:
    """What one completed epoch transition did, and how long it took."""

    epoch: int
    change: PlacementChange
    prepare_s: float = 0.0
    quiesce_s: float = 0.0
    commit_s: float = 0.0
    polls: int = 0
    re_prepares: int = 0
    re_pulls: int = 0
    healed_sites: typing.List[SiteId] = dataclasses.field(
        default_factory=list)

    @property
    def total_s(self) -> float:
        return self.prepare_s + self.quiesce_s + self.commit_s

    def format(self) -> str:
        lines = [
            "epoch {}: {}".format(self.epoch, self.change.describe()),
            "  prepare {:.3f}s  quiesce {:.3f}s ({} polls)  "
            "commit {:.3f}s  total {:.3f}s".format(
                self.prepare_s, self.quiesce_s, self.polls,
                self.commit_s, self.total_s),
        ]
        if self.re_prepares or self.re_pulls:
            lines.append("  re-prepares {}  re-pulls {}".format(
                self.re_prepares, self.re_pulls))
        if self.healed_sites:
            lines.append("  healed laggards: {}".format(
                ", ".join("s{}".format(s) for s in self.healed_sites)))
        return "\n".join(lines)


class ReconfigCoordinator:
    """Drives epoch transitions over a :class:`ClusterClient`.

    Parameters
    ----------
    client:
        An open :class:`repro.cluster.client.ClusterClient`; its spec's
        epoch is adopted forward as transitions commit.
    poll_interval, settle_polls:
        Quiesce loop: sample ``versions`` every ``poll_interval``
        seconds and require ``settle_polls`` consecutive stable, agreed
        samples before committing.
    timeout:
        Per-transition ceiling; on expiry the transition is aborted
        everywhere and :class:`ReconfigError` raised.
    """

    def __init__(self, client, poll_interval: float = 0.1,
                 settle_polls: int = 2, timeout: float = 30.0,
                 allow_empty_primaries: bool = False):
        self.client = client
        self.poll_interval = poll_interval
        self.settle_polls = max(1, int(settle_polls))
        self.timeout = timeout
        self.allow_empty_primaries = allow_empty_primaries

    @property
    def spec(self):
        return self.client.spec

    def _sites(self) -> typing.List[SiteId]:
        return sorted(self.spec.addresses())

    # ------------------------------------------------------------------
    # Cluster epoch introspection
    # ------------------------------------------------------------------

    async def survey(self) -> typing.Dict[SiteId, typing.Dict]:
        """Every member's ``reconfig_status`` (raises if any member is
        unreachable — reconfiguration needs the full membership)."""
        responses, unreachable = await self.client.try_each(
            "reconfig_status")
        if unreachable:
            raise ReconfigError(
                "cannot reconfigure: unreachable members {}".format(
                    ", ".join("s{}".format(s) for s in unreachable)))
        return responses

    async def current_epoch(self) -> int:
        """The cluster's epoch (max across members after a heal)."""
        statuses = await self.survey()
        return max(status["epoch"] for status in statuses.values())

    async def current_placement(self) -> typing.Tuple[int,
                                                      DataPlacement]:
        """(epoch, placement) as reported by a maximal-epoch member."""
        responses, unreachable = await self.client.try_each("placement")
        if unreachable:
            raise ReconfigError(
                "cannot read placement: unreachable members {}".format(
                    ", ".join("s{}".format(s) for s in unreachable)))
        site, best = max(responses.items(),
                         key=lambda pair: pair[1]["epoch"])
        return int(best["epoch"]), \
            DataPlacement.from_json(best["placement"])

    async def heal(self) -> typing.List[SiteId]:
        """Re-drive a torn previous transition: any member behind the
        maximal epoch gets that epoch's recorded change committed.
        Returns the healed site ids (empty when the epochs agree)."""
        healed: typing.List[SiteId] = []
        while True:
            statuses = await self.survey()
            target = max(status["epoch"] for status in statuses.values())
            laggards = sorted(site for site, status in statuses.items()
                              if status["epoch"] < target)
            if not laggards:
                return healed
            donors = [status for status in statuses.values()
                      if status["epoch"] == target and
                      status.get("last_change")]
            if not donors:
                raise ReconfigError(
                    "members disagree on epoch ({} behind {}) but no "
                    "member recorded the committing change".format(
                        laggards, target))
            change_json = donors[0]["last_change"]
            for site in laggards:
                status = statuses[site]
                # A laggard more than one epoch behind needs the full
                # WAL-recovery path, not a single re-commit.
                if status["epoch"] != target - 1:
                    raise ReconfigError(
                        "s{} is at epoch {}, cluster at {} — too far "
                        "behind to heal online".format(
                            site, status["epoch"], target))
                await self.client.reconfig_commit(site, target,
                                                  change_json)
                healed.append(site)

    # ------------------------------------------------------------------
    # The transition
    # ------------------------------------------------------------------

    async def execute(self, change: PlacementChange) -> ReconfigReport:
        """Drive one placement change to a committed epoch everywhere."""
        change.validate()
        healed = await self.heal()
        epoch, placement = await self.current_placement()
        change.check_against(
            placement, protocol=self.spec.protocol,
            allow_empty_primaries=self.allow_empty_primaries)
        target = epoch + 1
        change_json = change.to_json()
        report = ReconfigReport(epoch=target, change=change,
                                healed_sites=healed)
        deadline = time.monotonic() + self.timeout
        sites = self._sites()

        started = time.monotonic()
        for site in sites:
            await self.client.reconfig_prepare(site, target, change_json)
        report.prepare_s = time.monotonic() - started

        watch = self._watch_sets(change, placement)
        started = time.monotonic()
        try:
            await self._quiesce(target, change_json, watch, report,
                                deadline)
        except ReconfigError:
            await self._abort_everywhere(target)
            raise
        report.quiesce_s = time.monotonic() - started

        started = time.monotonic()
        for site in sites:
            await self.client.reconfig_commit(site, target, change_json)
        await self.client.adopt_epoch(target)
        statuses = await self.survey()
        behind = sorted(site for site, status in statuses.items()
                        if status["epoch"] < target)
        if behind:
            raise ReconfigError(
                "commit fan-out left members behind: {}".format(behind))
        report.commit_s = time.monotonic() - started
        return report

    @staticmethod
    def _watch_sets(change: PlacementChange, placement: DataPlacement
                    ) -> typing.Dict[ItemId, typing.Set[SiteId]]:
        """Per affected item, the sites whose committed versions must
        agree before the swap: every copy site of the old epoch plus
        every copy site of the new one (the transfer targets)."""
        after = change.apply(placement)
        watch: typing.Dict[ItemId, typing.Set[SiteId]] = {}
        for item in change.affected_items(placement):
            old_sites = set(placement.sites_of(item))
            new_sites = set(after.sites_of(item)) if item in after.items \
                else set()
            watch[item] = old_sites | new_sites
        return watch

    async def _quiesce(self, target: int, change_json: typing.Dict,
                       watch: typing.Mapping[ItemId,
                                             typing.Set[SiteId]],
                       report: ReconfigReport, deadline: float) -> None:
        """Wait until every watched item's version agrees and is stable
        across its watch set; re-prepare members whose fence vanished
        (restart mid-transition) and re-pull transfer laggards."""
        stable_streak = 0
        previous: typing.Optional[typing.Dict[ItemId, int]] = None
        while True:
            if time.monotonic() > deadline:
                raise ReconfigError(
                    "epoch {} transition timed out during quiesce "
                    "(watched items: {})".format(
                        target, sorted(watch)))
            statuses = await self.survey()
            for site, status in statuses.items():
                if status["epoch"] >= target:
                    # Gossip/another coordinator already moved this
                    # member; our commit fan-out will be a no-op there.
                    continue
                if status.get("pending_epoch") != target:
                    await self.client.reconfig_prepare(
                        site, target, change_json)
                    report.re_prepares += 1
            responses = await self.client.versions_all()
            versions = {site: decode_value(response["versions"])
                        for site, response in responses.items()}
            agreed: typing.Dict[ItemId, int] = {}
            laggards: typing.Dict[SiteId, typing.List[ItemId]] = {}
            for item, watch_sites in watch.items():
                seen = {site: versions[site][item]
                        for site in watch_sites
                        if item in versions[site]}
                values = set(seen.values())
                if len(values) == 1:
                    agreed[item] = values.pop()
                    continue
                top = max(value for value in values)
                for site, value in seen.items():
                    if value != top:
                        laggards.setdefault(site, []).append(item)
            if not laggards and agreed and previous == agreed:
                stable_streak += 1
                if stable_streak >= self.settle_polls:
                    return
            elif not laggards and not watch:
                return  # nothing to quiesce (no affected items)
            else:
                stable_streak = 0
                for site, items in sorted(laggards.items()):
                    await self.client.reconfig_pull(site, sorted(items))
                    report.re_pulls += 1
            previous = agreed if not laggards else None
            report.polls += 1
            await asyncio.sleep(self.poll_interval)

    async def _abort_everywhere(self, target: int) -> None:
        for site in self._sites():
            try:
                await self.client.reconfig_abort(site, target)
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass
