"""The per-site storage engine.

Models what the paper gets from DataBlitz: an in-memory, hash-indexed item
store with strict 2PL, undo-based aborts, and atomic local commit.  Reads
and writes are *process helpers* — call them as
``value = yield from engine.read(txn, item)`` inside a simulation process,
because lock acquisition may block.

The engine additionally records every committed subtransaction into a
:class:`~repro.storage.history.SiteHistory` so the harness can verify
global serializability after a run.
"""

from __future__ import annotations

import typing

from repro.errors import PlacementError, TransactionAborted
from repro.storage.history import SiteHistory
from repro.storage.items import ItemRecord
from repro.storage.locks import LockManager, LockMode
from repro.storage.log import LogRecordKind
from repro.storage.transaction import Transaction, TransactionStatus
from repro.types import GlobalTransactionId, ItemId, SubtransactionKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class StorageEngine:
    """In-memory database engine for one site.

    Parameters
    ----------
    env:
        Simulation environment.
    site_id:
        This site's index.
    lock_timeout:
        Deadlock timeout interval (simulated seconds); ``None`` disables.
    """

    def __init__(self, env: "Environment", site_id: int,
                 lock_timeout: typing.Optional[float] = 0.050,
                 wal=None):
        self.env = env
        self.site_id = site_id
        self.locks = LockManager(env, timeout=lock_timeout)
        self.history = SiteHistory(site_id)
        self._items: typing.Dict[ItemId, ItemRecord] = {}
        self._active: typing.Set[Transaction] = set()
        #: Optional write-ahead log (see :mod:`repro.storage.log`).
        self.wal = wal
        self._crashed = False

    def attach_wal(self, wal) -> None:
        """Attach a write-ahead log (used by recovery)."""
        self.wal = wal

    def crash(self) -> None:
        """Simulate a site crash: volatile state is lost, the WAL (if
        any) survives.  The engine is unusable afterwards; build a new
        one with :func:`repro.storage.log.recover`."""
        self._crashed = True
        self._items.clear()
        self._active.clear()
        self.history.entries.clear()

    def _log(self, kind, **fields) -> None:
        if self.wal is not None:
            self.wal.append(kind, **fields)

    # ------------------------------------------------------------------
    # Schema / storage management
    # ------------------------------------------------------------------

    def create_item(self, item_id: ItemId, value=0) -> ItemRecord:
        """Install an item copy at this site."""
        if item_id in self._items:
            raise PlacementError(
                "item {} already exists at site {}".format(
                    item_id, self.site_id))
        record = ItemRecord(item_id, value)
        self._items[item_id] = record
        self._log(LogRecordKind.CREATE, item=item_id, value=value,
                  time=self.env.now)
        return record

    def has_item(self, item_id: ItemId) -> bool:
        return item_id in self._items

    def item(self, item_id: ItemId) -> ItemRecord:
        return self._items[item_id]

    def item_ids(self) -> typing.Set[ItemId]:
        return set(self._items)

    @property
    def active_transactions(self) -> typing.FrozenSet[Transaction]:
        return frozenset(self._active)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, gid: GlobalTransactionId,
              kind: SubtransactionKind = SubtransactionKind.PRIMARY,
              process=None) -> Transaction:
        """Start a subtransaction at this site."""
        if self._crashed:
            raise TransactionAborted(gid, "site crashed")
        txn = Transaction(gid, self.site_id, kind, self.env.now)
        txn.process = process
        self._active.add(txn)
        self._log(LogRecordKind.BEGIN, gid=gid, txn_kind=kind,
                  time=self.env.now)
        return txn

    def read(self, txn: Transaction, item_id: ItemId):
        """Process helper: shared-lock ``item_id`` and return its value.

        Raises :class:`LockTimeout` (via the lock event) if the wait times
        out, and :class:`KeyError` if the item has no copy at this site.
        """
        self._check_active(txn)
        if item_id in txn.writes:
            return txn.writes[item_id]
        record = self._items[item_id]
        yield self.locks.acquire(txn, item_id, LockMode.SHARED)
        # First read wins: record the committed version observed.
        if item_id not in txn.reads:
            txn.reads[item_id] = record.committed_version
        return record.value

    def write(self, txn: Transaction, item_id: ItemId, value):
        """Process helper: exclusive-lock ``item_id`` and write ``value``.

        The new value is installed in place (invisible to others thanks to
        the X lock) and undone on abort.
        """
        self._check_active(txn)
        record = self._items[item_id]
        yield self.locks.acquire(txn, item_id, LockMode.EXCLUSIVE)
        if item_id not in txn.writes:
            txn.undo.append((item_id, record.value))
        record.value = value
        txn.writes[item_id] = value
        self._log(LogRecordKind.WRITE, gid=txn.gid, item=item_id,
                  value=value, time=self.env.now)

    def apply_catchup(self, item_id: ItemId, value, version: int,
                      writers: typing.Sequence[GlobalTransactionId]
                      ) -> int:
        """Apply a missed update tail fetched from the primary copy.

        ``writers`` are the gids of versions ``version - len(writers) + 1
        .. version`` in commit order.  Each missed version is recorded as
        a committed secondary subtransaction (WAL + history), mirroring
        the order the primary committed them in, so the DSG edges match
        what lazy propagation would have produced.  Intermediate values
        were never observable, so every replayed version carries the
        final ``value``.  Versions already present locally are skipped —
        the call is idempotent against concurrent regular propagation.

        Returns the number of versions applied.
        """
        record = self._items[item_id]
        base = version - len(writers)
        applied = 0
        for offset, gid in enumerate(writers):
            missed_version = base + offset + 1
            if missed_version <= record.committed_version:
                continue
            self._log(LogRecordKind.BEGIN, gid=gid,
                      txn_kind=SubtransactionKind.SECONDARY,
                      time=self.env.now)
            self._log(LogRecordKind.WRITE, gid=gid, item=item_id,
                      value=value, time=self.env.now)
            self._log(LogRecordKind.COMMIT, gid=gid, time=self.env.now)
            record.committed_version = missed_version
            record.writers.append(gid)
            record.value = value
            self.history.record(gid, SubtransactionKind.SECONDARY,
                                self.env.now, {},
                                {item_id: missed_version})
            applied += 1
        return applied

    def has_applied(self, item_id: ItemId,
                    gid: GlobalTransactionId) -> bool:
        """Whether ``gid`` already wrote a committed version of
        ``item_id`` here (the writer lineage check used for at-least-once
        delivery dedup in the live runtime)."""
        record = self._items.get(item_id)
        return record is not None and gid in record.writers

    def prepare(self, txn: Transaction) -> None:
        """Enter the prepared state (locks retained; commit/abort later)."""
        self._check_active(txn)
        txn.status = TransactionStatus.PREPARED

    def commit(self, txn: Transaction) -> None:
        """Atomically commit: bump versions, log history, release locks."""
        if txn.status not in (TransactionStatus.ACTIVE,
                              TransactionStatus.PREPARED):
            raise TransactionAborted(txn.gid,
                                     "commit in state " + txn.status.value)
        self._log(LogRecordKind.COMMIT, gid=txn.gid, time=self.env.now)
        write_versions: typing.Dict[ItemId, int] = {}
        for item_id in sorted(txn.writes):
            record = self._items[item_id]
            record.committed_version += 1
            record.writers.append(txn.gid)
            write_versions[item_id] = record.committed_version
        txn.status = TransactionStatus.COMMITTED
        txn.commit_time = self.env.now
        self.history.record(txn.gid, txn.kind, self.env.now,
                            txn.reads, write_versions)
        self._active.discard(txn)
        self.locks.release_all(txn)

    def abort(self, txn: Transaction) -> None:
        """Roll back: undo writes, withdraw waits, release locks."""
        if txn.status is TransactionStatus.COMMITTED:
            raise TransactionAborted(txn.gid, "abort after commit")
        if txn.status is TransactionStatus.ABORTED:
            return
        for item_id, old_value in reversed(txn.undo):
            self._items[item_id].value = old_value
        txn.undo.clear()
        txn.writes.clear()
        txn.status = TransactionStatus.ABORTED
        self._active.discard(txn)
        self.locks.cancel_waits(txn)
        self.locks.release_all(txn)
        self._log(LogRecordKind.ABORT, gid=txn.gid, time=self.env.now)

    def _check_active(self, txn: Transaction) -> None:
        if txn.status is not TransactionStatus.ACTIVE:
            raise TransactionAborted(
                txn.gid, "operation in state " + txn.status.value)
