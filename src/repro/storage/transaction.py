"""Local transaction (subtransaction) state.

A :class:`Transaction` is the per-site execution context of a primary,
secondary, backedge, special, or dummy subtransaction.  The primary
subtransaction and its remote subtransactions share a
:class:`~repro.types.GlobalTransactionId`.
"""

from __future__ import annotations

import enum
import typing

from repro.errors import TransactionAborted
from repro.types import GlobalTransactionId, SubtransactionKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    #: Locks held, execution finished, awaiting a distributed-commit
    #: decision (BackEdge special subtransactions, 2PC participants).
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One subtransaction executing at one site."""

    def __init__(self, gid: GlobalTransactionId, site: int,
                 kind: SubtransactionKind, start_time: float):
        self.gid = gid
        self.site = site
        self.kind = kind
        self.status = TransactionStatus.ACTIVE
        self.start_time = start_time
        self.commit_time: typing.Optional[float] = None
        #: Undo records: ``(item, previous value)`` in write order.
        self.undo: typing.List[typing.Tuple[typing.Any, typing.Any]] = []
        #: Committed version observed per item read (excludes own writes).
        self.reads: typing.Dict[typing.Any, int] = {}
        #: Pending value per item written.
        self.writes: typing.Dict[typing.Any, typing.Any] = {}
        #: The simulation process driving this subtransaction, if any
        #: (used to deliver wounds).
        self.process: typing.Optional["Process"] = None
        #: Reason this transaction was wounded, if it was.
        self.wound_reason: typing.Optional[str] = None
        #: Once shielded, wounds are refused — set by a distributed-commit
        #: coordinator after the commit decision is taken, so the decision
        #: cannot be undone locally while participants commit.
        self.shielded = False

    def __repr__(self):
        return "<Txn {} {} @s{} {}>".format(
            self.gid, self.kind.value, self.site, self.status.value)

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other

    @property
    def is_finished(self) -> bool:
        return self.status in (TransactionStatus.COMMITTED,
                               TransactionStatus.ABORTED)

    @property
    def is_primary(self) -> bool:
        return self.kind is SubtransactionKind.PRIMARY

    def wound(self, reason: str) -> bool:
        """Request this transaction's abort from outside its own process.

        Delivers :class:`~repro.sim.events.Interrupt` to the controlling
        process (which is responsible for rolling back).  Returns whether
        the wound was delivered.  Wounding a finished transaction or one
        with no controlling process is a no-op.
        """
        if self.is_finished or self.shielded or self.wound_reason is not None:
            return False
        if self.process is None or not self.process.is_alive:
            return False
        self.wound_reason = reason
        self.process.interrupt(TransactionAborted(self.gid, reason))
        return True
