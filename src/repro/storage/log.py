"""Redo-only logical write-ahead logging and crash recovery.

The paper's substrate, DataBlitz, is a *recoverable* main-memory storage
manager; replication is motivated by reliability and availability
(Sec. 1).  This module gives each site engine the matching durability
story:

- every transaction's writes are logged logically (item, new value) and
  sealed by a commit record — redo-only logging, so recovery never needs
  undo: transactions without a commit record simply never happened;
- :func:`recover` rebuilds a site engine from its log: committed values,
  per-item version counters and writer lineage, and the committed-write
  history (read sets are not logged, as usual for a WAL, so recovered
  history entries carry writes only).

The log models stable storage inside the simulation: a crash
(:meth:`StorageEngine.crash`) wipes all volatile state but leaves the
log intact.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.types import GlobalTransactionId, ItemId, SubtransactionKind


class LogRecordKind(enum.Enum):
    CREATE = "create"
    BEGIN = "begin"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"
    # Reconfiguration plane (repro.reconfig): the epoch number rides the
    # ``item`` field and the PlacementChange JSON rides ``value``.
    # Transaction recovery ignores both kinds; epoch recovery scans for
    # the committed ones (see repro.reconfig.change.replay_epochs).
    EPOCH_PREPARE = "epoch-prepare"
    EPOCH_COMMIT = "epoch-commit"


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One entry of the redo log."""

    kind: LogRecordKind
    #: Log sequence number (assigned by the log).
    lsn: int
    gid: typing.Optional[GlobalTransactionId] = None
    txn_kind: typing.Optional[SubtransactionKind] = None
    item: typing.Optional[ItemId] = None
    value: typing.Any = None
    time: float = 0.0


class WriteAheadLog:
    """An append-only log on simulated stable storage."""

    def __init__(self):
        self._records: typing.List[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def append(self, kind: LogRecordKind, **fields) -> LogRecord:
        record = LogRecord(kind=kind, lsn=len(self._records), **fields)
        self._records.append(record)
        return record

    @property
    def last_lsn(self) -> int:
        return len(self._records) - 1

    def records_of(self, gid: GlobalTransactionId
                   ) -> typing.List[LogRecord]:
        return [record for record in self._records if record.gid == gid]


def recover(env, site_id: int, wal: WriteAheadLog,
            lock_timeout: typing.Optional[float] = 0.050):
    """Rebuild a :class:`~repro.storage.engine.StorageEngine` from its
    log.

    Redo-only recovery: replay CREATEs, buffer each transaction's
    writes, apply them at its COMMIT record (bumping versions and the
    writer lineage), and drop transactions that never committed.
    Returns the recovered engine (attached to the same log, so new
    transactions keep appending to it).
    """
    from repro.storage.engine import StorageEngine

    engine = StorageEngine(env, site_id, lock_timeout=lock_timeout)
    buffers: typing.Dict[GlobalTransactionId,
                         typing.Dict[ItemId, typing.Any]] = {}
    kinds: typing.Dict[GlobalTransactionId, SubtransactionKind] = {}
    for record in wal:
        if record.kind is LogRecordKind.CREATE:
            engine.create_item(record.item, record.value)
        elif record.kind is LogRecordKind.BEGIN:
            buffers[record.gid] = {}
            kinds[record.gid] = record.txn_kind
        elif record.kind is LogRecordKind.WRITE:
            buffers.setdefault(record.gid, {})[record.item] = record.value
        elif record.kind is LogRecordKind.COMMIT:
            writes = buffers.pop(record.gid, {})
            versions: typing.Dict[ItemId, int] = {}
            for item, value in sorted(writes.items()):
                item_record = engine.item(item)
                item_record.value = value
                item_record.committed_version += 1
                item_record.writers.append(record.gid)
                versions[item] = item_record.committed_version
            engine.history.record(
                record.gid,
                kinds.get(record.gid, SubtransactionKind.PRIMARY),
                record.time, {}, versions)
        elif record.kind is LogRecordKind.ABORT:
            buffers.pop(record.gid, None)
    # Losers (no COMMIT record) are implicitly discarded.
    engine.attach_wal(wal)
    return engine
