"""Committed-operation history used by the serializability checker.

Each site logs every committed subtransaction in local commit order with
the version of each item it read and the version of each item it created.
The harness merges the site histories into the global direct-serialization
graph (see :mod:`repro.harness.serializability`).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.types import GlobalTransactionId, ItemId, SubtransactionKind


@dataclasses.dataclass(frozen=True)
class CommittedSubtransaction:
    """One committed subtransaction as recorded in a site history."""

    gid: GlobalTransactionId
    kind: SubtransactionKind
    site: int
    #: Position in the site's local commit order (0-based, dense).
    seq: int
    commit_time: float
    #: item -> committed version observed at read time.
    reads: typing.Mapping[ItemId, int]
    #: item -> committed version this subtransaction created.
    writes: typing.Mapping[ItemId, int]


class SiteHistory:
    """Append-only log of committed subtransactions at one site."""

    def __init__(self, site_id: int):
        self.site_id = site_id
        self.entries: typing.List[CommittedSubtransaction] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def record(self, gid: GlobalTransactionId, kind: SubtransactionKind,
               commit_time: float,
               reads: typing.Mapping[ItemId, int],
               writes: typing.Mapping[ItemId, int]
               ) -> CommittedSubtransaction:
        """Append a committed subtransaction and return the entry."""
        entry = CommittedSubtransaction(
            gid=gid,
            kind=kind,
            site=self.site_id,
            seq=len(self.entries),
            commit_time=commit_time,
            reads=dict(reads),
            writes=dict(writes),
        )
        self.entries.append(entry)
        return entry

    def committed_gids(self) -> typing.Set[GlobalTransactionId]:
        """Distinct global transaction ids committed at this site."""
        return {entry.gid for entry in self.entries}
