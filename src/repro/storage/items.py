"""Item records: the unit of storage and locking.

Each record tracks its current value, the count of *committed* writes
(``committed_version``), and which global transaction produced each
committed version — the raw material for the serializability checker.
"""

from __future__ import annotations

import typing

from repro.types import GlobalTransactionId, ItemId


class ItemRecord:
    """One item copy stored at one site."""

    __slots__ = ("item_id", "value", "committed_version", "writers")

    def __init__(self, item_id: ItemId, value=0):
        self.item_id = item_id
        self.value = value
        #: Number of committed writes applied to this copy; version 0 is
        #: the initial value.
        self.committed_version = 0
        #: ``writers[v - 1]`` is the global txn id that created version v.
        self.writers: typing.List[GlobalTransactionId] = []

    def __repr__(self):
        return "<Item {} v{}={!r}>".format(
            self.item_id, self.committed_version, self.value)

    def writer_of(self, version: int
                  ) -> typing.Optional[GlobalTransactionId]:
        """Global txn id that wrote ``version`` (``None`` for version 0)."""
        if version == 0:
            return None
        return self.writers[version - 1]
