"""Per-site in-memory database engine (the DataBlitz stand-in).

Each simulated site runs one :class:`~repro.storage.engine.StorageEngine`
holding hash-indexed items, a strict two-phase-locking
:class:`~repro.storage.locks.LockManager` with timeout-based deadlock
resolution, undo logging for aborts, and a committed-operation history used
by the global serializability checker.
"""

from repro.storage.deadlock import find_waits_for_cycle, waits_for_graph
from repro.storage.engine import StorageEngine
from repro.storage.history import CommittedSubtransaction, SiteHistory
from repro.storage.items import ItemRecord
from repro.storage.locks import LockManager, LockMode
from repro.storage.log import (
    LogRecord,
    LogRecordKind,
    WriteAheadLog,
    recover,
)
from repro.storage.transaction import Transaction, TransactionStatus

__all__ = [
    "CommittedSubtransaction",
    "ItemRecord",
    "LockManager",
    "LockMode",
    "LogRecord",
    "LogRecordKind",
    "WriteAheadLog",
    "recover",
    "SiteHistory",
    "StorageEngine",
    "Transaction",
    "TransactionStatus",
    "find_waits_for_cycle",
    "waits_for_graph",
]
