"""Waits-for-graph construction and cycle detection.

The production deadlock mechanism is the paper's lock *timeout* (Table 1:
50 ms).  This module provides an exact detector over a
:class:`~repro.storage.locks.LockManager`'s state, used by the test suite
to validate that timeouts fire exactly when real deadlocks exist, and
available to protocols that prefer detection over timeouts.
"""

from __future__ import annotations

import typing

from repro.storage.locks import LockManager, LockMode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.transaction import Transaction


def waits_for_graph(manager: LockManager
                    ) -> typing.Dict["Transaction", typing.Set]:
    """Build the waits-for graph: waiter -> set of conflicting holders.

    A queued request waits on every current holder whose mode conflicts
    with the requested mode (for upgrades: every *other* holder).
    """
    graph: typing.Dict["Transaction", typing.Set] = {}
    for request in manager.waiting_requests():
        holders = manager.holders(request.item)
        blockers = set()
        for holder, mode in holders.items():
            if holder is request.txn:
                continue
            if request.mode is LockMode.EXCLUSIVE or \
                    mode is LockMode.EXCLUSIVE:
                blockers.add(holder)
        if blockers:
            graph.setdefault(request.txn, set()).update(blockers)
    return graph


def find_waits_for_cycle(manager: LockManager
                         ) -> typing.Optional[typing.List]:
    """Return one waits-for cycle as a list of transactions, or ``None``.

    Note: this sees only *local* waits; global (multi-site) deadlocks are
    invisible to it, which is exactly why the paper uses timeouts.
    """
    graph = waits_for_graph(manager)
    visiting: typing.Set = set()
    done: typing.Set = set()
    stack: typing.List = []

    def visit(node) -> typing.Optional[typing.List]:
        visiting.add(node)
        stack.append(node)
        for succ in graph.get(node, ()):
            if succ in visiting:
                start = stack.index(succ)
                return stack[start:] + [succ]
            if succ not in done:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        visiting.discard(node)
        done.add(node)
        stack.pop()
        return None

    for node in list(graph):
        if node not in done:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None
