"""Strict two-phase-locking lock manager.

The variant of 2PL the paper assumes: a transaction holds every lock (read
or write) until after it commits or aborts.  The manager supports shared /
exclusive modes, re-entrant acquisition, lock upgrades, FIFO queuing, and
the paper's timeout mechanism for local and global deadlocks (default 50 ms
simulated, Table 1).

When a queued request times out the manager consults a pluggable
``timeout_policy``; the protocols use this hook to implement the paper's
victim-selection rules (primaries abort themselves, secondary
subtransactions wound a conflicting primary and keep waiting — Secs. 2 and
4.1).
"""

from __future__ import annotations

import collections
import enum
import typing

from repro.errors import LockTimeout
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment
    from repro.storage.transaction import Transaction


class LockMode(enum.Enum):
    """Lock modes; shared is compatible only with shared."""

    SHARED = "S"
    EXCLUSIVE = "X"


#: Policy verdict: abort the waiting request (fail it with LockTimeout).
ABORT_WAITER = "abort"
#: Policy verdict: keep the request queued and re-arm its timer.
KEEP_WAITING = "wait"


class LockRequest:
    """A queued lock request (also returned to the policy on timeout)."""

    __slots__ = ("txn", "item", "mode", "event", "is_upgrade", "enqueued_at")

    def __init__(self, txn: "Transaction", item, mode: LockMode,
                 event: Event, is_upgrade: bool, enqueued_at: float):
        self.txn = txn
        self.item = item
        self.mode = mode
        self.event = event
        self.is_upgrade = is_upgrade
        self.enqueued_at = enqueued_at

    def __repr__(self):
        return "<LockRequest {} {} on {}{}>".format(
            self.txn.gid, self.mode.value, self.item,
            " upgrade" if self.is_upgrade else "")


class _LockEntry:
    """Per-item lock state: current holders plus the FIFO wait queue."""

    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: typing.Dict["Transaction", LockMode] = {}
        self.queue: collections.deque = collections.deque()


class LockManager:
    """Strict 2PL lock manager for one site.

    Parameters
    ----------
    env:
        Simulation environment (used for timers).
    timeout:
        Deadlock timeout interval in simulated seconds; ``None`` disables
        timeouts (waits are unbounded).
    """

    def __init__(self, env: "Environment",
                 timeout: typing.Optional[float] = 0.050):
        self.env = env
        self.timeout = timeout
        #: ``policy(manager, request) -> ABORT_WAITER | KEEP_WAITING``.
        #: Consulted when a queued request's timer fires; may wound holders.
        self.timeout_policy: typing.Optional[typing.Callable] = None
        self._table: typing.Dict[typing.Any, _LockEntry] = {}
        self._held: typing.Dict["Transaction", typing.Set] = {}
        #: Counters for the metrics module.
        self.stats = collections.Counter()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders(self, item) -> typing.Dict["Transaction", LockMode]:
        """Current holders of ``item`` (empty dict if unlocked)."""
        entry = self._table.get(item)
        if entry is None:
            return {}
        return dict(entry.holders)

    def mode_held(self, txn: "Transaction", item
                  ) -> typing.Optional[LockMode]:
        """Mode in which ``txn`` holds ``item`` (``None`` if it doesn't)."""
        entry = self._table.get(item)
        if entry is None:
            return None
        return entry.holders.get(txn)

    def items_held(self, txn: "Transaction") -> typing.Set:
        """Items on which ``txn`` currently holds a lock."""
        return set(self._held.get(txn, ()))

    def waiting_requests(self) -> typing.List[LockRequest]:
        """All queued (ungranted) requests, across items."""
        requests = []
        for entry in self._table.values():
            requests.extend(entry.queue)
        return requests

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def acquire(self, txn: "Transaction", item, mode: LockMode,
                timeout: typing.Optional[float] = None) -> Event:
        """Request a lock.  The event succeeds when the lock is granted and
        fails with :class:`LockTimeout` if the request times out and the
        policy says to abort the waiter.

        ``timeout`` overrides the manager default for this request.
        """
        entry = self._table.setdefault(item, _LockEntry())
        event = Event(self.env)
        held = entry.holders.get(txn)

        # Re-entrant cases that never block.
        if held is LockMode.EXCLUSIVE or held is mode:
            event.succeed(item)
            return event

        is_upgrade = held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        if is_upgrade and len(entry.holders) == 1:
            entry.holders[txn] = LockMode.EXCLUSIVE
            self.stats["upgrades"] += 1
            event.succeed(item)
            return event

        if not is_upgrade and self._grantable(entry, txn, mode):
            entry.holders[txn] = mode
            self._held.setdefault(txn, set()).add(item)
            event.succeed(item)
            return event

        request = LockRequest(txn, item, mode, event, is_upgrade,
                              self.env.now)
        if is_upgrade:
            # Upgrades go to the front so they are serviced as soon as the
            # other shared holders drain.
            entry.queue.appendleft(request)
        else:
            entry.queue.append(request)
        self.stats["waits"] += 1
        self._arm_timer(request, timeout)
        return event

    def _grantable(self, entry: _LockEntry, txn: "Transaction",
                   mode: LockMode) -> bool:
        """Whether a fresh (non-upgrade) request can be granted now.

        FIFO fairness: nothing is granted past a non-empty wait queue.
        """
        if entry.queue:
            return False
        if not entry.holders:
            return True
        if mode is LockMode.SHARED:
            return all(held is LockMode.SHARED
                       for held in entry.holders.values())
        return False

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_timer(self, request: LockRequest,
                   timeout: typing.Optional[float]) -> None:
        interval = self.timeout if timeout is None else timeout
        if interval is None:
            return
        timer = self.env.timeout(interval)
        timer.callbacks.append(
            lambda _ev, req=request, ivl=timeout: self._on_timer(req, ivl))

    def _on_timer(self, request: LockRequest,
                  timeout: typing.Optional[float]) -> None:
        entry = self._table.get(request.item)
        if entry is None or request not in entry.queue:
            return  # Granted or cancelled in the meantime.
        self.stats["timeouts"] += 1
        verdict = ABORT_WAITER
        if self.timeout_policy is not None:
            verdict = self.timeout_policy(self, request)
        if verdict == KEEP_WAITING:
            self._arm_timer(request, timeout)
            return
        entry.queue.remove(request)
        self.stats["timeout_aborts"] += 1
        request.event.fail(LockTimeout(request.txn.gid, request.item))
        self._scan(request.item, entry)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release_all(self, txn: "Transaction") -> None:
        """Release every lock held by ``txn`` (strict 2PL release point)."""
        items = self._held.pop(txn, set())
        for item in items:
            entry = self._table.get(item)
            if entry is None:
                continue
            entry.holders.pop(txn, None)
            self._scan(item, entry)

    def cancel_waits(self, txn: "Transaction") -> None:
        """Withdraw all of ``txn``'s queued requests (on abort)."""
        for item, entry in list(self._table.items()):
            removed = False
            for request in list(entry.queue):
                if request.txn is txn:
                    entry.queue.remove(request)
                    removed = True
            if removed:
                self._scan(item, entry)

    def _scan(self, item, entry: _LockEntry) -> None:
        """Grant queued requests from the head while compatible (FIFO)."""
        granted_any = False
        while entry.queue:
            request = entry.queue[0]
            if request.is_upgrade:
                others = [holder for holder in entry.holders
                          if holder is not request.txn]
                if others:
                    break
                entry.queue.popleft()
                entry.holders[request.txn] = LockMode.EXCLUSIVE
                self.stats["upgrades"] += 1
            elif request.mode is LockMode.SHARED:
                if any(held is LockMode.EXCLUSIVE
                       for held in entry.holders.values()):
                    break
                entry.queue.popleft()
                entry.holders[request.txn] = LockMode.SHARED
            else:  # EXCLUSIVE
                if entry.holders:
                    break
                entry.queue.popleft()
                entry.holders[request.txn] = LockMode.EXCLUSIVE
            self._held.setdefault(request.txn, set()).add(item)
            request.event.succeed(item)
            granted_any = True
        if granted_any:
            self.stats["grants_after_wait"] += 1
        if not entry.holders and not entry.queue:
            self._table.pop(item, None)
