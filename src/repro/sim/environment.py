"""The simulation environment: clock plus event scheduler.

Events are processed in ``(time, priority, tie-break, insertion-order)``
order, which makes every simulation run fully deterministic.  The
tie-break is supplied by a :class:`SchedulePolicy`; the default policy
uses a constant, so ordering degenerates to the classical
``(time, priority, insertion-order)``.  A seeded policy (see
:mod:`repro.explorer.decisions`) perturbs the order of same-time,
same-priority events to explore alternative but equally-legal schedules.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import NORMAL, Event, Timeout
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class SchedulePolicy:
    """Tie-break hook for events scheduled at the same ``(time,
    priority)``.

    ``tie_break`` returns a sortable key ordered *between* priority and
    insertion order: events with equal keys keep insertion order, so the
    base policy (constant key) reproduces the historical deterministic
    schedule exactly.  Priorities still dominate — a policy can never
    reorder an urgent wound behind a normal event.
    """

    def tie_break(self, time: float, priority: int, eid: int) -> int:
        """Key for the event being scheduled (default: no reordering)."""
        return 0


#: Shared default policy instance (stateless).
INSERTION_ORDER = SchedulePolicy()


class Environment:
    """A discrete-event simulation environment.

    Typical usage::

        env = Environment()

        def clock(env):
            while True:
                yield env.timeout(1.0)

        env.process(clock(env))
        env.run(until=10.0)
    """

    def __init__(self, initial_time: float = 0.0,
                 schedule_policy: typing.Optional[SchedulePolicy] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self.schedule_policy = schedule_policy or INSERTION_ORDER
        #: Number of events processed so far (useful for debugging/stats).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Schedule a triggered ``event`` for processing after ``delay``."""
        self._eid += 1
        when = self._now + delay
        key = self.schedule_policy.tie_break(when, priority, self._eid)
        heapq.heappush(self._queue, (when, priority, key, self._eid,
                                     event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise EmptySchedule()
        when, _priority, _key, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it loudly.
            raise event._value

    def run(self, until: typing.Optional[float] = None):
        """Run until the schedule is empty or ``until`` is reached.

        If ``until`` is an :class:`Event`, run until that event is processed
        and return its value (re-raising its exception on failure).
        """
        if until is None:
            stop_time = float("inf")
            stop_event = None
        elif isinstance(until, Event):
            stop_time = float("inf")
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    "until ({}) is earlier than now ({})".format(
                        stop_time, self._now))
            stop_event = None

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                break
            self.step()
        else:
            if stop_time != float("inf"):
                self._now = stop_time

        if stop_event is not None:
            if not stop_event.triggered:
                return None
            if not stop_event.ok:
                stop_event.defuse()
                raise stop_event.value
            return stop_event.value
        return None
