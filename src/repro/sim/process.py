"""Generator-based simulation processes.

A :class:`Process` wraps a generator.  The generator ``yield``-s
:class:`~repro.sim.events.Event` instances to wait on them; when the event is
processed, the process resumes with the event's value (or has the event's
exception thrown into it if the event failed).

A process is itself an event: it succeeds with the generator's return value,
or fails with any exception that escapes the generator.
"""

from __future__ import annotations

import typing

from repro.sim.events import PENDING, URGENT, Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator that yields events.
    """

    def __init__(self, env: "Environment", generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (``None`` when the
        #: process is being resumed or has finished).
        self._target: typing.Optional[Event] = None
        # Kick off the process with an immediately-successful event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the generator is still running."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered at the current simulated time with urgent
        priority.  If the process is waiting on an event, it stops waiting
        (the event remains valid for other listeners).  Interrupting a
        finished process is an error.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.env.schedule(interrupt_event, priority=URGENT)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as exc:
                self.succeed(exc.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = RuntimeError(
                    "process yielded non-event {!r}".format(target))
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:
                    self.fail(err)
                return

            if target.callbacks is not None:
                # Not yet processed: register and wait.
                target.callbacks.append(self._resume)
                self._target = target
                return
            if target._value is PENDING:  # pragma: no cover - defensive
                raise RuntimeError("processed event without a value")
            # Already processed: consume synchronously.
            event = target
