"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the replicated-database system runs.
It provides a small, SimPy-flavoured event loop:

- :class:`~repro.sim.environment.Environment` — the simulation clock and
  event scheduler.
- :class:`~repro.sim.events.Event` — one-shot events that succeed or fail.
- :class:`~repro.sim.process.Process` — generator-based coroutines that
  ``yield`` events to wait on them.
- :mod:`~repro.sim.resources` — FIFO resources (CPU) and mailboxes.
- :mod:`~repro.sim.rng` — named, seeded random streams for reproducibility.

The kernel is deterministic: given a seed, every run produces the identical
schedule, which the test suite relies on heavily.
"""

from repro.sim.environment import Environment, SchedulePolicy
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Mailbox, Resource
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "Resource",
    "RngRegistry",
    "SchedulePolicy",
    "Timeout",
]
