"""Named, seeded random streams.

Every stochastic component of the system (workload generator, data
distribution, per-thread operation mix, ...) draws from its own named
stream so that changing one component's consumption pattern does not
perturb the others.  Streams are derived deterministically from a single
experiment seed.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """A factory of independent, reproducible random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identically-seeded
        generator.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                "{}:{}".format(self.seed, name).encode("utf-8")).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (for nested experiments)."""
        digest = hashlib.sha256(
            "{}:{}".format(self.seed, name).encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[8:16], "big"))
