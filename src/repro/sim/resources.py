"""Shared resources for simulation processes.

- :class:`Resource` — a counted FIFO resource (used to model per-site CPUs).
- :class:`Mailbox` — an unbounded FIFO message queue with blocking ``get``.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Resource:
    """A counted resource with FIFO granting.

    ``request()`` returns an event that succeeds once a slot is available;
    the returned event doubles as the grant token passed to ``release()``.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set = set()
        self._waiting: collections.deque = collections.deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Request a slot.  The event succeeds when the slot is granted."""
        event = Event(self.env)
        if len(self._users) < self.capacity:
            self._users.add(event)
            event.succeed(event)
        else:
            self._waiting.append(event)
        return event

    def release(self, token: Event) -> None:
        """Release a previously granted slot."""
        if token not in self._users:
            raise ValueError("token does not hold this resource")
        self._users.discard(token)
        self._grant_next()

    def cancel(self, token: Event) -> None:
        """Withdraw a request.

        Safe to call whether the request is still queued, already granted,
        or already released; a granted-but-unreleased token is released.
        """
        if token in self._users:
            self.release(token)
            return
        try:
            self._waiting.remove(token)
        except ValueError:
            pass

    def use(self, duration: float,
            quantum: typing.Optional[float] = None):
        """Process helper: consume ``duration`` of this resource.

        Usage: ``yield from resource.use(1.5)``.  With ``quantum`` set,
        the work is consumed in quantum-sized slices, releasing the slot
        between slices — approximating a preemptive round-robin scheduler
        so short requests are not stuck behind long ones.  If the caller
        is interrupted while holding or waiting, the slot/request is
        cleaned up.
        """
        remaining = float(duration)
        first = True
        while first or remaining > 1e-12:
            first = False
            token = self.request()
            try:
                yield token
                if quantum is None or remaining <= quantum:
                    slice_duration = remaining
                else:
                    slice_duration = quantum
                if slice_duration > 0:
                    yield self.env.timeout(slice_duration)
                remaining -= slice_duration
            finally:
                self.cancel(token)

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            event = self._waiting.popleft()
            self._users.add(event)
            event.succeed(event)


class Mailbox:
    """An unbounded FIFO queue connecting producer and consumer processes.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    next item (immediately if one is queued).
    """

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self):
        return "<Mailbox {!r} items={} getters={}>".format(
            self.name, len(self._items), len(self._getters))

    def put(self, item) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next queued item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self):
        """Return the head item without removing it (``None`` if empty)."""
        if self._items:
            return self._items[0]
        return None

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` request (no-op if already served)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass
