"""One-shot simulation events.

An :class:`Event` is created in the *pending* state, is *triggered* exactly
once (either :meth:`Event.succeed` or :meth:`Event.fail`), and is *processed*
when the environment pops it off the schedule and runs its callbacks.

Failures propagate: a process waiting on a failed event has the exception
thrown into its generator.  A failed event that nobody waits on is re-raised
by the environment so that programming errors never pass silently (an event
may be explicitly :meth:`~Event.defuse`-d to opt out).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

#: Sentinel for "this event has not been triggered yet".
PENDING = object()

#: Scheduling priority for interrupts (processed before normal events at the
#: same simulated time).
URGENT = 0

#: Scheduling priority for ordinary events.
NORMAL = 1


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupt ``cause`` is available as :attr:`cause` (and as
    ``exc.args[0]``).
    """

    @property
    def cause(self):
        """The cause object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A one-shot event that processes can wait on by yielding it.

    Parameters
    ----------
    env:
        The environment that will schedule this event once triggered.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks run (in registration order) when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: typing.Optional[list] = []
        self._value = PENDING
        self._ok: typing.Optional[bool] = None
        self._defused = False

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the environment has already run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise RuntimeError("event has not been triggered")
        return bool(self._ok)

    @property
    def value(self):
        """The event's value (or failure exception).  Only valid once
        triggered."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event {!r} already triggered".format(self))
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError("event {!r} already triggered".format(self))
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled so the environment does not re-raise."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError("negative delay {!r}".format(delay))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay


class Condition(Event):
    """Base class for events composed of other events (all-of / any-of).

    The condition evaluates ``evaluate(events, n_triggered)`` after each
    child triggers.  On success the condition's value is a dict mapping each
    *triggered* child event to its value.  If any child fails, the condition
    fails with that child's exception (the child is defused).
    """

    def __init__(self, env: "Environment", events: typing.Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                # Already processed: evaluate synchronously.
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _evaluate(self, n_triggered: int) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(self._count):
            # Collect only *processed* children: a Timeout is "triggered"
            # from birth but has not yet occurred until it is processed.
            self.succeed(
                {ev: ev.value for ev in self._events if ev.processed and ev.ok}
            )


class AllOf(Condition):
    """Succeeds once every child event has succeeded."""

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered == len(self._events)


class AnyOf(Condition):
    """Succeeds as soon as any child event succeeds."""

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered >= 1
