"""Exception hierarchy shared across the package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An experiment or system was configured inconsistently."""


class PlacementError(ReproError):
    """A data-placement constraint was violated (e.g. update of a
    non-primary copy)."""


class GraphError(ReproError):
    """A copy-graph precondition failed (e.g. DAG protocol on a cyclic
    graph)."""


class TransactionAborted(ReproError):
    """A transaction was aborted.

    Attributes
    ----------
    reason:
        Short machine-readable reason, e.g. ``"lock-timeout"``,
        ``"wounded"``, ``"global-deadlock"``.
    """

    def __init__(self, txn_id, reason: str = "aborted"):
        super().__init__("transaction {} aborted: {}".format(txn_id, reason))
        self.txn_id = txn_id
        self.reason = reason


class LockTimeout(TransactionAborted):
    """A lock request waited longer than the deadlock timeout interval."""

    def __init__(self, txn_id, item_id):
        super().__init__(txn_id, "lock-timeout on item {}".format(item_id))
        self.item_id = item_id


class SerializabilityViolation(ReproError):
    """The global direct-serialization graph contains a cycle."""

    def __init__(self, cycle):
        super().__init__(
            "non-serializable execution; DSG cycle: {}".format(
                " -> ".join(str(node) for node in cycle)))
        self.cycle = list(cycle)
