"""repro — reproduction of *Update Propagation Protocols For Replicated
Databases* (Breitbart, Komondoor, Rastogi, Seshadri, Silberschatz;
SIGMOD 1999).

The package implements, from scratch:

- a deterministic discrete-event simulation kernel (:mod:`repro.sim`),
- a per-site in-memory database engine with strict two-phase locking
  (:mod:`repro.storage`),
- a reliable FIFO network substrate (:mod:`repro.network`),
- copy-graph machinery — DAG tests, propagation trees, feedback-arc sets
  (:mod:`repro.graph`),
- the paper's protocols — DAG(WT), DAG(T), BackEdge — plus the PSL and
  eager baselines (:mod:`repro.core`),
- the paper's workload generator and data-distribution scheme
  (:mod:`repro.workload`), and
- an experiment harness with a global serializability checker
  (:mod:`repro.harness`).

Quickstart::

    from repro import ExperimentConfig, run_experiment

    config = ExperimentConfig(protocol="backedge", seed=1)
    result = run_experiment(config)
    print(result.average_throughput, result.abort_rate)
"""

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ScenarioBuilder",
    "SystemConfig",
    "WorkloadParams",
    "run_experiment",
]

_LAZY_EXPORTS = {
    "ExperimentConfig": ("repro.harness.runner", "ExperimentConfig"),
    "ExperimentResult": ("repro.harness.runner", "ExperimentResult"),
    "run_experiment": ("repro.harness.runner", "run_experiment"),
    "WorkloadParams": ("repro.workload.params", "WorkloadParams"),
    "ScenarioBuilder": ("repro.testing", "ScenarioBuilder"),
    "SystemConfig": ("repro.core.base", "SystemConfig"),
}


def __getattr__(name):
    """Lazily resolve the public API re-exports.

    Keeps ``import repro`` cheap and avoids import cycles between the
    harness and the substrates.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
