"""Low-overhead metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Cheap on the hot path.**  An increment is one lock acquire and one
   integer add; a histogram observation is a bisect into a fixed bucket
   table.  No strings are formatted, no timestamps taken, nothing is
   allocated per observation.
2. **Zero-cost when disabled.**  A registry built with
   ``enabled=False`` hands out one shared :class:`NullInstrument`
   whose methods do nothing; it is falsy, so callers can guard optional
   work (``if hist: hist.observe(perf_counter() - t0)``) and skip even
   the clock reads.  A disabled registry keeps **no** state — nothing
   it could leak onto the wire or into a cluster fingerprint.
3. **Thread- and task-safe.**  The live server runs a pipelined asyncio
   apply loop, and tests (plus future multi-threaded frontends) hammer
   instruments from worker threads; every mutation holds the
   instrument's own lock, so counts are exact, not "close enough".

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts
served by the cluster ``stats`` wire request; their shape is pinned by
:func:`validate_snapshot` (used by ``repro stats --check`` and CI).
"""

from __future__ import annotations

import bisect
import threading
import typing

#: Default latency buckets (seconds): ~100 us to 10 s, geometric-ish.
LATENCY_BUCKETS_S: typing.Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default size buckets (counts): batch sizes, queue depths.
SIZE_BUCKETS: typing.Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Default version-lag buckets (how far a replica trails its primary).
LAG_BUCKETS: typing.Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128)


class NullInstrument:
    """Shared no-op stand-in for every instrument type.

    Falsy on purpose: hot paths guard optional work (clock reads,
    snapshot assembly) behind ``if instrument:``, which makes the
    disabled configuration genuinely zero-cost rather than merely
    cheap.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0

    @property
    def high_water(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


#: The one shared null instrument a disabled registry hands out.
NULL = NullInstrument()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value that also remembers its high-water mark."""

    __slots__ = ("name", "_value", "_high_water", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._high_water = 0.0
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._high_water:
                self._high_water = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_water(self) -> float:
        return self._high_water

    def snapshot(self) -> typing.Dict[str, float]:
        return {"value": self._value, "high_water": self._high_water}


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Bucket semantics are cumulative-friendly "less than or equal":
    an observation lands in the first bucket whose upper edge is
    ``>= value``; anything above the last edge lands in the overflow
    bucket.  Observing a value exactly equal to an edge counts toward
    that edge's bucket (Prometheus ``le`` semantics).

    :meth:`percentile` returns an upper-bound estimate — the edge of
    the bucket containing the requested rank (the exact maximum for the
    overflow bucket) — which is what fixed buckets can honestly offer.
    """

    __slots__ = ("name", "edges", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 buckets: typing.Sequence[float] = LATENCY_BUCKETS_S):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                "histogram buckets must be a non-empty ascending "
                "sequence, got {!r}".format(buckets))
        self.name = name
        self.edges = tuple(float(edge) for edge in buckets)
        self._counts = [0] * (len(self.edges) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: typing.Optional[float] = None
        self._max: typing.Optional[float] = None
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> typing.List[int]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return list(self._counts)

    def percentile(self, pct: float) -> float:
        """Upper-bound estimate of the ``pct``-th percentile."""
        with self._lock:
            return bucket_percentile(self.edges, self._counts,
                                     self._count, self._max, pct)

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        with self._lock:
            snap = {
                "buckets": list(self.edges),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }
            # Pre-derived quantiles (upper-bound estimates, like
            # :meth:`percentile`): consumers — dashboard, loadgen
            # report, alert rules — read these instead of re-deriving
            # from the raw buckets, which stay in the schema for
            # anything needing a different cut.
            for pct, key in ((50.0, "p50"), (95.0, "p95"),
                             (99.0, "p99")):
                snap[key] = bucket_percentile(
                    self.edges, self._counts, self._count, self._max,
                    pct)
            return snap


class MetricsRegistry:
    """Named instruments for one process (typically one site server).

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name returns the same instrument (asking with a
    different instrument type raises).  A disabled registry returns the
    shared :data:`NULL` instrument and records nothing at all.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._instruments: typing.Dict[str, typing.Any] = {}
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return self.enabled

    def _get_or_create(self, name: str, cls, factory):
        if not self.enabled:
            return NULL
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, cls):
                raise TypeError(
                    "metric {!r} already registered as {}, not {}".format(
                        name, type(instrument).__name__, cls.__name__))
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: typing.Sequence[float] = LATENCY_BUCKETS_S
                  ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets))

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """JSON-safe snapshot of every instrument, grouped by type."""
        if not self.enabled:
            return {"enabled": False, "counters": {}, "gauges": {},
                    "histograms": {}}
        counters: typing.Dict[str, int] = {}
        gauges: typing.Dict[str, typing.Any] = {}
        histograms: typing.Dict[str, typing.Any] = {}
        with self._lock:
            instruments = list(self._instruments.items())
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Counter):
                counters[name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.snapshot()
            elif isinstance(instrument, Histogram):
                histograms[name] = instrument.snapshot()
        return {"enabled": True, "counters": counters, "gauges": gauges,
                "histograms": histograms}


def bucket_percentile(edges: typing.Sequence[float],
                      counts: typing.Sequence[int], total: int,
                      maximum: typing.Optional[float],
                      pct: float) -> float:
    """Upper-bound ``pct``-th percentile of a fixed-bucket histogram.

    The single implementation behind :meth:`Histogram.percentile`,
    snapshot pre-derivation, and :func:`snapshot_percentile`: the edge
    of the bucket containing the requested rank, or the exact maximum
    for the overflow bucket.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile {} outside [0, 100]".format(pct))
    if total == 0:
        return 0.0
    rank = max(1, -(-total * pct // 100))  # ceil
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= rank:
            if index < len(edges):
                return float(edges[index])
            break
    return float(maximum) if maximum is not None else 0.0


def snapshot_percentile(snapshot: typing.Mapping[str, typing.Any],
                        pct: float) -> float:
    """:func:`bucket_percentile` over a histogram's *snapshot* dict —
    for consumers (CLI, benchmarks) that only hold the wire-shipped
    snapshot, not the live instrument, and need a cut the snapshot does
    not pre-derive (it already carries ``p50``/``p95``/``p99``)."""
    return bucket_percentile(snapshot["buckets"], snapshot["counts"],
                             snapshot["count"], snapshot.get("max"),
                             pct)


def validate_snapshot(obj: typing.Any) -> None:
    """Raise :class:`ValueError` unless ``obj`` is a well-formed
    registry snapshot (the ``stats`` wire schema CI asserts against)."""

    def fail(detail: str) -> typing.NoReturn:
        raise ValueError("invalid stats snapshot: " + detail)

    if not isinstance(obj, dict):
        fail("not an object")
    if not isinstance(obj.get("enabled"), bool):
        fail("missing boolean 'enabled'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(obj.get(section), dict):
            fail("missing object section {!r}".format(section))
    for name, value in obj["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail("counter {!r} is not a non-negative int".format(name))
    for name, value in obj["gauges"].items():
        if not isinstance(value, dict) or \
                not all(isinstance(value.get(key), (int, float))
                        for key in ("value", "high_water")):
            fail("gauge {!r} lacks value/high_water numbers".format(name))
    for name, value in obj["histograms"].items():
        if not isinstance(value, dict):
            fail("histogram {!r} is not an object".format(name))
        buckets, counts = value.get("buckets"), value.get("counts")
        if not isinstance(buckets, list) or not isinstance(counts, list) \
                or len(counts) != len(buckets) + 1:
            fail("histogram {!r} bucket/count shape mismatch".format(name))
        if not all(isinstance(count, int) and count >= 0
                   for count in counts):
            fail("histogram {!r} has invalid counts".format(name))
        if not isinstance(value.get("count"), int) or \
                value["count"] != sum(counts):
            fail("histogram {!r} count disagrees with buckets".format(
                name))
        if not isinstance(value.get("sum"), (int, float)):
            fail("histogram {!r} lacks a sum".format(name))
        for key in ("p50", "p95", "p99"):
            # Optional for hand-built fixtures, but when present (every
            # registry-produced snapshot) they must be numbers.
            if key in value and not isinstance(value[key],
                                               (int, float)):
                fail("histogram {!r} has non-numeric {}".format(
                    name, key))
