"""In-process sampling wall-clock profiler (pure python).

A daemon thread wakes every ``interval`` seconds, snapshots every
thread's current Python frame via :func:`sys._current_frames`, and
counts identical call stacks in **collapsed-stack** form — the
semicolon-joined root-first frame list Brendan Gregg's flamegraph
tooling (and speedscope, and ``inferno``) consumes directly::

    repro.cluster.server:_drive;repro.sim.environment:run 42

Sampling, not tracing: the profiler never patches or wraps anything,
so the profiled process pays only one frame walk per interval — cheap
enough to leave running against a live cluster while a workload
drives it (the ``profile`` wire op starts/stops it remotely, see
:meth:`repro.cluster.server.SiteServer._profile_op`).

Wall-clock, not CPU: a thread parked in ``select`` / ``fsync`` /
``lock.acquire`` is sampled right there, which is exactly what a
latency investigation wants — the WAL barrier shows up as time inside
``os.fsync``, not as a mystery gap.

Caveats, honestly stated: ``sys._current_frames`` is CPython-specific
(guarded, so the profiler degrades to zero samples elsewhere rather
than crashing), samples threads only between bytecodes, and attributes
an async task's time to the event-loop thread running it — stack
samples complement the per-stage histograms, they don't replace them.
"""

from __future__ import annotations

import collections
import sys
import threading
import time
import typing

#: Frames from these modules are the profiler's own sampling machinery
#: or interpreter plumbing below every stack; dropping them keeps the
#: collapsed output about the profiled code.
_SKIP_MODULES = ("repro.obs.profiler",)


def frame_label(frame) -> str:
    """``module:function`` label of one frame (files collapse to their
    module path, so identical code sampled at different lines folds
    into one flamegraph frame)."""
    module = frame.f_globals.get("__name__", "?")
    return "{}:{}".format(module, frame.f_code.co_name)


def collapse_frame(frame) -> typing.Optional[str]:
    """One thread's current stack as a collapsed (root-first,
    semicolon-joined) string; ``None`` for profiler-internal stacks."""
    labels: typing.List[str] = []
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module in _SKIP_MODULES:
            return None
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Sample all threads' stacks on a fixed interval.

    Thread-safe by construction: the sampler thread owns the counts
    dict mutation; readers (:meth:`top_stacks`, :meth:`collapsed`) copy
    under the same lock.  ``start``/``stop`` are idempotent.
    """

    def __init__(self, interval: float = 0.005):
        self.interval = max(0.0005, float(interval))
        self.samples = 0
        self._counts: typing.Counter[str] = collections.Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: typing.Optional[threading.Thread] = None
        self._started_at: typing.Optional[float] = None
        self._stopped_at: typing.Optional[float] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def duration_s(self) -> float:
        """Wall seconds the profiler has been (or was) sampling."""
        if self._started_at is None:
            return 0.0
        end = self._stopped_at if self._stopped_at is not None \
            else time.monotonic()
        return max(0.0, end - self._started_at)

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.monotonic()
        self._stopped_at = None
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not \
                threading.current_thread():
            thread.join(timeout=2.0)
        if self._stopped_at is None and self._started_at is not None:
            self._stopped_at = time.monotonic()
        self._thread = None

    def _run(self) -> None:
        current_frames = getattr(sys, "_current_frames", None)
        if current_frames is None:  # pragma: no cover - non-CPython
            return
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = current_frames()
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    stack = collapse_frame(frame)
                    if stack:
                        self._counts[stack] += 1
                        self.samples += 1

    def top_stacks(self, limit: int = 500
                   ) -> typing.Dict[str, int]:
        """The ``limit`` hottest collapsed stacks and their sample
        counts (bounded so a wire response carrying them stays small).
        """
        with self._lock:
            items = self._counts.most_common(limit)
        return dict(items)

    def collapsed(self) -> str:
        """Full flamegraph-compatible collapsed-stack dump: one
        ``stack count`` line per distinct stack, hottest first."""
        with self._lock:
            items = self._counts.most_common()
        return "".join("{} {}\n".format(stack, count)
                       for stack, count in items)

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        return {
            "running": self.running,
            "interval_s": self.interval,
            "duration_s": round(self.duration_s, 6),
            "samples": self.samples,
            "stacks": self.top_stacks(),
        }
