"""``repro.obs`` — telemetry for the live cluster runtime.

Three cooperating pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.registry` — a low-overhead metrics registry
  (counters, gauges, fixed-bucket histograms) instrumenting the hot
  paths of :mod:`repro.cluster`.  Disabled registries hand out shared
  no-op instruments, so un-instrumented members pay nothing.
- :mod:`repro.obs.trace` — distributed update-propagation tracing:
  deterministic per-origin-transaction trace ids stamped onto every
  wire message derived from that transaction, and a per-site span sink
  (ring buffer + optional JSONL file).
- :mod:`repro.obs.reconstruct` — stitches span records from many sites
  into per-transaction propagation trees with per-hop latencies — the
  paper's Sec. 5.3.4 propagation-delay measure on real sockets.
- :mod:`repro.obs.probe` — a live replica-recency probe sampling
  version lag through the cluster ``status`` plane (the wire analogue
  of :class:`repro.harness.probes.StalenessProbe`).
- :mod:`repro.obs.exposition` — Prometheus text-format rendering of
  registry snapshots, served over the ``metrics`` wire request and the
  optional per-site HTTP scrape endpoint.
- :mod:`repro.obs.monitor` — the online invariant watchdog behind
  ``repro monitor``: live alert rules (lag SLO, stuck propagation,
  saturation, WAL regression, divergence, site-down) with deduplicated
  structured alerts and a JSONL sink.
- :mod:`repro.obs.dashboard` — the ``repro top`` terminal dashboard
  (per-site rates, lag, propagation percentiles, sparklines, active
  alerts).
- :mod:`repro.obs.flight` — the per-site black-box flight recorder:
  a bounded in-memory ring of recent spans, metric checkpoints and
  cluster events, dumped atomically as a versioned incident bundle on
  watchdog criticals, chaos verdicts, the ``dump`` wire op, SIGTERM
  or a fatal exception.
- :mod:`repro.obs.postmortem` — the ``repro postmortem`` analyzer:
  merges bundles from all sites into one causally ordered cross-site
  timeline (clock offsets estimated from trace-id hop pairs) with
  automatic fault localization.
"""

from repro.obs.registry import (  # noqa: F401
    MetricsRegistry,
    snapshot_percentile,
    validate_snapshot,
)
from repro.obs.trace import (  # noqa: F401
    TraceSink,
    load_trace_file,
    message_trace_ids,
    stamp_message_obj,
    trace_id,
)
from repro.obs.reconstruct import (  # noqa: F401
    PropagationTree,
    format_tree,
    propagation_summary,
    reconstruct,
)
from repro.obs.probe import LiveStalenessProbe  # noqa: F401
from repro.obs.exposition import (  # noqa: F401
    render_exposition,
    validate_exposition,
)
from repro.obs.monitor import (  # noqa: F401
    Alert,
    MonitorConfig,
    Watchdog,
)
from repro.obs.dashboard import Dashboard, sparkline  # noqa: F401
from repro.obs.flight import (  # noqa: F401
    FlightRecorder,
    bundle_paths,
    load_bundle,
    validate_bundle,
    write_bundle,
)
from repro.obs.postmortem import (  # noqa: F401
    analyze,
    collect_bundles,
    estimate_offsets,
    format_report,
)
