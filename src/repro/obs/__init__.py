"""``repro.obs`` — telemetry for the live cluster runtime.

Three cooperating pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.registry` — a low-overhead metrics registry
  (counters, gauges, fixed-bucket histograms) instrumenting the hot
  paths of :mod:`repro.cluster`.  Disabled registries hand out shared
  no-op instruments, so un-instrumented members pay nothing.
- :mod:`repro.obs.trace` — distributed update-propagation tracing:
  deterministic per-origin-transaction trace ids stamped onto every
  wire message derived from that transaction, and a per-site span sink
  (ring buffer + optional JSONL file).
- :mod:`repro.obs.reconstruct` — stitches span records from many sites
  into per-transaction propagation trees with per-hop latencies — the
  paper's Sec. 5.3.4 propagation-delay measure on real sockets.
- :mod:`repro.obs.probe` — a live replica-recency probe sampling
  version lag through the cluster ``status`` plane (the wire analogue
  of :class:`repro.harness.probes.StalenessProbe`).
"""

from repro.obs.registry import (  # noqa: F401
    MetricsRegistry,
    snapshot_percentile,
    validate_snapshot,
)
from repro.obs.trace import (  # noqa: F401
    TraceSink,
    load_trace_file,
    message_trace_ids,
    stamp_message_obj,
    trace_id,
)
from repro.obs.reconstruct import (  # noqa: F401
    PropagationTree,
    format_tree,
    propagation_summary,
    reconstruct,
)
from repro.obs.probe import LiveStalenessProbe  # noqa: F401
