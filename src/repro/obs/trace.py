"""Distributed update-propagation tracing for the live cluster.

Every origin (primary) transaction gets a **trace id** derived
deterministically from its global transaction id (:func:`trace_id`).
Deterministic derivation is the crash-safety trick: a restarted site
re-forwarding committed primaries from its WAL, or a catch-up reply
assembled months later, stamps exactly the same trace id without any
volatile lookup table — the invariant "every wire message derived from
an origin transaction carries its trace id" survives restarts for free.

The sender stamps the id onto the *wire object* of each message
(:func:`stamp_message_obj`), outside the protocol payload: the protocol
classes never see it, the codec ignores unknown keys, and un-stamped
frames from an observability-disabled member decode identically — so
instrumented and plain members interoperate, and the receiver can
always re-derive the id from the decoded payload anyway.

Each site appends timestamped **span records** to its
:class:`TraceSink`: a bounded in-memory ring (served live by the
``trace`` wire request) plus an optional JSONL file next to the WAL.
Span events along one update's life:

``submitted → committed → forwarded → received → journaled → applied
→ forwarded → ... → acked`` (plus ``aborted``, ``replayed``,
``caught-up`` on the failure/recovery paths).

:mod:`repro.obs.reconstruct` stitches spans from all sites back into
the origin→replica propagation tree with per-hop latencies.
"""

from __future__ import annotations

import collections
import json
import time
import typing

from repro.types import GlobalTransactionId

#: Span events a sink may emit (documented set; not enforced, so new
#: instrumentation points don't need a lockstep edit here).
SPAN_EVENTS = (
    "submitted",     # origin: client transaction entered the server
    "committed",     # origin: primary committed (expected replicas known)
    "aborted",       # origin: primary aborted
    "forwarded",     # sender: message bytes left on a peer channel
    "received",      # receiver: frame entry accepted (post-dedup)
    "journaled",     # receiver: durable-class message journalled
    "applied",       # replica: secondary subtransaction committed
    "acked",         # sender: receiver acknowledged (journal-then-ack)
    "replayed",      # receiver: re-delivered from the inbox journal
    "caught-up",     # replica: version applied via a catch-up tail
)


def trace_id(gid: GlobalTransactionId) -> str:
    """The trace id of the origin transaction ``gid`` (deterministic)."""
    return "t{}.{}".format(gid.site, gid.seq)


def gid_of_trace(trace: str) -> typing.Optional[GlobalTransactionId]:
    """Invert :func:`trace_id`; ``None`` for a malformed id."""
    if not isinstance(trace, str) or not trace.startswith("t"):
        return None
    site, sep, seq = trace[1:].partition(".")
    if not sep:
        return None
    try:
        return GlobalTransactionId(int(site), int(seq))
    except ValueError:
        return None


def message_trace_ids(message) -> typing.List[str]:
    """Trace ids of the origin transactions ``message`` derives from.

    - Any payload carrying a ``gid`` (secondary/backedge/special
      subtransactions, 2PC rounds, wounds, lock traffic) derives from
      exactly that transaction.
    - A ``CATCHUP_REPLY`` re-ships the update tails of many origin
      transactions: every gid in its per-item ``writers`` lineage.
    - Pure control traffic (``CATCHUP_REQUEST``, ``DUMMY``) derives
      from no transaction and carries no trace.
    """
    payload = message.payload
    gid = payload.get("gid")
    if isinstance(gid, GlobalTransactionId):
        return [trace_id(gid)]
    ids: typing.List[str] = []
    seen: typing.Set[str] = set()
    items = payload.get("items")
    if isinstance(items, dict):
        for entry in items.values():
            if not isinstance(entry, dict):
                continue
            for writer in entry.get("writers", ()):
                if isinstance(writer, GlobalTransactionId):
                    tid = trace_id(writer)
                    if tid not in seen:
                        seen.add(tid)
                        ids.append(tid)
    return ids


def stamp_message_obj(obj: typing.Dict[str, typing.Any],
                      message) -> typing.Dict[str, typing.Any]:
    """Stamp trace ids onto an encoded wire message object, in place.

    ``obj`` is the dict :func:`repro.cluster.codec.encode_message`
    produced; the stamp lives beside (not inside) the payload, so
    :func:`decode_message` and the protocols never see it, and the
    journal — which stores the wire object verbatim — preserves it
    across a receiver crash.
    """
    ids = message_trace_ids(message)
    if ids:
        obj["trace"] = ids[0]
        if len(ids) > 1:
            obj["traces"] = ids
    return obj


def traces_of_obj(obj: typing.Mapping[str, typing.Any]
                  ) -> typing.List[str]:
    """All trace ids stamped on a wire message object (maybe empty)."""
    traces = obj.get("traces")
    if isinstance(traces, list):
        return [str(tid) for tid in traces]
    trace = obj.get("trace")
    return [str(trace)] if isinstance(trace, str) else []


class TraceSink:
    """Per-site span recorder: bounded ring + optional JSONL file.

    The ring keeps the **tail** — the newest ``capacity`` spans — and
    counts what it overwrote (``dropped``); the live ``trace`` wire
    request serves from it.  With ``path`` set, every span is also
    appended to a JSONL file so offline reconstruction survives the
    process.  File serialization is deferred: :meth:`emit` only queues
    the span dict (keeping json encoding off the server's hot path) and
    the JSONL is written on :meth:`flush` / :meth:`close` or when the
    queue reaches ``flush_every`` spans.
    """

    def __init__(self, site_id: int,
                 path: typing.Optional[str] = None,
                 capacity: int = 65536,
                 flush_every: int = 8192):
        self.site_id = site_id
        self.path = str(path) if path is not None else None
        self.capacity = int(capacity)
        self.flush_every = int(flush_every)
        self._ring: typing.Deque[typing.Dict[str, typing.Any]] = \
            collections.deque(maxlen=self.capacity)
        self._total = 0
        self._pending: typing.List[typing.Dict[str, typing.Any]] = []
        self._handle: typing.Optional[typing.TextIO] = None
        self._closed = False

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Spans overwritten in the ring (still in the file, if any)."""
        return self._total - len(self._ring)

    def emit(self, event: str, trace: typing.Optional[str] = None,
             **fields) -> typing.Dict[str, typing.Any]:
        """Record one span; returns the span dict.

        Canonical optional ``fields``: ``gid`` (a
        :class:`GlobalTransactionId`, encoded as ``[site, seq]``),
        ``now`` (site-local virtual time), ``peer`` (the other site of
        a hop), ``type`` (wire message type), ``traces`` (multi-origin
        derivations, e.g. catch-up), plus free-form extras.
        """
        span: typing.Dict[str, typing.Any] = {
            "t": time.time(),
            "site": self.site_id,
            "event": event,
        }
        if trace is not None:
            span["trace"] = trace
        gid = fields.pop("gid", None)
        if gid is not None:
            span["gid"] = [gid.site, gid.seq]
            if trace is None:
                span["trace"] = trace_id(gid)
        for key, value in fields.items():
            if value is not None:
                span[key] = value
        self._ring.append(span)
        self._total += 1
        if self.path is not None:
            self._pending.append(span)
            # Write-through once closed: teardown orders transport
            # shutdown before the sink close, but an in-flight apply
            # task can still emit a late span — deferring it to a
            # flush that will never come loses it silently.
            if len(self._pending) >= self.flush_every or self._closed:
                self.flush()
        return span

    def spans(self, trace: typing.Optional[str] = None,
              limit: typing.Optional[int] = None
              ) -> typing.List[typing.Dict[str, typing.Any]]:
        """Newest-last spans from the ring, optionally filtered to one
        trace id (matches ``trace`` and multi-origin ``traces``)."""
        if trace is None:
            selected = list(self._ring)
        else:
            selected = [span for span in self._ring
                        if span.get("trace") == trace
                        or trace in span.get("traces", ())]
        if limit is not None and len(selected) > limit:
            selected = selected[-limit:]
        return selected

    def flush(self) -> None:
        """Serialize queued spans to the JSONL file (lazy-opened)."""
        if self.path is None or not self._pending:
            return
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        pending, self._pending = self._pending, []
        self._handle.write("".join(
            json.dumps(span, sort_keys=True) + "\n" for span in pending))
        self._handle.flush()
        if self._closed:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Flush everything queued and close the file.  The sink stays
        usable: later spans (teardown stragglers) write straight
        through instead of queueing behind ``flush_every``."""
        self._closed = True
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_trace_file(path: str
                    ) -> typing.List[typing.Dict[str, typing.Any]]:
    """Load one site's span JSONL (tolerates a torn last line)."""
    spans: typing.List[typing.Dict[str, typing.Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError:
                continue  # torn tail of a crashed writer
            if isinstance(span, dict):
                spans.append(span)
    return spans
